/**
 * @file
 * Figure 11: performance penalties for varied colocation policies and
 * workload mixes (Uniform, Beta-Low, Gaussian, Beta-High).
 *
 * Pools per-agent penalties across trial populations and reports the
 * distribution per (mix, policy). Expected shape: stable policies
 * perform within a few percent of GR on every mix; penalties grow as
 * the mix skews toward memory-intensive jobs, with Beta-High the
 * worst case, where SMP performs best by preventing contentious jobs
 * from matching each other.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/descriptive.hh"
#include "util/chart.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "5", "trial populations per mix");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 11: penalty distributions by policy and workload mix",
        [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const auto policies = figurePolicies();

        Table table({"mix", "policy", "mean", "median", "q3",
                     "whisker_high"});
        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));

        for (MixKind mix : allMixes()) {
            std::map<std::string, std::vector<double>> pooled;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto instance =
                    sampleInstance(catalog, model, agents, mix, rng);
                for (const auto &policy : policies) {
                    Rng policy_rng = rng.split();
                    const PolicyRun run =
                        runPolicy(*policy, instance, policy_rng);
                    auto &sink = pooled[policy->name()];
                    sink.insert(sink.end(), run.penalties.begin(),
                                run.penalties.end());
                }
            }
            std::vector<std::string> labels;
            std::vector<BoxStats> boxes;
            for (const auto &policy : policies) {
                const auto &samples = pooled[policy->name()];
                // The paper draws whiskers at 3x IQR past the
                // quartiles.
                const BoxStats box = boxStats(samples, 3.0);
                table.addRow({mixName(mix), policy->name(),
                              Table::num(mean(samples), 4),
                              Table::num(box.median, 4),
                              Table::num(box.q3, 4),
                              Table::num(box.whiskerHigh, 4)});
                labels.push_back(policy->name());
                boxes.push_back(box);
            }
            std::cout << renderBoxplots(mixName(mix) +
                                            ": per-agent penalties",
                                        labels, boxes)
                      << "\n";
        }
        table.print(std::cout);
        std::cout
            << "\nExpected shape: stable policies (S*) track GR within "
               "a few percent on\nevery mix; Beta-High is hardest and "
               "favors SMP, whose partition prevents\ncontentious jobs "
               "from pairing with each other.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
