/**
 * @file
 * Figures 2 and 3: the four-user example contrasting
 * performance-centric and stability-centric colocation.
 *
 * Four users — (A) x264, (B) fluidanimate, (C) decision-tree,
 * (D) regression — share two processors. The performance-centric
 * assignment minimizes system-wide penalty but pairs A with a
 * co-runner it likes least, creating the blocking pair (A, B); the
 * stable assignment satisfies more preferences, admits no blocking
 * pair, and aligns penalties with bandwidth demands (Figure 3).
 */

#include <iostream>
#include <array>
#include <limits>

#include "bench_common.hh"
#include "core/instance.hh"
#include "util/error.hh"
#include "matching/blocking.hh"
#include "matching/stable_roommates.hh"
#include "util/chart.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figures 2-3: performance- vs stability-centric colocation",
        [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);

        const char *labels[4] = {"A:x264", "B:fluidanimate",
                                 "C:decision", "D:linear"};
        std::vector<JobTypeId> types{
            catalog.jobByName("x264").id,
            catalog.jobByName("fluidanimate").id,
            catalog.jobByName("decision").id,
            catalog.jobByName("linear").id,
        };
        const auto instance =
            ColocationInstance::oracular(catalog, types, model);
        const DisutilityFn d = [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        };

        // Performance-centric: minimum total penalty over the three
        // perfect matchings of four agents.
        const std::array<std::array<AgentId, 4>, 3> candidates{{
            {0, 1, 2, 3}, // {AB, CD}
            {0, 2, 1, 3}, // {AC, BD}
            {0, 3, 1, 2}, // {AD, BC}
        }};
        Matching perf(4);
        double best = std::numeric_limits<double>::infinity();
        for (const auto &[a, b, c, e] : candidates) {
            const double total = d(a, b) + d(b, a) + d(c, e) + d(e, c);
            if (total < best) {
                best = total;
                perf = Matching(4);
                perf.pair(a, b);
                perf.pair(c, e);
            }
        }

        // Stability-centric: stable roommates over the preferences.
        const PreferenceProfile prefs = instance.believedPreferences();
        const auto stable = stableRoommates(prefs);
        fatalIf(!stable.has_value(),
                "four-user example must admit a stable matching");

        auto describe = [&](const char *title, const Matching &m) {
            std::cout << "\n" << title << ":\n";
            for (const auto &[a, b] : m.pairs())
                std::cout << "  " << labels[a] << " + " << labels[b]
                          << "\n";
            std::cout << "  blocking pairs: "
                      << countBlockingPairs(m, d, 0.0) << "\n";
            std::size_t satisfied = 0;
            for (AgentId a = 0; a < 4; ++a)
                if (m.partnerOf(a) == prefs.list(a).front())
                    ++satisfied;
            std::cout << "  users with their preferred co-runner: "
                      << satisfied << " of 4\n";
        };
        describe("Performance-centric colocation", perf);
        describe("Stability-centric colocation", *stable);

        Table table({"user", "GBps", "penalty_performance",
                     "penalty_stability"});
        std::vector<Bar> perf_bars, stable_bars;
        for (AgentId a = 0; a < 4; ++a) {
            const double p_perf = d(a, perf.partnerOf(a));
            const double p_stab = d(a, stable->partnerOf(a));
            table.addRow({labels[a],
                          Table::num(catalog.job(types[a]).gbps, 2),
                          Table::num(p_perf, 4), Table::num(p_stab, 4)});
            perf_bars.push_back(Bar{labels[a], p_perf});
            stable_bars.push_back(Bar{labels[a], p_stab});
        }
        std::cout << "\n";
        table.print(std::cout);
        std::cout << "\n"
                  << renderBarChart("Penalty w/ performance", perf_bars)
                  << "\n"
                  << renderBarChart("Penalty w/ stability", stable_bars)
                  << "\nFair when penalties track bandwidth demand: "
                     "stability raises the most\ncontentious user's "
                     "penalty and lowers the least contentious users'.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
