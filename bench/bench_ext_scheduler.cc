/**
 * @file
 * Extension: the colocation game in deployment (Section III.A) —
 * continuous arrivals, periodic batching, and queueing on a fixed
 * machine pool.
 *
 * Sweeps offered load and compares GR (performance-centric) against
 * SMR (stable) on queueing delay, slowdown, and utilization. Expected
 * shape: the stable policy's throughput metrics track the greedy
 * baseline across the load range — fairness costs little even in a
 * closed-loop deployment — until both saturate at the same knee.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/scheduler.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("machines", "10", "chip multiprocessors");
    flags.declare("epoch", "300", "scheduling period (s)");
    flags.declare("horizon", "20000", "arrival window (s)");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Extension: scheduler under load, GR vs SMR", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);

        Table table({"arrivals_per_hour", "policy", "mean_wait_s",
                     "mean_slowdown", "utilization", "unfinished"});
        for (double per_hour : {30.0, 90.0, 180.0, 360.0}) {
            for (const char *policy : {"GR", "SMR"}) {
                SchedulerConfig config;
                config.policy = policy;
                config.machines = static_cast<std::size_t>(
                    flags.getInt("machines"));
                config.epochSec =
                    static_cast<double>(flags.getInt("epoch"));
                config.arrivalRatePerSec = per_hour / 3600.0;

                EpochScheduler scheduler(
                    catalog, model, config,
                    static_cast<std::uint64_t>(flags.getInt("seed")));
                const ScheduleTrace trace = scheduler.run(
                    static_cast<double>(flags.getInt("horizon")),
                    10000.0);

                table.addRow(
                    {Table::num(per_hour, 0), policy,
                     Table::num(trace.meanWaitSec, 1),
                     Table::num(trace.meanSlowdown, 2),
                     Table::num(trace.utilization, 3),
                     Table::num(static_cast<long long>(
                         trace.unfinished))});
            }
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: SMR's wait/slowdown track GR "
                     "across the load range;\nboth saturate at the "
                     "same knee. Stability costs little throughput "
                     "even\nin the closed-loop deployment setting.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
