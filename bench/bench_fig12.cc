/**
 * @file
 * Figure 12: preference-prediction accuracy (Equation 2) as the
 * portion of sampled colocation profiles varies, for one and two
 * predictor iterations.
 *
 * The profiler's fully measured matrix defines each agent's true
 * preference list; the predictor sees a sampled subset of its cells.
 * Expected shape: accuracy is poor near 20% sampling, jumps at 25%
 * (~83% in the paper), and climbs slowly toward ~95% at 75%; the
 * second iteration helps most at low sampling ratios.
 */

#include <iostream>

#include "bench_common.hh"
#include "cf/accuracy.hh"
#include "cf/item_knn.hh"
#include "cf/subsample.hh"
#include "sim/profiler.hh"
#include "stats/online.hh"
#include "util/chart.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("trials", "10", "trials per sampling ratio");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 12: prediction accuracy vs portion of sampled profiles",
        [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const std::size_t n = catalog.size();
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const auto seed =
            static_cast<std::uint64_t>(flags.getInt("seed"));

        const std::vector<double> ratios{0.10, 0.15, 0.20, 0.25, 0.30,
                                         0.40, 0.50, 0.60, 0.75, 0.90};

        // Columns: the paper's pure item-based predictor with one and
        // two iterations, plus this implementation's bidirectional
        // blend (the framework default).
        Table table({"sample_ratio", "item_1_iter", "item_2_iter",
                     "bidirectional"});
        std::vector<Bar> bars;
        for (double ratio : ratios) {
            OnlineStats one, two, blend;
            for (std::size_t t = 0; t < trials; ++t) {
                SystemProfiler profiler(model, NoiseConfig{},
                                        seed + t * 101);
                const SparseMatrix full = profiler.sampleProfiles(1.0);
                std::vector<std::vector<double>> truth(
                    n, std::vector<double>(n, 0.0));
                for (std::size_t i = 0; i < n; ++i)
                    for (std::size_t j = 0; j < n; ++j)
                        truth[i][j] = full.at(i, j);

                Rng rng(seed * 977 + t * 13 + 1);
                const SparseMatrix sparse =
                    subsampleSymmetric(full, ratio, 2, rng);

                for (std::size_t iters : {std::size_t(1),
                                          std::size_t(2)}) {
                    ItemKnnConfig config;
                    config.iterations = iters;
                    config.bidirectional = false;
                    const Prediction p =
                        ItemKnnPredictor(config).predict(sparse);
                    const double acc =
                        preferenceAccuracy(truth, p.dense);
                    (iters == 1 ? one : two).add(acc);
                }
                ItemKnnConfig config;
                const Prediction p =
                    ItemKnnPredictor(config).predict(sparse);
                blend.add(preferenceAccuracy(truth, p.dense));
            }
            table.addRow({Table::num(ratio, 2),
                          Table::num(100.0 * one.mean(), 1),
                          Table::num(100.0 * two.mean(), 1),
                          Table::num(100.0 * blend.mean(), 1)});
            bars.push_back(Bar{"ratio " + Table::num(ratio, 2),
                               100.0 * two.mean()});
        }
        table.print(std::cout);
        std::cout << "\n"
                  << renderBarChart(
                         "% correct preference predictions "
                         "(item-based, two iterations)",
                         bars)
                  << "\nPaper: ~83% at 25% sampling rising to ~95% at "
                     "75%; error is\nunacceptably high at 20%, falls "
                     "quickly with 25%, slowly beyond 30%.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
