/**
 * @file
 * Figure 8: correlation between ranked performance penalties (bars)
 * and ranked bandwidth demands (line).
 *
 * For each policy, jobs are ranked by mean penalty and by bandwidth
 * demand; fairness means the penalty rank tracks the demand rank
 * (bars track the line). Expected shape: GR, CO, and SMP are unfair
 * (ranks unrelated); SMR and SR are fair (ranks aligned).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/correlation.hh"
#include "stats/descriptive.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "5", "trial populations to average over");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("cf", "false",
                  "use collaborative-filtering predictions instead of "
                  "oracular penalties (Section VI.C)");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 8: ranked penalties vs ranked bandwidth demands", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const auto policies = figurePolicies();

        std::map<std::string, std::vector<OnlineStats>> stats;
        for (const auto &policy : policies)
            stats[policy->name()].resize(catalog.size());

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance =
                flags.getBool("cf")
                    ? sampleInstanceCf(catalog, model, agents,
                                       MixKind::Uniform, 0.25, rng)
                    : sampleInstance(catalog, model, agents,
                                     MixKind::Uniform, rng);
            for (const auto &policy : policies) {
                Rng policy_rng = rng.split();
                const PolicyRun run =
                    runPolicy(*policy, instance, policy_rng);
                for (AgentId a = 0; a < instance.agents(); ++a)
                    if (run.matching.isMatched(a))
                        stats[policy->name()][instance.typeOf(a)].add(
                            run.penalties[a]);
            }
        }

        // Ranks over the eleven displayed jobs.
        const auto names = Catalog::figureJobNames();
        std::vector<double> demands;
        for (const auto &name : names)
            demands.push_back(catalog.jobByName(name).gbps);
        const auto demand_ranks = ranks(demands);

        Table table({"job", "bandwidth_rank", "GR", "CO", "SMP", "SMR",
                     "SR"});
        std::map<std::string, std::vector<double>> penalty_ranks;
        for (const auto &policy : policies) {
            std::vector<double> penalties;
            for (const auto &name : names)
                penalties.push_back(
                    stats[policy->name()][catalog.jobByName(name).id]
                        .mean());
            penalty_ranks[policy->name()] = ranks(penalties);
        }
        for (std::size_t k = 0; k < names.size(); ++k) {
            std::vector<std::string> row{names[k],
                                         Table::num(demand_ranks[k], 1)};
            for (const auto &policy : policies)
                row.push_back(
                    Table::num(penalty_ranks[policy->name()][k], 1));
            table.addRow(std::move(row));
        }
        table.print(std::cout);

        std::cout << "\nRank correlation (penalty rank vs demand rank; "
                     "1.0 = perfectly fair):\n";
        for (const auto &policy : policies) {
            std::vector<double> pr = penalty_ranks[policy->name()];
            std::cout << "  " << policy->name() << ": "
                      << Table::num(spearman(demand_ranks, pr), 3)
                      << "\n";
        }
        std::cout << "Expected shape: near zero for GR/CO/SMP, strongly "
                     "positive for SMR/SR.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
