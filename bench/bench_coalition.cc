/**
 * @file
 * Coalition-formation harness: n-way colocation versus the pairwise
 * stable matchers at equal machine capacity.
 *
 * For each group size G in --group-list, every trial population is
 * packed into ceil(n/G) machines three ways:
 *
 *  - *coalition*: the core-seeking formation (src/coalition) over the
 *    believed table, G jobs per CMP;
 *  - *SR-packed*: the adapted-stable-roommates pairing, pairs packed
 *    first-fit into the same machine count (splitting a pair only
 *    when no machine has two free slots);
 *  - *SMR-packed*: the stable-marriage-random pairing packed the same
 *    way.
 *
 * Every scheme is scored on stability (blocking coalitions of size
 * <= G under the shared believed preferences), performance (mean true
 * penalty), egalitarian welfare (worst-off agent's true penalty), and
 * fairness (penalty-vs-demand rank correlation). The headline number
 * is blocking_ratio = coalition blocking count / SR-packed blocking
 * count: the formation should never be less stable than packed pairs,
 * so the CI floor holds it at or below 1:
 *
 *   bench_coalition && bench_json --file BENCH_coalition.json \
 *       --max-blocking-ratio g3=1,g4=1
 *
 * The harness also re-runs the G >= 3 formation at 1, 2, and 8
 * threads and fails hard unless structures and Shapley shares are
 * bit-identical — the same differential the test suite holds.
 *
 * Emits BENCH_coalition.json (schema "cooper.bench_coalition.v1");
 * --tiny shrinks the population for the `ctest -L bench-smoke` run.
 */

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "coalition/blocking_coalition.hh"
#include "coalition/formation.hh"
#include "coalition/prefs.hh"
#include "coalition/structure.hh"
#include "coalition/value.hh"
#include "core/experiment.hh"
#include "core/policies.hh"
#include "matching/stable_roommates.hh"
#include "stats/correlation.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

using namespace cooper;

/** Full-precision JSON number. */
std::string
jsonNum(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

/** Parse "2,3,4" into group sizes. */
std::vector<std::size_t>
parseGroupList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(static_cast<std::size_t>(std::stoul(item)));
    if (out.empty())
        throw std::runtime_error("empty --group-list");
    return out;
}

/** One scheme's scores on one trial. */
struct SchemeScore
{
    std::size_t blocking = 0;
    double meanPenalty = 0.0;
    double egalitarian = 0.0;
    double fairness = 0.0;
};

SchemeScore
score(const ColocationInstance &instance,
      const InterferenceModel &model, const CoalitionPreferences &prefs,
      const CoalitionStructure &structure, std::size_t group_size,
      std::size_t threads)
{
    CoalitionScanConfig scan;
    scan.maxSize = group_size;
    scan.threads = threads;

    SchemeScore out;
    out.blocking = countBlockingCoalitions(structure, prefs, scan);

    std::vector<double> penalties(instance.agents(), 0.0);
    std::vector<double> demand;
    demand.reserve(instance.agents());
    for (AgentId a = 0; a < instance.agents(); ++a) {
        demand.push_back(
            instance.catalog().job(instance.typeOf(a)).gbps);
        if (structure.coalitionOf(a) == kNoCoalition)
            continue;
        std::vector<JobTypeId> others;
        for (const AgentId b : structure.othersOf(a))
            others.push_back(instance.typeOf(b));
        penalties[a] =
            coalitionMemberPenalty(model, instance.typeOf(a), others);
    }
    double acc = 0.0;
    for (const double p : penalties) {
        acc += p;
        out.egalitarian = std::max(out.egalitarian, p);
    }
    out.meanPenalty = acc / static_cast<double>(penalties.size());
    out.fairness = spearman(demand, penalties);
    return out;
}

/** Aggregates one group size across trials. */
struct GroupRow
{
    std::size_t groupSize = 0;
    std::size_t machines = 0;
    std::size_t trials = 0;
    std::size_t coreStableTrials = 0;
    double roundsMean = 0.0;
    std::size_t blockingCoalition = 0; //!< summed over trials
    std::size_t blockingSr = 0;
    std::size_t blockingSmr = 0;
    OnlineStats meanCoalition, meanSr, meanSmr;
    OnlineStats egalCoalition, egalSr, egalSmr;
    OnlineStats fairCoalition, fairSr, fairSmr;
    bool identicalAcrossThreads = true;
};

void
writeJson(const std::string &path,
          const std::vector<std::pair<std::string, std::string>> &workload,
          const std::vector<GroupRow> &rows)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << "{\n  \"schema\": \"cooper.bench_coalition.v1\",\n";
    out << "  \"workload\": {";
    for (std::size_t i = 0; i < workload.size(); ++i)
        out << (i ? ", " : "") << "\"" << workload[i].first
            << "\": " << workload[i].second;
    out << "},\n  \"groups\": {\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const GroupRow &row = rows[i];
        const double ratio =
            static_cast<double>(row.blockingCoalition) /
            static_cast<double>(std::max<std::size_t>(1, row.blockingSr));
        out << "    \"g" << row.groupSize << "\": {"
            << "\"group_size\": " << row.groupSize
            << ", \"machines\": " << row.machines
            << ", \"trials\": " << row.trials
            << ", \"core_stable_trials\": " << row.coreStableTrials
            << ", \"rounds_mean\": " << jsonNum(row.roundsMean)
            << ", \"blocking_coalition\": " << row.blockingCoalition
            << ", \"blocking_sr\": " << row.blockingSr
            << ", \"blocking_smr\": " << row.blockingSmr
            << ", \"blocking_ratio\": " << jsonNum(ratio)
            << ", \"mean_penalty_coalition\": "
            << jsonNum(row.meanCoalition.mean())
            << ", \"mean_penalty_sr\": " << jsonNum(row.meanSr.mean())
            << ", \"mean_penalty_smr\": " << jsonNum(row.meanSmr.mean())
            << ", \"egalitarian_coalition\": "
            << jsonNum(row.egalCoalition.mean())
            << ", \"egalitarian_sr\": " << jsonNum(row.egalSr.mean())
            << ", \"egalitarian_smr\": " << jsonNum(row.egalSmr.mean())
            << ", \"fairness_coalition\": "
            << jsonNum(row.fairCoalition.mean())
            << ", \"fairness_sr\": " << jsonNum(row.fairSr.mean())
            << ", \"fairness_smr\": " << jsonNum(row.fairSmr.mean())
            << ", \"identical_across_threads\": "
            << (row.identicalAcrossThreads ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("agents", "120", "population size per trial");
    flags.declare("trials", "5", "trial populations");
    flags.declare("group-list", "2,3,4", "comma-separated group sizes");
    flags.declare("shapley-samples", "64",
                  "Shapley permutations per coalition");
    flags.declare("threads", "1",
                  "worker threads (0 = all hardware, 1 = serial)");
    flags.declare("seed", "2017", "population seed");
    flags.declare("tiny", "false",
                  "smoke-test sizes (agents 36, trials 2)");
    flags.declare("out", "BENCH_coalition.json", "JSON output path");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Coalition formation: n-way colocation vs packed pairs", [&] {
            const bool tiny = flags.getBool("tiny");
            const auto agents = static_cast<std::size_t>(
                tiny ? 36 : flags.getInt("agents"));
            const auto trials = static_cast<std::size_t>(
                tiny ? 2 : flags.getInt("trials"));
            const auto threads =
                static_cast<std::size_t>(flags.getInt("threads"));
            const auto samples = static_cast<std::size_t>(
                flags.getInt("shapley-samples"));
            const std::vector<std::size_t> group_list =
                parseGroupList(flags.get("group-list"));

            const Catalog catalog = Catalog::paperTableI();
            const InterferenceModel model(catalog);
            const auto seed =
                static_cast<std::uint64_t>(flags.getInt("seed"));

            std::vector<GroupRow> rows;
            for (const std::size_t g : group_list) {
                GroupRow row;
                row.groupSize = g;
                row.machines = (agents + g - 1) / g;
                row.trials = trials;

                Rng rng(seed);
                double rounds_sum = 0.0;
                for (std::size_t trial = 0; trial < trials; ++trial) {
                    const auto instance = sampleInstance(
                        catalog, model, agents, MixKind::Uniform, rng);
                    Rng trial_rng = rng.split();
                    const DisutilityTable believed =
                        instance.believedTable(threads);
                    const CoalitionPreferences prefs(believed);

                    std::vector<JobTypeId> types;
                    types.reserve(agents);
                    for (AgentId a = 0; a < agents; ++a)
                        types.push_back(instance.typeOf(a));

                    FormationConfig formation;
                    formation.groupSize = g;
                    formation.threads = threads;
                    formation.shapleySamples = samples;
                    const FormationResult formed = formCoalitions(
                        types, believed, model, formation, trial_rng);
                    if (formed.coreStable)
                        ++row.coreStableTrials;
                    rounds_sum += static_cast<double>(formed.rounds);

                    // Thread-count differential: structures and
                    // Shapley shares must be bit-identical at 1/2/8.
                    for (const std::size_t t : {std::size_t(2),
                                                std::size_t(8)}) {
                        FormationConfig alt = formation;
                        alt.threads = t;
                        const FormationResult other = formCoalitions(
                            types, believed, model, alt, trial_rng);
                        if (!(other.structure == formed.structure) ||
                            other.shapleyShares != formed.shapleyShares)
                            row.identicalAcrossThreads = false;
                    }

                    // Equal-capacity pair baselines.
                    const RoommatesResult sr = adaptedRoommates(
                        prefs.pairProfile(), believed);
                    const CoalitionStructure sr_packed =
                        CoalitionStructure::packMatching(sr.matching, g);
                    Rng smr_rng = trial_rng.substream(0x5112);
                    const Matching smr =
                        StableMarriageRandomPolicy().assign(instance,
                                                            smr_rng);
                    const CoalitionStructure smr_packed =
                        CoalitionStructure::packMatching(smr, g);

                    const SchemeScore sc = score(instance, model, prefs,
                                                 formed.structure, g,
                                                 threads);
                    const SchemeScore ss = score(instance, model, prefs,
                                                 sr_packed, g, threads);
                    const SchemeScore sm = score(instance, model, prefs,
                                                 smr_packed, g, threads);
                    row.blockingCoalition += sc.blocking;
                    row.blockingSr += ss.blocking;
                    row.blockingSmr += sm.blocking;
                    row.meanCoalition.add(sc.meanPenalty);
                    row.meanSr.add(ss.meanPenalty);
                    row.meanSmr.add(sm.meanPenalty);
                    row.egalCoalition.add(sc.egalitarian);
                    row.egalSr.add(ss.egalitarian);
                    row.egalSmr.add(sm.egalitarian);
                    row.fairCoalition.add(sc.fairness);
                    row.fairSr.add(ss.fairness);
                    row.fairSmr.add(sm.fairness);
                }
                row.roundsMean =
                    rounds_sum / static_cast<double>(trials);
                if (!row.identicalAcrossThreads)
                    throw std::runtime_error(
                        "coalition formation diverged across thread "
                        "counts at G=" + std::to_string(g));
                rows.push_back(row);
            }

            Table table({"G", "scheme", "blocking", "mean_pen",
                         "egalitarian", "fairness"});
            for (const GroupRow &row : rows) {
                const auto g_txt = Table::num(
                    static_cast<long long>(row.groupSize));
                table.addRow({g_txt, "coalition",
                              std::to_string(row.blockingCoalition),
                              Table::num(row.meanCoalition.mean(), 4),
                              Table::num(row.egalCoalition.mean(), 4),
                              Table::num(row.fairCoalition.mean(), 3)});
                table.addRow({g_txt, "SR-packed",
                              std::to_string(row.blockingSr),
                              Table::num(row.meanSr.mean(), 4),
                              Table::num(row.egalSr.mean(), 4),
                              Table::num(row.fairSr.mean(), 3)});
                table.addRow({g_txt, "SMR-packed",
                              std::to_string(row.blockingSmr),
                              Table::num(row.meanSmr.mean(), 4),
                              Table::num(row.egalSmr.mean(), 4),
                              Table::num(row.fairSmr.mean(), 3)});
            }
            table.print(std::cout);
            std::cout << "\nExpected shape: the core-seeking formation "
                         "finds groupings with no\nmore blocking "
                         "coalitions than packed pairs at the same "
                         "machine count,\nand G = 2 reproduces the "
                         "stable-roommates pairing exactly.\n";

            const std::vector<std::pair<std::string, std::string>>
                workload{
                    {"agents", std::to_string(agents)},
                    {"trials", std::to_string(trials)},
                    {"types", std::to_string(catalog.size())},
                    {"threads", std::to_string(threads)},
                    {"shapley_samples", std::to_string(samples)},
                    {"tiny", tiny ? "true" : "false"},
                };
            writeJson(flags.get("out"), workload, rows);
            std::cout << "\nwrote " << flags.get("out")
                      << " (schema cooper.bench_coalition.v1)\n";
        });
}
