/**
 * @file
 * Extension: quantifying "fair according to cooperative game theory".
 *
 * Section II argues colocation penalties are fair when they act like
 * Shapley values — each member's share tracks its marginal
 * contribution to the coalition's penalty. For groups of four jobs
 * sharing a CMP, this harness compares each member's *actual* penalty
 * against its exact Shapley share of the group's total, under
 * hierarchical stable grouping and greedy grouping. Expected shape:
 * stable groups' penalties correlate strongly with the Shapley-fair
 * division; greedy groups' much less.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "core/groups.hh"
#include "game/colocation_game.hh"
#include "stats/correlation.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace {

using namespace cooper;

/**
 * How fairly each group divides its own penalty: the mean
 * within-group Kendall tau between members' actual penalties and
 * their exact Shapley shares. Pooled (cross-group) correlation would
 * be dominated by "contentious groups hurt everyone"; the
 * within-group view isolates the division itself.
 */
double
shapleyAlignment(const ColocationInstance &instance,
                 const InterferenceModel &model, const Grouping &grouping)
{
    OnlineStats per_group;
    for (const auto &group : grouping.groups) {
        if (group.size() < 3)
            continue; // a pair always splits trivially
        std::vector<JobTypeId> jobs;
        for (AgentId a : group)
            jobs.push_back(instance.typeOf(a));
        const auto shares = shapleyAttribution(model, jobs);
        std::vector<double> actual;
        for (AgentId a : group)
            actual.push_back(
                trueGroupPenalty(instance, model, a, group));
        per_group.add(kendallTau(actual, shares));
    }
    return per_group.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "200", "population size per trial");
    flags.declare("trials", "5", "trial populations");
    flags.declare("seed", "1", "base RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Extension: actual penalties vs Shapley-fair shares "
        "(4-job CMPs)",
        [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        OnlineStats hier, greedy, random;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = sampleInstance(
                catalog, model, agents, MixKind::Uniform, rng);
            Rng rng_h = rng.split();
            Rng rng_g = rng.split();
            Rng rng_r = rng.split();
            hier.add(shapleyAlignment(
                instance, model,
                hierarchicalGroups(instance, 4, rng_h)));
            greedy.add(shapleyAlignment(
                instance, model, greedyGroups(instance, 4, rng_g)));
            random.add(shapleyAlignment(
                instance, model, randomGroups(instance, 4, rng_r)));
        }

        Table table({"scheme", "penalty_vs_shapley_corr"});
        table.addRow({"hierarchical", Table::num(hier.mean(), 3)});
        table.addRow({"greedy", Table::num(greedy.mean(), 3)});
        table.addRow({"random", Table::num(random.mean(), 3)});
        table.print(std::cout);
        std::cout
            << "\nMean within-group Kendall tau between each member's "
               "actual penalty and\nits exact Shapley share. Penalties "
               "are not transferable (the paper's\ncaveat on direct "
               "Shapley application), so even stable groups cannot\n"
               "align perfectly — but stable matching moves the "
               "division markedly\ntoward the Shapley-fair one, while "
               "greedy/random sit near zero.\n";
    });
}
