/**
 * @file
 * Overhead microbenchmarks (Sections III.C and IV).
 *
 * The paper's Java implementation colocates 1000 agents in 1-5 s and
 * predicts preferences within 100 ms; job completion times are
 * minutes, so both are negligible. These google-benchmark timings
 * verify this C++ implementation sits comfortably under those
 * budgets.
 *
 * After the microbenchmarks, the harness runs one fully instrumented
 * epoch and reports the per-phase timings straight from the
 * observability registry (src/obs) — the same histograms a production
 * run would emit through --metrics-out.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "cf/item_knn.hh"
#include "cf/subsample.hh"
#include "core/experiment.hh"
#include "core/framework.hh"
#include "game/shapley.hh"
#include "matching/blocking.hh"
#include "matching/stable_marriage.hh"
#include "matching/stable_roommates.hh"
#include "obs/obs.hh"
#include "sim/profiler.hh"
#include "util/error.hh"
#include "util/table.hh"
#include "workload/population.hh"

namespace {

using namespace cooper;

const Catalog &
catalog()
{
    static const Catalog instance = Catalog::paperTableI();
    return instance;
}

const InterferenceModel &
model()
{
    static const InterferenceModel instance{catalog()};
    return instance;
}

ColocationInstance
makeInstance(std::size_t agents, std::uint64_t seed)
{
    Rng rng(seed);
    return sampleInstance(catalog(), model(), agents, MixKind::Uniform,
                          rng);
}

void
BM_PolicyAssign(benchmark::State &state, const char *name)
{
    const auto agents = static_cast<std::size_t>(state.range(0));
    const auto instance = makeInstance(agents, 42);
    const auto policy = makePolicy(name);
    for (auto _ : state) {
        Rng rng(7);
        benchmark::DoNotOptimize(policy->assign(instance, rng));
    }
    state.SetComplexityN(state.range(0));
}

void
BM_StableMarriageRandomPrefs(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    std::vector<std::vector<AgentId>> mlists(n), wlists(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            mlists[i].push_back(j);
            wlists[i].push_back(j);
        }
        rng.shuffle(mlists[i]);
        rng.shuffle(wlists[i]);
    }
    const PreferenceProfile proposers(std::move(mlists), n);
    const PreferenceProfile acceptors(std::move(wlists), n);
    for (auto _ : state)
        benchmark::DoNotOptimize(stableMarriage(proposers, acceptors));
    state.SetComplexityN(state.range(0));
}

void
BM_PreferencePrediction(benchmark::State &state)
{
    // The paper's setting: a jobs x jobs matrix at 25% sampling.
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    SparseMatrix full(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            full.set(i, j, rng.uniform() * 0.3);
    const SparseMatrix sparse = subsampleSymmetric(full, 0.25, 2, rng);
    ItemKnnPredictor predictor;
    for (auto _ : state)
        benchmark::DoNotOptimize(predictor.predict(sparse));
}

void
BM_BlockingPairCount(benchmark::State &state)
{
    const auto agents = static_cast<std::size_t>(state.range(0));
    const auto instance = makeInstance(agents, 11);
    Rng rng(13);
    const Matching m =
        StableMarriageRandomPolicy().assign(instance, rng);
    const DisutilityFn d = [&](AgentId a, AgentId b) {
        return instance.trueDisutility(a, b);
    };
    for (auto _ : state)
        benchmark::DoNotOptimize(countBlockingPairs(m, d, 0.02));
}

void
BM_FullEpochOracular(benchmark::State &state)
{
    const auto agents = static_cast<std::size_t>(state.range(0));
    FrameworkConfig config;
    config.policy = "SMR";
    config.oracular = true;
    Rng rng(17);
    const auto population =
        samplePopulation(catalog(), agents, MixKind::Uniform, rng);
    for (auto _ : state) {
        CooperFramework framework(catalog(), model(), config, 19);
        benchmark::DoNotOptimize(framework.runEpoch(population));
    }
}

void
BM_ShapleySampled(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> interference(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        interference[i] += static_cast<double>(i);
    const auto v = interferenceGame(interference);
    Rng rng(23);
    for (auto _ : state)
        benchmark::DoNotOptimize(shapleySampled(n, v, 1000, rng));
}

/**
 * One instrumented epoch; the phase timings come out of the metrics
 * registry rather than ad-hoc stopwatches. The render checks mirror
 * tests/test_chart.cc: before trusting the numbers, assert the table
 * actually materialized with the histograms the phases feed.
 */
void
reportPhaseTimings()
{
    ObsConfig obs;
    obs.metrics = true;
    const ObsScope scope(obs);

    FrameworkConfig config;
    config.policy = "SMR";
    config.sampleRatio = 0.25;
    Rng rng(29);
    const auto population =
        samplePopulation(catalog(), 200, MixKind::Uniform, rng);
    CooperFramework framework(catalog(), model(), config, 31);
    framework.runEpoch(population);

    const Table table = scope.session()->metrics()->toTable();
    const std::string text = table.toText();
    fatalIf(table.rows() == 0 || table.columns() != 7,
            "bench_overheads: metrics table failed to render (",
            table.rows(), " x ", table.columns(), ")");
    for (const char *metric :
         {"framework.epoch_seconds", "coordinator.profile_seconds",
          "coordinator.match_seconds", "profiler.samples",
          "matching.proposals"})
        fatalIf(text.find(metric) == std::string::npos,
                "bench_overheads: metrics table is missing ", metric);

    std::cout << "\nPhase timings from the metrics registry "
                 "(one SMR epoch, 200 agents):\n"
              << text;
}

} // namespace

BENCHMARK_CAPTURE(BM_PolicyAssign, greedy, "GR")
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_PolicyAssign, marriage_random, "SMR")
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_PolicyAssign, roommates, "SR")
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK(BM_StableMarriageRandomPrefs)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK(BM_PreferencePrediction)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_BlockingPairCount)->Arg(256)->Arg(1024);
BENCHMARK(BM_FullEpochOracular)->Arg(200)->Arg(1000);
BENCHMARK(BM_ShapleySampled)->Arg(8)->Arg(16)->Arg(32);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    reportPhaseTimings();
    return 0;
}
