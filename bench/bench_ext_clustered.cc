/**
 * @file
 * Extension (Section VIII): classify applications and match at the
 * class level.
 *
 * Compares type-level matching (TM) and k-means-cluster matching (CM)
 * against the exact agent-level policies on performance, fairness,
 * stability, and matching cost. Expected shape: the approximations
 * recover most of SR's fairness and stability at a fraction of the
 * matching work; stability guarantees weaken as classes coarsen
 * (fewer clusters -> more blocking pairs).
 */

#include <chrono>
#include <iostream>

#include "bench_common.hh"
#include "core/approx_policies.hh"
#include "core/experiment.hh"
#include "matching/blocking.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "600", "population size per trial");
    flags.declare("trials", "5", "trial populations");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Extension: type- and cluster-level matching vs exact policies",
        [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));

        std::vector<std::unique_ptr<ColocationPolicy>> policies;
        policies.push_back(std::make_unique<GreedyPolicy>());
        policies.push_back(std::make_unique<StableRoommatePolicy>());
        policies.push_back(std::make_unique<TypeMatchPolicy>());
        for (std::size_t k : {3u, 6u, 10u})
            policies.push_back(std::make_unique<ClusterMatchPolicy>(k));

        Table table({"policy", "mean_penalty", "fairness_corr",
                     "blocking_pairs_a1%", "assign_ms"});
        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));

        std::vector<OnlineStats> pen(policies.size()),
            fair(policies.size()), block(policies.size()),
            ms(policies.size());
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = sampleInstance(
                catalog, model, agents, MixKind::Uniform, rng);
            const DisutilityFn d = [&](AgentId a, AgentId b) {
                return instance.trueDisutility(a, b);
            };
            for (std::size_t p = 0; p < policies.size(); ++p) {
                Rng policy_rng = rng.split();
                const auto start =
                    std::chrono::steady_clock::now();
                const Matching m =
                    policies[p]->assign(instance, policy_rng);
                const auto elapsed =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start);
                ms[p].add(elapsed.count());
                pen[p].add(instance.meanTruePenalty(m));
                fair[p].add(fairness(aggregateByType(instance, m))
                                .rankCorrelation);
                block[p].add(static_cast<double>(
                    countBlockingPairs(m, d, 0.01)));
            }
        }
        for (std::size_t p = 0; p < policies.size(); ++p) {
            std::string label = policies[p]->name();
            if (label == "CM") {
                label += "(k=" + std::to_string(
                    static_cast<ClusterMatchPolicy *>(policies[p].get())
                        ->clusters()) + ")";
            }
            table.addRow({label, Table::num(pen[p].mean(), 4),
                          Table::num(fair[p].mean(), 3),
                          Table::num(block[p].mean(), 1),
                          Table::num(ms[p].mean(), 2)});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: TM and CM approach SR's "
                     "fairness at far lower matching\ncost; blocking "
                     "pairs grow as the classification coarsens "
                     "(smaller k),\nillustrating the paper's caveat "
                     "that stability guarantees vary.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
