/**
 * @file
 * Ablation: Monte-Carlo Shapley error vs permutation count.
 *
 * Exact Shapley is exponential in the number of agents; Cooper's
 * fairness goal only needs the ordering and rough magnitudes, which
 * sampling provides cheaply. This harness quantifies the trade-off on
 * a 12-agent interference game.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "game/shapley.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "12", "interference-game size (<= 20)");
    flags.declare("repeats", "10", "estimates per sample count");
    flags.declare("seed", "1", "base RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Ablation: sampled Shapley accuracy vs permutation count", [&] {
        const auto n = static_cast<std::size_t>(flags.getInt("agents"));
        const auto repeats =
            static_cast<std::size_t>(flags.getInt("repeats"));

        std::vector<double> interference;
        for (std::size_t i = 0; i < n; ++i)
            interference.push_back(0.5 + static_cast<double>(i));
        const auto v = interferenceGame(interference);
        const auto exact = shapleyExact(n, v);

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        Table table({"samples", "max_abs_error", "mean_abs_error",
                     "order_preserved"});
        for (std::size_t samples : {10u, 50u, 100u, 500u, 1000u,
                                    5000u}) {
            OnlineStats max_err, mean_err;
            std::size_t ordered = 0;
            for (std::size_t r = 0; r < repeats; ++r) {
                const auto est = shapleySampled(n, v, samples, rng);
                double worst = 0.0, total = 0.0;
                bool monotone = true;
                for (std::size_t i = 0; i < n; ++i) {
                    const double err = std::abs(est[i] - exact[i]);
                    worst = std::max(worst, err);
                    total += err;
                    if (i > 0 && est[i] < est[i - 1])
                        monotone = false;
                }
                max_err.add(worst);
                mean_err.add(total / static_cast<double>(n));
                if (monotone)
                    ++ordered;
            }
            table.addRow({Table::num(static_cast<long long>(samples)),
                          Table::num(max_err.mean(), 4),
                          Table::num(mean_err.mean(), 4),
                          Table::num(static_cast<long long>(ordered)) +
                              "/" +
                              Table::num(
                                  static_cast<long long>(repeats))});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: error shrinks roughly with "
                     "1/sqrt(samples); a few hundred\npermutations "
                     "already preserve the contentiousness ordering "
                     "that fair\nattribution needs.\n";
    });
}
