/**
 * @file
 * Ablation: sensitivity of Cooper's desiderata to profiling noise.
 *
 * Runs the full pipeline (sparse profiling, collaborative filtering,
 * SMR matching) at increasing measurement-noise levels and reports
 * prediction accuracy, fairness, and stability. Expected shape:
 * desiderata degrade gracefully — the paper notes stable policies
 * deliver the same desiderata with oracular knowledge or predicted
 * preferences.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/framework.hh"
#include "game/fairness.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/population.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "500", "population size per trial");
    flags.declare("trials", "5", "trial populations per noise level");
    flags.declare("seed", "1", "base RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Ablation: desiderata vs profiling-noise level", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const auto seed =
            static_cast<std::uint64_t>(flags.getInt("seed"));

        Table table({"noise_sigma", "prediction_accuracy",
                     "fairness_corr", "blocking_pairs", "mean_penalty"});
        for (double sigma : {0.0, 0.002, 0.004, 0.01, 0.02}) {
            OnlineStats acc, fair, blocking, penalty;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                FrameworkConfig config;
                config.policy = "SMR";
                config.sampleRatio = 0.25;
                config.noise.sigma = sigma;
                CooperFramework framework(catalog, model, config,
                                          seed + trial * 17);
                Rng rng(seed + trial * 29 + 5);
                const auto population = samplePopulation(
                    catalog, agents, MixKind::Uniform, rng);
                const EpochReport report =
                    framework.runEpoch(population);

                acc.add(report.predictionAccuracy);
                blocking.add(static_cast<double>(report.blockingPairs));
                penalty.add(report.meanPenalty);

                ColocationInstance instance =
                    framework.buildInstance(population);
                const auto rows = penaltiesByType(
                    catalog, population, report.matching,
                    [&](AgentId a, AgentId b) {
                        return instance.trueDisutility(a, b);
                    });
                fair.add(fairness(rows).rankCorrelation);
            }
            table.addRow({Table::num(sigma, 3),
                          Table::num(acc.mean(), 3),
                          Table::num(fair.mean(), 3),
                          Table::num(blocking.mean(), 1),
                          Table::num(penalty.mean(), 4)});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: fairness and performance hold "
                     "as noise grows; accuracy\nand stability degrade "
                     "gracefully.\n";
    });
}
