/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef COOPER_BENCH_COMMON_HH
#define COOPER_BENCH_COMMON_HH

#include <exception>
#include <iostream>
#include <string>

namespace cooper::bench {

/** Run a harness body with uniform banner and error handling. */
template <typename Fn>
int
runHarness(const std::string &title, Fn &&body)
{
    std::cout << "=====================================================\n"
              << title << "\n"
              << "=====================================================\n";
    try {
        body();
    } catch (const std::exception &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
    std::cout << "\n";
    return 0;
}

} // namespace cooper::bench

#endif // COOPER_BENCH_COMMON_HH
