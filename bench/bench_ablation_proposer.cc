/**
 * @file
 * Ablation: the proposer's advantage in stable marriage.
 *
 * Gale-Shapley favors the proposing side (Section III.C). This
 * harness partitions a population, runs the marriage twice — once per
 * proposing side — and compares each side's mean penalty. Expected
 * shape: proposers do no worse than when receiving proposals, but the
 * advantage is small, especially under random partitions.
 */

#include <iostream>
#include <numeric>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "matching/stable_marriage.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace {

using namespace cooper;

/** Mean penalty of `side` agents when `proposers` proposes. */
std::pair<double, double>
runOneDirection(const ColocationInstance &instance,
                const std::vector<AgentId> &proposers,
                const std::vector<AgentId> &acceptors)
{
    auto side_prefs = [&](const std::vector<AgentId> &side,
                          const std::vector<AgentId> &other) {
        return PreferenceProfile::fromDisutility(
            side.size(), other.size(),
            [&](AgentId a, AgentId b) {
                return instance.believedDisutility(side[a], other[b]);
            },
            false);
    };
    const auto result = stableMarriage(side_prefs(proposers, acceptors),
                                       side_prefs(acceptors, proposers));
    OnlineStats prop_stats, acc_stats;
    for (AgentId m = 0; m < proposers.size(); ++m) {
        if (result.proposerPartner[m] == kUnmatched)
            continue;
        const AgentId w = acceptors[result.proposerPartner[m]];
        prop_stats.add(instance.trueDisutility(proposers[m], w));
        acc_stats.add(instance.trueDisutility(w, proposers[m]));
    }
    return {prop_stats.mean(), acc_stats.mean()};
}

/** Fraction of side-A agents whose partner changes when the
 *  proposing direction flips (0 means the stable matching is
 *  unique). */
double
partnerChurn(const ColocationInstance &instance,
             const std::vector<AgentId> &side_a,
             const std::vector<AgentId> &side_b)
{
    auto side_prefs = [&](const std::vector<AgentId> &side,
                          const std::vector<AgentId> &other) {
        return PreferenceProfile::fromDisutility(
            side.size(), other.size(),
            [&](AgentId a, AgentId b) {
                return instance.believedDisutility(side[a], other[b]);
            },
            false);
    };
    const PreferenceProfile a_over_b = side_prefs(side_a, side_b);
    const PreferenceProfile b_over_a = side_prefs(side_b, side_a);
    const auto forward = stableMarriage(a_over_b, b_over_a);
    const auto backward = stableMarriage(b_over_a, a_over_b);

    std::size_t changed = 0;
    for (AgentId a = 0; a < side_a.size(); ++a) {
        // a's partner when A proposes vs when B proposes.
        const AgentId with_a = forward.proposerPartner[a];
        AgentId with_b = kUnmatched;
        for (AgentId b = 0; b < side_b.size(); ++b)
            if (backward.proposerPartner[b] == a)
                with_b = b;
        if (with_a != with_b)
            ++changed;
    }
    return static_cast<double>(changed) /
           static_cast<double>(side_a.size());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "10", "trial populations");
    flags.declare("seed", "1", "base RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Ablation: proposer advantage in stable marriage", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        Table table({"partition", "side", "penalty_when_proposing",
                     "penalty_when_accepting", "advantage_%",
                     "partner_churn_%"});

        for (const char *partition_cstr : {"demand", "random"}) {
            const std::string partition = partition_cstr;
            OnlineStats a_prop, a_acc, b_prop, b_acc, churn;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto instance = sampleInstance(
                    catalog, model, agents, MixKind::Uniform, rng);

                std::vector<AgentId> order(instance.agents());
                std::iota(order.begin(), order.end(), AgentId(0));
                if (partition == "demand") {
                    std::stable_sort(
                        order.begin(), order.end(),
                        [&](AgentId x, AgentId y) {
                            return catalog.job(instance.typeOf(x)).gbps <
                                   catalog.job(instance.typeOf(y)).gbps;
                        });
                } else {
                    rng.shuffle(order);
                }
                const std::size_t half = order.size() / 2;
                std::vector<AgentId> side_a(order.begin(),
                                            order.begin() + half);
                std::vector<AgentId> side_b(order.begin() + half,
                                            order.begin() + 2 * half);

                const auto [ap, bx] =
                    runOneDirection(instance, side_a, side_b);
                a_prop.add(ap);
                b_acc.add(bx);
                const auto [bp, ax] =
                    runOneDirection(instance, side_b, side_a);
                b_prop.add(bp);
                a_acc.add(ax);
                churn.add(partnerChurn(instance, side_a, side_b));
            }
            auto advantage = [](double proposing, double accepting) {
                if (accepting <= 0.0)
                    return 0.0;
                return 100.0 * (accepting - proposing) / accepting;
            };
            table.addRow({partition, "low-demand/first",
                          Table::num(a_prop.mean(), 6),
                          Table::num(a_acc.mean(), 6),
                          Table::num(advantage(a_prop.mean(),
                                               a_acc.mean()), 2),
                          Table::num(100.0 * churn.mean(), 2)});
            table.addRow({partition, "high-demand/second",
                          Table::num(b_prop.mean(), 6),
                          Table::num(b_acc.mean(), 6),
                          Table::num(advantage(b_prop.mean(),
                                               b_acc.mean()), 2),
                          Table::num(100.0 * churn.mean(), 2)});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: proposing never hurts; the "
                     "advantage is small under\nrandom partitions "
                     "(Section III.C). Near-zero partner churn means "
                     "the\ninstance has an (almost) unique stable "
                     "matching, so the advantage\nvanishes entirely."
                     "\n";
    });
}
