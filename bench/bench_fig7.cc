/**
 * @file
 * Figure 7: contention-induced throughput penalties per job under the
 * five colocation policies (GR, CO, SMP, SMR, SR).
 *
 * 1000 jobs sampled uniformly at random share the system; each job's
 * penalty is averaged over its colocations across trial populations.
 * Expected shape: GR and CO show no link between contentiousness
 * (x-axis order) and penalty — dedup is penalized most under GR and
 * above most jobs under CO — while SMR and SR penalties rise with
 * contentiousness. SMP restricts matches and stays unfair.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/online.hh"
#include "util/chart.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "5", "trial populations to average over");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("cf", "false",
                  "use collaborative-filtering predictions instead of "
                  "oracular penalties (Section VI.C)");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 7: per-job penalties under each policy", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const auto policies = figurePolicies();

        // stats[policy][type] accumulates penalties across trials.
        std::map<std::string, std::vector<OnlineStats>> stats;
        for (const auto &policy : policies)
            stats[policy->name()].resize(catalog.size());

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance =
                flags.getBool("cf")
                    ? sampleInstanceCf(catalog, model, agents,
                                       MixKind::Uniform, 0.25, rng)
                    : sampleInstance(catalog, model, agents,
                                     MixKind::Uniform, rng);
            for (const auto &policy : policies) {
                Rng policy_rng = rng.split();
                const PolicyRun run =
                    runPolicy(*policy, instance, policy_rng);
                for (AgentId a = 0; a < instance.agents(); ++a)
                    if (run.matching.isMatched(a))
                        stats[policy->name()][instance.typeOf(a)].add(
                            run.penalties[a]);
            }
        }

        Table table({"job", "GBps", "GR", "CO", "SMP", "SMR", "SR"});
        for (const std::string &name : Catalog::figureJobNames()) {
            const JobType &job = catalog.jobByName(name);
            std::vector<std::string> row{name, Table::num(job.gbps, 2)};
            for (const auto &policy : policies)
                row.push_back(Table::num(
                    stats[policy->name()][job.id].mean(), 4));
            table.addRow(std::move(row));
        }
        table.print(std::cout);

        for (const auto &policy : policies) {
            std::vector<Bar> bars;
            std::vector<JobPenalty> rows;
            for (const std::string &name : Catalog::figureJobNames()) {
                const JobType &job = catalog.jobByName(name);
                bars.push_back(
                    Bar{name, stats[policy->name()][job.id].mean()});
                JobPenalty row;
                row.type = job.id;
                row.gbps = job.gbps;
                row.meanPenalty = stats[policy->name()][job.id].mean();
                rows.push_back(row);
            }
            const FairnessReport report = fairness(rows);
            std::cout << "\n"
                      << renderBarChart(
                             policy->name() +
                                 " mean throughput penalty (rank corr " +
                                 Table::num(report.rankCorrelation, 2) +
                                 ")",
                             bars);
        }

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
