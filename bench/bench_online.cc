/**
 * @file
 * Online-service regression harness: replays the same churn trace
 * through the OnlineDriver twice — once with the warm-started
 * incremental predictor, once forcing a from-scratch re-predict every
 * epoch — cross-checks byte-identical summaries, and emits a
 * schema-stable BENCH_online.json (schema "cooper.bench_online.v1")
 * that tools/bench_json validates.
 *
 * Two phases are reported:
 *
 *  - predict: per-epoch prediction time, full re-predict (baseline)
 *             vs. incremental warm start (optimized). Both modes feed
 *             the same online.predict_seconds histogram, so the phase
 *             seconds are that histogram's per-run sum — exactly the
 *             time spent inside the prediction step, excluding the
 *             trace replay around it.
 *  - epoch:   whole-run wall clock of the incremental service, timed
 *             for trend tracking only (optimized_only).
 *
 * The document also carries the incremental run's online counters
 * (migrations, pairs broken, full rematches, predict cache hits,
 * recomputed similarity pairs) so a perf run can see *why* the
 * predict phase was cheap or expensive.
 *
 * --tiny shrinks the trace for the `ctest -L bench-smoke` run; the
 * speedup acceptance number (incremental >= 1.5x full) is meant to be
 * checked at the default sizes:
 *
 *   bench_online && bench_json --file BENCH_online.json \
 *       --min-speedup predict=1.5
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/obs.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "sim/interference.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

namespace {

using namespace cooper;

using Clock = std::chrono::steady_clock;

/** One phase row of the JSON document. */
struct PhaseResult
{
    std::string name;
    std::string mode; //!< "baseline_vs_optimized" or "optimized_only"
    double baselineSeconds = 0.0;
    double optimizedSeconds = 0.0;
    double speedup = 0.0; //!< 0 in optimized_only mode
    bool identical = true;
    std::string metric; //!< backing MetricsRegistry histogram
    std::uint64_t metricCount = 0;
    double metricSum = 0.0;
};

/** One replay of the trace: everything the phases need. */
struct RunResult
{
    OnlineReport report;
    std::string summary;        //!< writeOnlineSummary bytes
    double predictSeconds = 0.0; //!< online.predict_seconds sum
    std::uint64_t predictCount = 0;
    double wallSeconds = 0.0;
};

/** Full-precision JSON number. */
std::string
jsonNum(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

/** Replay `trace` once; fresh driver, fresh metrics registry. */
RunResult
replay(const Catalog &catalog, const InterferenceModel &model,
       FrameworkConfig config, std::uint64_t seed,
       const ChurnTrace &trace, bool incremental)
{
    config.execution.online.incremental = incremental;

    ObsConfig obs_config;
    obs_config.metrics = true;
    const ObsScope obs(obs_config);

    OnlineDriver driver(catalog, model, config, seed);
    const auto start = Clock::now();
    RunResult out;
    out.report = driver.run(trace);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    out.wallSeconds = elapsed.count();

    std::ostringstream summary;
    writeOnlineSummary(summary, out.report);
    out.summary = summary.str();

    MetricsRegistry *metrics = obsMetrics();
    if (metrics == nullptr)
        throw std::runtime_error("metrics session missing");
    for (const auto &[name, histogram] : metrics->snapshot().histograms) {
        if (name == "online.predict_seconds") {
            out.predictSeconds = histogram.sum;
            out.predictCount = histogram.count;
        }
    }
    return out;
}

void
writeJson(const std::string &path,
          const std::vector<std::pair<std::string, std::string>> &workload,
          const std::vector<PhaseResult> &phases,
          const std::vector<std::pair<std::string, std::size_t>> &counters)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << "{\n  \"schema\": \"cooper.bench_online.v1\",\n";
    out << "  \"workload\": {";
    for (std::size_t i = 0; i < workload.size(); ++i) {
        out << (i ? ", " : "") << "\"" << workload[i].first
            << "\": " << workload[i].second;
    }
    out << "},\n  \"phases\": {\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const PhaseResult &p = phases[i];
        out << "    \"" << p.name << "\": {"
            << "\"mode\": \"" << p.mode << "\", "
            << "\"baseline_seconds\": " << jsonNum(p.baselineSeconds)
            << ", \"optimized_seconds\": " << jsonNum(p.optimizedSeconds)
            << ", \"speedup\": " << jsonNum(p.speedup)
            << ", \"identical\": " << (p.identical ? "true" : "false")
            << ", \"metric\": \"" << p.metric << "\""
            << ", \"metric_count\": " << p.metricCount
            << ", \"metric_sum\": " << jsonNum(p.metricSum) << "}"
            << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  },\n  \"online\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        out << (i ? ", " : "") << "\"" << counters[i].first
            << "\": " << counters[i].second;
    }
    out << "}\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("arrivals", "400", "churn-trace arrivals");
    flags.declare("initial", "24", "jobs present at tick 0");
    flags.declare("mean-gap", "6.0", "mean interarrival gap, ticks");
    flags.declare("mean-life", "900.0", "mean job lifetime, ticks");
    flags.declare("epoch-ticks", "50", "virtual-clock ticks per epoch");
    flags.declare("probes", "4", "probe colocations per admission");
    flags.declare("seed", "2017", "trace and service seed");
    flags.declare("reps", "3", "timing repetitions (best-of)");
    flags.declare("tiny", "false",
                  "smoke-test sizes (arrivals 60, initial 8, ...)");
    flags.declare("out", "BENCH_online.json", "JSON output path");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Online service: incremental warm-start vs. full re-predict",
        [&] {
            const bool tiny = flags.getBool("tiny");
            const auto seed =
                static_cast<std::uint64_t>(flags.getInt("seed"));
            const int reps =
                tiny ? 1 : static_cast<int>(flags.getInt("reps"));

            ChurnConfig churn;
            churn.arrivals = static_cast<std::size_t>(
                tiny ? 60 : flags.getInt("arrivals"));
            churn.initialJobs = static_cast<std::size_t>(
                tiny ? 8 : flags.getInt("initial"));
            churn.meanInterarrivalTicks = flags.getDouble("mean-gap");
            churn.meanLifetimeTicks = flags.getDouble("mean-life");

            // The service decisions never depend on the thread count
            // (held by cooper_cli_serve and test_online_driver), so
            // the bench runs serially: the win being measured is the
            // warm start, not parallel scaling.
            FrameworkConfig config;
            config.execution.threads = 1;
            config.execution.online.epochTicks = static_cast<std::uint64_t>(
                flags.getInt("epoch-ticks"));
            config.execution.online.probesPerArrival =
                static_cast<std::size_t>(flags.getInt("probes"));

            const Catalog catalog = Catalog::paperTableI();
            const InterferenceModel model(catalog);
            Rng trace_rng(seed);
            const ChurnTrace trace =
                generateChurnTrace(catalog, churn, trace_rng);

            // Best-of-reps on both modes; the two runs' summaries must
            // not differ by a byte (every rep is checked).
            RunResult incremental, full;
            bool identical = true;
            for (int r = 0; r < reps; ++r) {
                RunResult inc = replay(catalog, model, config, seed,
                                       trace, /*incremental=*/true);
                RunResult col = replay(catalog, model, config, seed,
                                       trace, /*incremental=*/false);
                identical = identical && inc.summary == col.summary;
                if (r == 0 ||
                    inc.predictSeconds < incremental.predictSeconds)
                    incremental = std::move(inc);
                if (r == 0 || col.predictSeconds < full.predictSeconds)
                    full = std::move(col);
            }

            std::vector<PhaseResult> phases;
            {
                PhaseResult p;
                p.name = "predict";
                p.mode = "baseline_vs_optimized";
                p.baselineSeconds = full.predictSeconds;
                p.optimizedSeconds = incremental.predictSeconds;
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                p.identical = identical;
                p.metric = "online.predict_seconds";
                p.metricCount = incremental.predictCount;
                p.metricSum = incremental.predictSeconds;
                phases.push_back(std::move(p));
            }
            {
                PhaseResult p;
                p.name = "epoch";
                p.mode = "optimized_only";
                p.optimizedSeconds = incremental.wallSeconds;
                p.metric = "online.epoch_seconds";
                p.metricCount = incremental.report.epochs.size();
                p.metricSum = incremental.wallSeconds;
                phases.push_back(std::move(p));
            }

            const OnlineReport &report = incremental.report;
            std::size_t cache_hits = 0, recomputed = 0;
            for (const OnlineEpochStats &e : report.epochs) {
                cache_hits += e.predictCacheHit ? 1 : 0;
                recomputed += e.recomputedPairs;
            }

            Table table({"phase", "baseline", "optimized", "speedup",
                         "identical"});
            for (const PhaseResult &p : phases) {
                const bool compared = p.mode == "baseline_vs_optimized";
                table.addRow(
                    {p.name,
                     compared
                         ? Table::num(p.baselineSeconds * 1e3, 2) + " ms"
                         : std::string("-"),
                     Table::num(p.optimizedSeconds * 1e3, 2) + " ms",
                     compared ? Table::num(p.speedup, 2)
                              : std::string("-"),
                     p.identical ? "yes" : "NO"});
            }
            table.print(std::cout);
            std::cout << "epochs " << report.epochs.size()
                      << ", cache hits " << cache_hits
                      << ", recomputed pairs " << recomputed << "\n";

            if (!identical)
                throw std::runtime_error(
                    "incremental and full-predict summaries differ");

            const std::vector<std::pair<std::string, std::string>>
                workload{
                    {"events", std::to_string(trace.size())},
                    {"epochs", std::to_string(report.epochs.size())},
                    {"types", std::to_string(catalog.size())},
                    {"arrivals", std::to_string(report.totalArrivals)},
                    {"threads", "1"},
                    {"tiny", tiny ? "true" : "false"},
                };
            const std::vector<std::pair<std::string, std::size_t>>
                counters{
                    {"migrations", report.totalMigrations},
                    {"pairs_broken", report.totalPairsBroken},
                    {"full_rematches", report.totalFullRematches},
                    {"predict_cache_hits", cache_hits},
                    {"recomputed_pairs", recomputed},
                };
            writeJson(flags.get("out"), workload, phases, counters);
            std::cout << "\nwrote " << flags.get("out")
                      << " (schema cooper.bench_online.v1)\n";
        });
}
