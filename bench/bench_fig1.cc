/**
 * @file
 * Figure 1: unfair colocations show no link between contentiousness
 * and penalties.
 *
 * 1000 jobs drawn randomly from the pool share last-level cache and
 * memory bandwidth in pairs. The left panel is each job's bandwidth
 * demand; the middle and right panels are throughput penalties under
 * the greedy (GR) and complementary (CO) policies, averaged over the
 * colocations that include the job. Expected shape: Correlation, the
 * most contentious job, is penalized no more than Canneal or Dedup
 * under GR; Dedup, among the least contentious, is penalized more
 * than most under CO.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/online.hh"
#include "util/chart.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "5", "trial populations to average over");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 1: contentiousness vs penalty under GR and CO", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));

        GreedyPolicy gr;
        ComplementaryPolicy co;
        std::vector<OnlineStats> gr_stats(catalog.size());
        std::vector<OnlineStats> co_stats(catalog.size());

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = sampleInstance(
                catalog, model, agents, MixKind::Uniform, rng);
            for (auto *policy :
                 std::initializer_list<const ColocationPolicy *>{
                     &gr, &co}) {
                Rng policy_rng = rng.split();
                const PolicyRun run =
                    runPolicy(*policy, instance, policy_rng);
                auto &stats =
                    policy == static_cast<const ColocationPolicy *>(&gr)
                        ? gr_stats
                        : co_stats;
                for (AgentId a = 0; a < instance.agents(); ++a)
                    if (run.matching.isMatched(a))
                        stats[instance.typeOf(a)].add(run.penalties[a]);
            }
        }

        Table table({"job", "bandwidth_GBps", "GR_penalty",
                     "CO_penalty"});
        std::vector<Bar> demand_bars, gr_bars, co_bars;
        for (const std::string &name : Catalog::figureJobNames()) {
            const JobType &job = catalog.jobByName(name);
            table.addRow({name, Table::num(job.gbps, 2),
                          Table::num(gr_stats[job.id].mean(), 4),
                          Table::num(co_stats[job.id].mean(), 4)});
            demand_bars.push_back(Bar{name, job.gbps});
            gr_bars.push_back(Bar{name, gr_stats[job.id].mean()});
            co_bars.push_back(Bar{name, co_stats[job.id].mean()});
        }
        table.print(std::cout);
        std::cout << "\n"
                  << renderBarChart("Memory bandwidth (GB/s)",
                                    demand_bars)
                  << "\n"
                  << renderBarChart("Greedy (GR) throughput penalty",
                                    gr_bars)
                  << "\n"
                  << renderBarChart(
                         "Complementary (CO) throughput penalty",
                         co_bars);

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
