/**
 * @file
 * Figure 9: performance impact when adopting the cooperative game
 * (S*) instead of performance-centric policies (GR, CO).
 *
 * For each pair (stable policy, baseline), count agents whose
 * performance improves, stays unchanged, or degrades when the same
 * population is recolocated with the stable policy. Data averaged
 * over 10 populations of 1000 randomly sampled jobs. Expected shape:
 * more than half of agents improve under SR vs GR, and a large
 * majority performs at least as well under every S* alternative.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "10", "trial populations");
    flags.declare("epsilon", "0.005",
                  "penalty change below which performance is "
                  "considered unchanged");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 9: agents improved/unchanged/degraded under S* vs "
        "GR and CO",
        [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const double epsilon = flags.getDouble("epsilon");

        const std::vector<std::string> stable{"SR", "SMR", "SMP"};
        const std::vector<std::string> baseline{"GR", "CO"};

        struct Counts
        {
            double improved = 0.0;
            double unchanged = 0.0;
            double degraded = 0.0;
        };
        std::map<std::string, Counts> totals;

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = sampleInstance(
                catalog, model, agents, MixKind::Uniform, rng);
            std::map<std::string, std::vector<double>> penalties;
            for (const char *name :
                 {"SR", "SMR", "SMP", "GR", "CO"}) {
                Rng policy_rng = rng.split();
                const auto policy = makePolicy(name);
                penalties[name] =
                    runPolicy(*policy, instance, policy_rng).penalties;
            }
            for (const auto &s : stable) {
                for (const auto &b : baseline) {
                    Counts &c = totals[s + "/" + b];
                    for (AgentId a = 0; a < agents; ++a) {
                        const double delta =
                            penalties[b][a] - penalties[s][a];
                        if (delta > epsilon)
                            c.improved += 1.0;
                        else if (delta < -epsilon)
                            c.degraded += 1.0;
                        else
                            c.unchanged += 1.0;
                    }
                }
            }
        }

        Table table({"switch", "improved", "unchanged", "degraded",
                     "at_least_as_well_%"});
        for (const auto &s : stable) {
            for (const auto &b : baseline) {
                const std::string key = s + "/" + b;
                Counts c = totals[key];
                const double t = static_cast<double>(trials);
                c.improved /= t;
                c.unchanged /= t;
                c.degraded /= t;
                const double ok = 100.0 * (c.improved + c.unchanged) /
                                  static_cast<double>(agents);
                table.addRow({key, Table::num(c.improved, 1),
                              Table::num(c.unchanged, 1),
                              Table::num(c.degraded, 1),
                              Table::num(ok, 1)});
            }
        }
        table.print(std::cout);
        std::cout << "\nCounts are per population of "
                  << flags.getInt("agents") << " agents, averaged over "
                  << trials << " populations.\n"
                  << "Expected shape: SR/GR improves more than half of "
                     "the agents; the\ndegraded minority are the "
                     "contentious jobs held responsible for their\n"
                     "contributions to contention.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
