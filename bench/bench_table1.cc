/**
 * @file
 * Table I: application configurations, datasets, and memory intensity.
 *
 * Prints the evaluation catalog exactly as the paper tabulates it,
 * plus the calibrated simulator attributes this reproduction adds.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness("Table I: workloads and memory intensity",
                             [&] {
        const Catalog catalog = Catalog::paperTableI();

        Table table({"ID", "Name", "Suite", "Application", "Dataset",
                     "GBps", "CacheMB", "BwSens", "CacheSens"});
        for (const auto &job : catalog.jobs()) {
            table.addRow({Table::num(static_cast<long long>(job.id + 1)),
                          job.name, suiteName(job.suite), job.application,
                          job.dataset, Table::num(job.gbps, 2),
                          Table::num(job.cacheMB, 1),
                          Table::num(job.bwSensitivity, 2),
                          Table::num(job.cacheSensitivity, 2)});
        }
        table.print(std::cout);
        std::cout << "\nGBps reproduces Table I verbatim; CacheMB and "
                     "the sensitivities are\nthis reproduction's "
                     "calibration (DESIGN.md section 2).\n";
        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
