/**
 * @file
 * Service-plane throughput harness: serves one churn trace over real
 * loopback TCP — the in-process load generator replaying it from N
 * concurrent connections — and emits a schema-stable BENCH_serve.json
 * (schema "cooper.bench_serve.v1") that tools/bench_json validates.
 *
 * Three phases are reported:
 *
 *  - serve:          whole-run client wall clock of the batched
 *                    server, timed for trend tracking
 *                    (optimized_only). The document's latency object
 *                    carries this run's sustained arrivals/sec and
 *                    the p50/p99/p999 of per-message RTT and
 *                    per-epoch completion latency.
 *  - batched_decode: the same trace served by the per-message-syscall
 *                    baseline (one epoll wakeup, two reads, and one
 *                    write per frame) vs. the batched server
 *                    (drain-until-EAGAIN, single decode pass, writev
 *                    coalescing). `identical` holds both served
 *                    summaries byte-equal to the in-process
 *                    OnlineDriver replay — the net plane must never
 *                    change a decision, only its transport cost.
 *  - runs_per_server: N independent replays (run r seeded seed+r)
 *                    hosted concurrently behind one epoll loop vs.
 *                    the same N runs served one at a time. The
 *                    reported "speedup" is the per-run efficiency
 *                    N*wall_1 / wall_N — 1.0 means colocating runs
 *                    costs nothing over serving them back to back,
 *                    and the acceptance floor (>= 0.5 at N = 4)
 *                    bounds the multi-run coordination overhead.
 *                    `identical` holds every concurrent run's summary
 *                    byte-equal to its solo in-process replay.
 *
 * The trace shape is deliberately decode-heavy (many events per
 * epoch, small population) so the phase measures the framing hot
 * path, not the matching work behind it.
 *
 * --tiny shrinks the trace for the `ctest -L bench-smoke` run; the
 * speedup acceptance number (batched >= 1.1x per-message) is enforced
 * there and meant to be re-checked at the default sizes:
 *
 *   bench_serve && bench_json --file BENCH_serve.json \
 *       --min-speedup batched_decode=1.1
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "net/service_plane.hh"
#include "obs/obs.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "sim/interference.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

namespace {

using namespace cooper;

/** One phase row of the JSON document. */
struct PhaseResult
{
    std::string name;
    std::string mode; //!< "baseline_vs_optimized" or "optimized_only"
    double baselineSeconds = 0.0;
    double optimizedSeconds = 0.0;
    double speedup = 0.0; //!< 0 in optimized_only mode
    bool identical = true;
    std::string metric; //!< backing MetricsRegistry counter
    std::uint64_t metricCount = 0;
    double metricSum = 0.0;
};

/** One served replay: client-side stats plus server-side counters. */
struct ServedRun
{
    std::string summary; //!< the Summary bytes every client received
    net::LoadGenStats stats;
    std::uint64_t readSyscalls = 0;
    std::uint64_t writeSyscalls = 0;
    std::uint64_t framesIn = 0;
    std::uint64_t epochsServed = 0;
};

/** Full-precision JSON number. */
std::string
jsonNum(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

std::uint64_t
counterValue(const MetricsSnapshot &snapshot, const std::string &name)
{
    for (const auto &[counter, value] : snapshot.counters)
        if (counter == name)
            return value;
    return 0;
}

/**
 * Serve `trace` over loopback TCP: an EpollServer on its own thread,
 * the load generator replaying from `connections` client sockets.
 */
ServedRun
serveOnce(const Catalog &catalog, const InterferenceModel &model,
          const FrameworkConfig &config, std::uint64_t seed,
          const ChurnTrace &trace, std::size_t connections,
          bool batched)
{
    ObsConfig obs_config;
    obs_config.metrics = true;
    const ObsScope obs(obs_config);

    OnlineDriver driver(catalog, model, config, seed);
    net::ServicePlane plane(catalog, driver);

    net::ServerConfig server_config;
    server_config.batched = batched;
    net::EpollServer server(plane, server_config);

    bool served = false;
    std::thread serving([&] { served = server.runUntilServed(); });

    net::LoadGenConfig client_config;
    client_config.port = server.port();
    client_config.connections = connections;
    const net::LoadGenResult result = net::runLoadGen(trace, client_config);
    serving.join();

    if (!served)
        throw std::runtime_error("serve run aborted: " +
                                 server.lastError());
    if (!result.ok)
        throw std::runtime_error("load generator failed: " +
                                 result.error);

    MetricsRegistry *metrics = obsMetrics();
    if (metrics == nullptr)
        throw std::runtime_error("metrics session missing");
    const MetricsSnapshot snapshot = metrics->snapshot();

    ServedRun out;
    out.summary = result.summary;
    out.stats = result.stats;
    out.readSyscalls = counterValue(snapshot, "net.read_syscalls");
    out.writeSyscalls = counterValue(snapshot, "net.write_syscalls");
    out.framesIn = counterValue(snapshot, "net.frames_in");
    out.epochsServed = counterValue(snapshot, "net.epochs_served");
    return out;
}

/** What one multi-run service produced. */
struct MultiServed
{
    double wallSeconds = 0.0; //!< first send to last summary, overall
    bool identical = true;    //!< every summary matched its reference
    std::uint64_t runsServed = 0;
};

/**
 * Host `runs` concurrent replays of `trace` (run r seeded seed + r)
 * behind one EpollServer, each fed by its own client thread, and
 * check every summary against the matching in-process reference.
 */
MultiServed
serveMulti(const Catalog &catalog, const InterferenceModel &model,
           const FrameworkConfig &config, std::uint64_t seed,
           const ChurnTrace &trace, std::uint64_t runs,
           std::size_t connections,
           const std::vector<std::string> &references)
{
    ObsConfig obs_config;
    obs_config.metrics = true;
    const ObsScope obs(obs_config);

    std::vector<std::unique_ptr<OnlineDriver>> drivers;
    std::vector<std::unique_ptr<net::ServicePlane>> planes;
    for (std::uint64_t r = 0; r < runs; ++r) {
        drivers.push_back(std::make_unique<OnlineDriver>(
            catalog, model, config, seed + r));
        planes.push_back(std::make_unique<net::ServicePlane>(
            catalog, *drivers.back()));
    }

    net::ServerConfig server_config;
    net::EpollServer server(server_config);
    for (std::uint64_t r = 0; r < runs; ++r)
        server.addRun(r, *planes[r]);

    bool served = false;
    std::thread serving([&] { served = server.runUntilServed(); });

    std::vector<net::LoadGenResult> results(runs);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(runs);
    for (std::uint64_t r = 0; r < runs; ++r)
        clients.emplace_back([&, r] {
            net::LoadGenConfig client_config;
            client_config.port = server.port();
            client_config.connections = connections;
            client_config.runId = r;
            results[r] = net::runLoadGen(trace, client_config);
        });
    for (auto &client : clients)
        client.join();
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    serving.join();

    if (!served)
        throw std::runtime_error("multi-run serve aborted: " +
                                 server.lastError());
    MultiServed out;
    out.wallSeconds = wall;
    for (std::uint64_t r = 0; r < runs; ++r) {
        if (!results[r].ok)
            throw std::runtime_error(
                "load generator failed on run " + std::to_string(r) +
                ": " + results[r].error);
        out.identical =
            out.identical && results[r].summary == references[r];
    }
    MetricsRegistry *metrics = obsMetrics();
    if (metrics == nullptr)
        throw std::runtime_error("metrics session missing");
    out.runsServed =
        counterValue(metrics->snapshot(), "net.runs_served");
    return out;
}

void
writeJson(const std::string &path,
          const std::vector<std::pair<std::string, std::string>> &workload,
          const std::vector<PhaseResult> &phases,
          const std::vector<std::pair<std::string, double>> &latency)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << "{\n  \"schema\": \"cooper.bench_serve.v1\",\n";
    out << "  \"workload\": {";
    for (std::size_t i = 0; i < workload.size(); ++i) {
        out << (i ? ", " : "") << "\"" << workload[i].first
            << "\": " << workload[i].second;
    }
    out << "},\n  \"phases\": {\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const PhaseResult &p = phases[i];
        out << "    \"" << p.name << "\": {"
            << "\"mode\": \"" << p.mode << "\", "
            << "\"baseline_seconds\": " << jsonNum(p.baselineSeconds)
            << ", \"optimized_seconds\": " << jsonNum(p.optimizedSeconds)
            << ", \"speedup\": " << jsonNum(p.speedup)
            << ", \"identical\": " << (p.identical ? "true" : "false")
            << ", \"metric\": \"" << p.metric << "\""
            << ", \"metric_count\": " << p.metricCount
            << ", \"metric_sum\": " << jsonNum(p.metricSum) << "}"
            << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  },\n  \"latency\": {";
    for (std::size_t i = 0; i < latency.size(); ++i) {
        out << (i ? ", " : "") << "\"" << latency[i].first
            << "\": " << jsonNum(latency[i].second);
    }
    out << "}\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("arrivals", "2000", "churn-trace arrivals");
    flags.declare("initial", "8", "jobs present at tick 0");
    flags.declare("mean-gap", "2.0", "mean interarrival gap, ticks");
    flags.declare("mean-life", "40.0", "mean job lifetime, ticks");
    flags.declare("epoch-ticks", "400", "virtual-clock ticks per epoch");
    flags.declare("connections", "4", "load-generator connections");
    flags.declare("runs", "4",
                  "concurrent replays for the runs_per_server phase");
    flags.declare("run-connections", "2",
                  "connections per replay in the runs_per_server "
                  "phase (both legs)");
    flags.declare("seed", "2017", "trace and service seed");
    flags.declare("reps", "3", "timing repetitions (best-of)");
    flags.declare("tiny", "false",
                  "smoke-test sizes (arrivals 300, 1 rep)");
    flags.declare("out", "BENCH_serve.json", "JSON output path");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Service plane: batched decode vs. per-message syscalls",
        [&] {
            const bool tiny = flags.getBool("tiny");
            const auto seed =
                static_cast<std::uint64_t>(flags.getInt("seed"));
            const int reps =
                tiny ? 1 : static_cast<int>(flags.getInt("reps"));
            const auto connections = static_cast<std::size_t>(
                flags.getInt("connections"));

            ChurnConfig churn;
            churn.arrivals = static_cast<std::size_t>(
                tiny ? 300 : flags.getInt("arrivals"));
            churn.initialJobs =
                static_cast<std::size_t>(flags.getInt("initial"));
            churn.meanInterarrivalTicks = flags.getDouble("mean-gap");
            churn.meanLifetimeTicks = flags.getDouble("mean-life");

            // Transport cost is what is being measured; the service
            // itself runs serially so the decode path dominates.
            FrameworkConfig config;
            config.execution.threads = 1;
            config.execution.online.epochTicks =
                static_cast<std::uint64_t>(flags.getInt("epoch-ticks"));

            const Catalog catalog = Catalog::paperTableI();
            const InterferenceModel model(catalog);
            Rng trace_rng(seed);
            const ChurnTrace trace =
                generateChurnTrace(catalog, churn, trace_rng);

            const auto runs =
                static_cast<std::uint64_t>(flags.getInt("runs"));
            const auto runConnections = static_cast<std::size_t>(
                flags.getInt("run-connections"));

            // The determinism references: the same trace replayed
            // in-process, no sockets anywhere — one per concurrent
            // run (run r uses seed + r).
            std::vector<std::string> references;
            for (std::uint64_t r = 0; r < runs; ++r) {
                OnlineDriver reference(catalog, model, config,
                                       seed + r);
                std::ostringstream summary;
                writeOnlineSummary(summary, reference.run(trace));
                references.push_back(summary.str());
            }
            const std::string &reference_summary = references.front();

            // Best-of-reps on both transports; every rep's served
            // summary must match the in-process bytes.
            ServedRun batched, permsg;
            bool identical = true;
            for (int r = 0; r < reps; ++r) {
                ServedRun fast =
                    serveOnce(catalog, model, config, seed, trace,
                              connections, /*batched=*/true);
                ServedRun slow =
                    serveOnce(catalog, model, config, seed, trace,
                              connections, /*batched=*/false);
                identical = identical &&
                            fast.summary == reference_summary &&
                            slow.summary == reference_summary;
                if (r == 0 ||
                    fast.stats.wallSeconds < batched.stats.wallSeconds)
                    batched = std::move(fast);
                if (r == 0 ||
                    slow.stats.wallSeconds < permsg.stats.wallSeconds)
                    permsg = std::move(slow);
            }

            // Multi-run hosting: N concurrent replays vs. the same N
            // served one at a time (same per-run connection count on
            // both legs).
            MultiServed solo, multi;
            bool multiIdentical = true;
            for (int r = 0; r < reps; ++r) {
                MultiServed one =
                    serveMulti(catalog, model, config, seed, trace,
                               1, runConnections, references);
                MultiServed all =
                    serveMulti(catalog, model, config, seed, trace,
                               runs, runConnections, references);
                multiIdentical =
                    multiIdentical && one.identical && all.identical;
                if (r == 0 || one.wallSeconds < solo.wallSeconds)
                    solo = one;
                if (r == 0 || all.wallSeconds < multi.wallSeconds)
                    multi = all;
            }
            const double sequentialSeconds =
                static_cast<double>(runs) * solo.wallSeconds;

            std::vector<PhaseResult> phases;
            {
                PhaseResult p;
                p.name = "serve";
                p.mode = "optimized_only";
                p.optimizedSeconds = batched.stats.wallSeconds;
                p.identical = identical;
                p.metric = "net.frames_in";
                p.metricCount = batched.framesIn;
                p.metricSum = static_cast<double>(batched.framesIn);
                phases.push_back(std::move(p));
            }
            {
                PhaseResult p;
                p.name = "batched_decode";
                p.mode = "baseline_vs_optimized";
                p.baselineSeconds = permsg.stats.wallSeconds;
                p.optimizedSeconds = batched.stats.wallSeconds;
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                p.identical = identical;
                p.metric = "net.read_syscalls";
                p.metricCount = batched.readSyscalls;
                p.metricSum =
                    static_cast<double>(batched.readSyscalls);
                phases.push_back(std::move(p));
            }
            {
                PhaseResult p;
                p.name = "runs_per_server";
                p.mode = "baseline_vs_optimized";
                p.baselineSeconds = sequentialSeconds;
                p.optimizedSeconds = multi.wallSeconds;
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                p.identical = multiIdentical;
                p.metric = "net.runs_served";
                p.metricCount = multi.runsServed;
                p.metricSum = static_cast<double>(multi.runsServed);
                phases.push_back(std::move(p));
            }

            Table table({"transport", "wall", "events/s", "reads",
                         "writes", "identical"});
            table.addRow(
                {"batched",
                 Table::num(batched.stats.wallSeconds * 1e3, 2) + " ms",
                 Table::num(batched.stats.arrivalsPerSecond, 0),
                 std::to_string(batched.readSyscalls),
                 std::to_string(batched.writeSyscalls),
                 identical ? "yes" : "NO"});
            table.addRow(
                {"per-message",
                 Table::num(permsg.stats.wallSeconds * 1e3, 2) + " ms",
                 Table::num(permsg.stats.arrivalsPerSecond, 0),
                 std::to_string(permsg.readSyscalls),
                 std::to_string(permsg.writeSyscalls),
                 identical ? "yes" : "NO"});
            table.print(std::cout);
            std::cout << "batched_decode speedup "
                      << Table::num(phases[1].speedup, 2) << "x over "
                      << trace.size() << " event(s), "
                      << batched.epochsServed << " epoch(s); rtt p99 "
                      << Table::num(batched.stats.rttP99Ms, 3)
                      << " ms, epoch p99 "
                      << Table::num(batched.stats.epochP99Ms, 3)
                      << " ms\n";
            std::cout << "runs_per_server efficiency "
                      << Table::num(phases[2].speedup, 2) << "x ("
                      << runs << " run(s) of " << runConnections
                      << " conn(s): "
                      << Table::num(multi.wallSeconds * 1e3, 2)
                      << " ms concurrent vs "
                      << Table::num(sequentialSeconds * 1e3, 2)
                      << " ms sequential)\n";

            if (!identical || !multiIdentical)
                throw std::runtime_error(
                    "served summaries differ from the in-process "
                    "replay");

            const std::vector<std::pair<std::string, std::string>>
                workload{
                    {"events", std::to_string(trace.size())},
                    {"epochs", std::to_string(batched.epochsServed)},
                    {"types", std::to_string(catalog.size())},
                    {"arrivals",
                     std::to_string(batched.stats.eventsSent)},
                    {"connections", std::to_string(connections)},
                    {"runs", std::to_string(runs)},
                    {"threads", "1"},
                    {"tiny", tiny ? "true" : "false"},
                };
            const std::vector<std::pair<std::string, double>> latency{
                {"arrivals_per_sec",
                 batched.stats.arrivalsPerSecond},
                {"rtt_p50_ms", batched.stats.rttP50Ms},
                {"rtt_p99_ms", batched.stats.rttP99Ms},
                {"rtt_p999_ms", batched.stats.rttP999Ms},
                {"epoch_p50_ms", batched.stats.epochP50Ms},
                {"epoch_p99_ms", batched.stats.epochP99Ms},
                {"epoch_p999_ms", batched.stats.epochP999Ms},
            };
            writeJson(flags.get("out"), workload, phases, latency);
            std::cout << "\nwrote " << flags.get("out")
                      << " (schema cooper.bench_serve.v1)\n";
        });
}
