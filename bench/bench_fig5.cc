/**
 * @file
 * Figure 5: the stable-marriage worked example with compute- and
 * memory-intensive jobs.
 *
 * Three memory-intensive proposers (m1..m3) and three
 * compute-intensive acceptors (c1..c3) with the paper's preference
 * table. Round 1: m1 and m3 both propose to c1, which accepts m3;
 * m2 proposes to c3, which accepts. Round 2: the rejected m1 proposes
 * to c2, which accepts. Outcome: {m1c2, m2c3, m3c1}.
 */

#include <iostream>

#include "bench_common.hh"
#include "matching/stable_marriage.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness("Figure 5: stable-marriage example", [&] {
        // Figure 5's preference table (0-indexed).
        PreferenceProfile proposers({{0, 1, 2}, {2, 0, 1}, {0, 1, 2}},
                                    3);
        PreferenceProfile acceptors({{1, 2, 0}, {2, 0, 1}, {1, 0, 2}},
                                    3);

        Table prefs({"agent", "preferences (best first)"});
        prefs.addRow({"m1", "c1 > c2 > c3"});
        prefs.addRow({"m2", "c3 > c1 > c2"});
        prefs.addRow({"m3", "c1 > c2 > c3"});
        prefs.addRow({"c1", "m2 > m3 > m1"});
        prefs.addRow({"c2", "m3 > m1 > m2"});
        prefs.addRow({"c3", "m2 > m1 > m3"});
        prefs.print(std::cout);

        const MarriageResult result =
            stableMarriageParallel(proposers, acceptors);

        std::cout << "\nColocation:";
        for (AgentId m = 0; m < 3; ++m)
            std::cout << "  m" << m + 1 << "c"
                      << result.proposerPartner[m] + 1;
        std::cout << "\nProposal rounds: " << result.rounds
                  << "  (paper: 2)"
                  << "\nProposals issued: " << result.proposals
                  << "\nBlocking pairs: "
                  << marriageBlockingPairs(proposers, acceptors,
                                           result.proposerPartner)
                  << "  (stable: 0)\n";
    });
}
