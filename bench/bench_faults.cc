/**
 * @file
 * Fault-plane regression harness: replays one churn trace through the
 * OnlineDriver twice — once fault-free, once under a rate-based
 * FaultPlan (probe timeouts, dropped/corrupted measurements, node
 * crashes) — cross-checks that each mode is run-to-run deterministic,
 * and emits a schema-stable BENCH_faults.json (schema
 * "cooper.bench_faults.v1") that tools/bench_json validates.
 *
 * Two phases are reported, both optimized_only (there is no
 * baseline/optimized pair here; the interesting numbers are the
 * degradation deltas in the "faults" object):
 *
 *  - clean:    whole-run wall clock of the fault-free service.
 *  - degraded: whole-run wall clock under the fault plan, including
 *              retry ladders, quarantine churn, and crash repair.
 *
 * The "faults" object carries the degraded run's lifetime fault
 * counters plus the degradation deltas a perf run cares about:
 * blocking_ratio (final blocking-pair count, degraded / clean — the
 * acceptance number, expected <= 2.0 at default sizes) and
 * throughput_ratio (epochs per second, degraded / clean).
 *
 * --tiny shrinks the trace for the `ctest -L bench-smoke` run:
 *
 *   bench_faults --tiny && bench_json --file BENCH_faults.json
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fault/plan.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "sim/interference.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

namespace {

using namespace cooper;

using Clock = std::chrono::steady_clock;

/** One phase row of the JSON document. */
struct PhaseResult
{
    std::string name;
    std::string mode = "optimized_only";
    double optimizedSeconds = 0.0;
    std::string metric = "online.epoch_seconds";
    std::uint64_t metricCount = 0;
    double metricSum = 0.0;
};

/** One replay of the trace: everything the phases need. */
struct RunResult
{
    OnlineReport report;
    std::string summary; //!< writeOnlineSummary bytes
    double wallSeconds = 0.0;
};

/** Full-precision JSON number. */
std::string
jsonNum(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

/** Final epoch's post-repair blocking-pair count (0 for empty runs). */
std::size_t
finalBlocking(const OnlineReport &report)
{
    if (report.epochs.empty())
        return 0;
    return report.epochs.back().blockingAfter;
}

/** Replay `trace` once under `plan`; fresh driver every time. */
RunResult
replay(const Catalog &catalog, const InterferenceModel &model,
       const FrameworkConfig &config, std::uint64_t seed,
       const ChurnTrace &trace, const FaultPlan &plan)
{
    OnlineDriver driver(catalog, model, config, seed);
    driver.setFaultPlan(plan);
    const auto start = Clock::now();
    RunResult out;
    out.report = driver.run(trace);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    out.wallSeconds = elapsed.count();

    std::ostringstream summary;
    writeOnlineSummary(summary, out.report);
    out.summary = summary.str();
    return out;
}

void
writeJson(const std::string &path,
          const std::vector<std::pair<std::string, std::string>> &workload,
          const std::vector<PhaseResult> &phases,
          const std::vector<std::pair<std::string, std::string>> &faults)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << "{\n  \"schema\": \"cooper.bench_faults.v1\",\n";
    out << "  \"workload\": {";
    for (std::size_t i = 0; i < workload.size(); ++i) {
        out << (i ? ", " : "") << "\"" << workload[i].first
            << "\": " << workload[i].second;
    }
    out << "},\n  \"phases\": {\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const PhaseResult &p = phases[i];
        out << "    \"" << p.name << "\": {"
            << "\"mode\": \"" << p.mode << "\", "
            << "\"baseline_seconds\": 0"
            << ", \"optimized_seconds\": " << jsonNum(p.optimizedSeconds)
            << ", \"speedup\": 0"
            << ", \"identical\": true"
            << ", \"metric\": \"" << p.metric << "\""
            << ", \"metric_count\": " << p.metricCount
            << ", \"metric_sum\": " << jsonNum(p.metricSum) << "}"
            << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  },\n  \"faults\": {";
    for (std::size_t i = 0; i < faults.size(); ++i) {
        out << (i ? ", " : "") << "\"" << faults[i].first
            << "\": " << faults[i].second;
    }
    out << "}\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("arrivals", "400", "churn-trace arrivals");
    flags.declare("initial", "24", "jobs present at tick 0");
    flags.declare("mean-gap", "6.0", "mean interarrival gap, ticks");
    flags.declare("mean-life", "900.0", "mean job lifetime, ticks");
    flags.declare("epoch-ticks", "50", "virtual-clock ticks per epoch");
    flags.declare("probes", "4", "probe colocations per admission");
    flags.declare("timeout-rate", "0.2", "probe-timeout probability");
    flags.declare("drop-rate", "0.05", "measurement-drop probability");
    flags.declare("corrupt-rate", "0.05",
                  "measurement-corruption probability");
    flags.declare("crash-rate", "0.1", "node crashes per epoch");
    flags.declare("seed", "2017", "trace, service, and fault seed");
    flags.declare("reps", "3", "timing repetitions (best-of)");
    flags.declare("tiny", "false",
                  "smoke-test sizes (arrivals 60, initial 8, ...)");
    flags.declare("out", "BENCH_faults.json", "JSON output path");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Online service: fault-free vs. degraded under a fault plan",
        [&] {
            const bool tiny = flags.getBool("tiny");
            const auto seed =
                static_cast<std::uint64_t>(flags.getInt("seed"));
            const int reps =
                tiny ? 1 : static_cast<int>(flags.getInt("reps"));

            ChurnConfig churn;
            churn.arrivals = static_cast<std::size_t>(
                tiny ? 60 : flags.getInt("arrivals"));
            churn.initialJobs = static_cast<std::size_t>(
                tiny ? 8 : flags.getInt("initial"));
            churn.meanInterarrivalTicks = flags.getDouble("mean-gap");
            churn.meanLifetimeTicks = flags.getDouble("mean-life");

            // Serial, like bench_online: the service decisions never
            // depend on the thread count, and the deltas being
            // measured are degradation, not parallel scaling.
            FrameworkConfig config;
            config.execution.threads = 1;
            config.execution.online.epochTicks = static_cast<std::uint64_t>(
                flags.getInt("epoch-ticks"));
            config.execution.online.probesPerArrival =
                static_cast<std::size_t>(flags.getInt("probes"));

            FaultSpec spec;
            spec.seed = seed;
            spec.probeTimeoutRate = flags.getDouble("timeout-rate");
            spec.measurementDropRate = flags.getDouble("drop-rate");
            spec.measurementCorruptRate = flags.getDouble("corrupt-rate");
            spec.crashRatePerEpoch = flags.getDouble("crash-rate");
            const FaultPlan plan(spec);

            const Catalog catalog = Catalog::paperTableI();
            const InterferenceModel model(catalog);
            Rng trace_rng(seed);
            const ChurnTrace trace =
                generateChurnTrace(catalog, churn, trace_rng);

            // Best-of-reps on both modes; every rep of a mode must
            // reproduce that mode's summary byte-for-byte.
            RunResult clean, degraded;
            bool identical = true;
            for (int r = 0; r < reps; ++r) {
                RunResult cln = replay(catalog, model, config, seed,
                                       trace, FaultPlan());
                RunResult deg =
                    replay(catalog, model, config, seed, trace, plan);
                if (r == 0) {
                    clean = std::move(cln);
                    degraded = std::move(deg);
                    continue;
                }
                identical = identical && cln.summary == clean.summary &&
                            deg.summary == degraded.summary;
                if (cln.wallSeconds < clean.wallSeconds)
                    clean = std::move(cln);
                if (deg.wallSeconds < degraded.wallSeconds)
                    degraded = std::move(deg);
            }

            std::vector<PhaseResult> phases;
            {
                PhaseResult p;
                p.name = "clean";
                p.optimizedSeconds = clean.wallSeconds;
                p.metricCount = clean.report.epochs.size();
                p.metricSum = clean.wallSeconds;
                phases.push_back(std::move(p));
            }
            {
                PhaseResult p;
                p.name = "degraded";
                p.optimizedSeconds = degraded.wallSeconds;
                p.metricCount = degraded.report.epochs.size();
                p.metricSum = degraded.wallSeconds;
                phases.push_back(std::move(p));
            }

            const OnlineReport &deg = degraded.report;
            const std::size_t clean_blocking =
                finalBlocking(clean.report);
            const std::size_t degraded_blocking = finalBlocking(deg);
            const double blocking_ratio =
                static_cast<double>(degraded_blocking) /
                static_cast<double>(clean_blocking > 0 ? clean_blocking
                                                       : 1);
            const double clean_rate =
                static_cast<double>(clean.report.epochs.size()) /
                clean.wallSeconds;
            const double degraded_rate =
                static_cast<double>(deg.epochs.size()) /
                degraded.wallSeconds;
            const double throughput_ratio = degraded_rate / clean_rate;

            Table table({"phase", "wall", "epochs", "faults",
                         "blocking"});
            table.addRow({"clean",
                          Table::num(clean.wallSeconds * 1e3, 2) + " ms",
                          std::to_string(clean.report.epochs.size()),
                          "0", std::to_string(clean_blocking)});
            table.addRow({"degraded",
                          Table::num(degraded.wallSeconds * 1e3, 2) +
                              " ms",
                          std::to_string(deg.epochs.size()),
                          std::to_string(deg.totalFaultsInjected),
                          std::to_string(degraded_blocking)});
            table.print(std::cout);
            std::cout << "degraded: " << deg.totalRetries << " retries, "
                      << deg.totalQuarantined << " quarantined ("
                      << deg.totalQuarantineReleased << " released, "
                      << deg.totalAbandoned << " abandoned), "
                      << deg.totalCrashes << " crashes, "
                      << deg.totalCfFallbacks << " CF fallbacks\n";
            std::cout << "blocking ratio "
                      << Table::num(blocking_ratio, 2)
                      << ", throughput ratio "
                      << Table::num(throughput_ratio, 2) << "\n";

            if (!identical)
                throw std::runtime_error(
                    "replays of one mode produced different summaries");
            if (clean.report.totalFaultsInjected != 0)
                throw std::runtime_error(
                    "fault-free run reported injected faults");
            if (deg.totalFaultsInjected == 0)
                throw std::runtime_error(
                    "degraded run injected no faults");

            const std::vector<std::pair<std::string, std::string>>
                workload{
                    {"events", std::to_string(trace.size())},
                    {"epochs",
                     std::to_string(deg.epochs.size())},
                    {"types", std::to_string(catalog.size())},
                    {"arrivals", std::to_string(deg.totalArrivals)},
                    {"threads", "1"},
                    {"tiny", tiny ? "true" : "false"},
                };
            const std::vector<std::pair<std::string, std::string>>
                faults{
                    {"injected",
                     std::to_string(deg.totalFaultsInjected)},
                    {"retries", std::to_string(deg.totalRetries)},
                    {"quarantined",
                     std::to_string(deg.totalQuarantined)},
                    {"quarantine_released",
                     std::to_string(deg.totalQuarantineReleased)},
                    {"abandoned", std::to_string(deg.totalAbandoned)},
                    {"crashes", std::to_string(deg.totalCrashes)},
                    {"cf_fallbacks",
                     std::to_string(deg.totalCfFallbacks)},
                    {"checkpoint_failures",
                     std::to_string(deg.totalCheckpointFailures)},
                    {"clean_blocking",
                     std::to_string(clean_blocking)},
                    {"degraded_blocking",
                     std::to_string(degraded_blocking)},
                    {"blocking_ratio", jsonNum(blocking_ratio)},
                    {"throughput_ratio", jsonNum(throughput_ratio)},
                };
            writeJson(flags.get("out"), workload, phases, faults);
            std::cout << "\nwrote " << flags.get("out")
                      << " (schema cooper.bench_faults.v1)\n";
        });
}
