/**
 * @file
 * Appendix A / Figure 14: the Shapley worked example.
 *
 * Users A, B, C contribute interference {1, 2, 3}; coalition penalty
 * is the sum of members' interference (zero for singletons). The
 * appendix enumerates coalition penalties and the marginal
 * contributions under all six arrival orders, concluding that the
 * fair attribution is phi = {1.5, 2.0, 2.5} — proportional to each
 * user's contribution to interference.
 */

#include <iostream>

#include "bench_common.hh"
#include "game/shapley.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("samples", "10000",
                  "permutations for the sampled estimator");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness("Appendix A: Shapley example", [&] {
        const std::vector<double> interference{1.0, 2.0, 3.0};
        const auto v = interferenceGame(interference);
        const char *names[3] = {"A", "B", "C"};

        // Figure 14, left: coalition penalties.
        Table coalitions({"coalition", "penalty"});
        const char *labels[] = {"{A}",    "{B}",    "{A,B}", "{C}",
                                "{A,C}",  "{B,C}",  "{A,B,C}"};
        const CoalitionMask masks[] = {0b001, 0b010, 0b011, 0b100,
                                       0b101, 0b110, 0b111};
        for (std::size_t i = 0; i < 7; ++i)
            coalitions.addRow({labels[i], Table::num(v(masks[i]), 0)});
        coalitions.print(std::cout);

        // Figure 14, right: marginal contributions per permutation.
        std::cout << "\n";
        Table marginals({"permutation", "M_A", "M_B", "M_C"});
        const auto table = shapleyMarginalTable(3, v);
        const char *perms[] = {"{A,B,C}", "{A,C,B}", "{B,A,C}",
                               "{B,C,A}", "{C,A,B}", "{C,B,A}"};
        for (std::size_t p = 0; p < table.size(); ++p)
            marginals.addRow({perms[p], Table::num(table[p][0], 0),
                              Table::num(table[p][1], 0),
                              Table::num(table[p][2], 0)});
        marginals.print(std::cout);

        const auto phi = shapleyExact(3, v);
        std::cout << "\nShapley values (exact):";
        for (std::size_t i = 0; i < 3; ++i)
            std::cout << "  phi_" << names[i] << " = "
                      << Table::num(phi[i], 2);
        std::cout << "\nPaper: phi = {1.5, 2.0, 2.5}, correlated with "
                     "interference {1, 2, 3}.\n";

        Rng rng(7);
        const auto sampled = shapleySampled(
            3, v, static_cast<std::size_t>(flags.getInt("samples")),
            rng);
        std::cout << "Shapley values (sampled, "
                  << flags.getInt("samples") << " permutations):";
        for (std::size_t i = 0; i < 3; ++i)
            std::cout << "  " << Table::num(sampled[i], 3);
        std::cout << "\n";
    });
}
