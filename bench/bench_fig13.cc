/**
 * @file
 * Figure 13: scalability analysis — SMR fairness as the number of
 * agents grows (10, 100, 1000).
 *
 * Small populations lack the diversity to satisfy preferences, so the
 * link between contentiousness and penalty is weak; larger populations
 * strengthen the correlation and shrink its variance. Cooper is more
 * effective for larger systems.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/descriptive.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("trials", "20", "trial populations per size");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 13: SMR fairness vs population size", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const std::vector<std::size_t> sizes{10, 100, 1000};

        StableMarriageRandomPolicy smr;
        Table table({"population", "fairness_corr_mean",
                     "fairness_corr_stddev", "penalty_stddev_mean"});

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        for (std::size_t size : sizes) {
            OnlineStats corr_stats;
            OnlineStats spread_stats;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto instance = sampleInstance(
                    catalog, model, size, MixKind::Uniform, rng);
                Rng policy_rng = rng.split();
                const PolicyRun run =
                    runPolicy(smr, instance, policy_rng);
                const auto rows =
                    aggregateByType(instance, run.matching);
                corr_stats.add(fairness(rows).rankCorrelation);
                // Within-type penalty spread: unfairness risk.
                OnlineStats spread;
                for (const auto &row : rows)
                    spread.add(row.stddev);
                spread_stats.add(spread.mean());
            }
            table.addRow({Table::num(static_cast<long long>(size)),
                          Table::num(corr_stats.mean(), 3),
                          Table::num(corr_stats.stddev(), 3),
                          Table::num(spread_stats.mean(), 4)});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: the penalty-vs-contentiousness "
                     "correlation strengthens\nwith population size and "
                     "its variance shrinks — larger systems are fairer."
                     "\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
