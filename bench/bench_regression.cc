/**
 * @file
 * Kernel regression harness: times the seed ("baseline") hot-path
 * kernels against the packed/memoized rewrites on a Table-I-derived
 * workload, cross-checks exact equality of their outputs, and emits a
 * schema-stable BENCH_kernels.json (schema "cooper.bench_kernels.v1")
 * that tools/bench_json validates.
 *
 * Seven phases are reported:
 *
 *  - similarity:      baselineSimilarityMatrix vs. the packed bitmask
 *                     fill
 *  - simd_similarity: the packed fill pinned to the scalar tier vs.
 *                     the widest SIMD tier this machine offers (equal
 *                     tiers on non-AVX machines: speedup ~1)
 *  - predict:         baselinePredict vs. the neighbor-list predictor
 *  - matching:        believedPreferences + oracle roommates vs. the
 *                     DisutilityTable-backed path (conservative
 *                     baseline: it already shares the rank-key
 *                     preference sort)
 *  - blocking:        the std::function scan vs. the table scan with
 *                     row pruning (count mode, no pair vector)
 *  - blocking_incremental: the full O(n^2) table scan vs. a
 *                     quiet-epoch BlockingBounds::update (nothing
 *                     dirty, the online service's steady state)
 *  - shapley:         sampled Shapley, timed for trend tracking only
 *
 * Optimized phases run under an ObsScope, so the JSON also carries the
 * MetricsRegistry histograms behind each phase timer
 * (cf.similarity_seconds, cf.predict_pass_seconds,
 * matching.roommates_seconds, matching.blocking_seconds,
 * matching.blocking_bound_seconds, shapley.sampled_seconds).
 *
 * --tiny shrinks every dimension for the `ctest -L bench-smoke` run;
 * the speedup acceptance numbers (>= 3x similarity, >= 1.5x
 * simd_similarity, >= 2x blocking, >= 3x blocking_incremental) are
 * meant to be checked at the default sizes:
 *
 *   bench_regression && bench_json --file BENCH_kernels.json \
 *       --min-speedup similarity=3,simd_similarity=1.5,blocking=2,blocking_incremental=3
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cf/item_knn.hh"
#include "cf/knn_baseline.hh"
#include "cf/subsample.hh"
#include "core/instance.hh"
#include "game/shapley.hh"
#include "matching/blocking.hh"
#include "matching/blocking_baseline.hh"
#include "matching/blocking_incremental.hh"
#include "matching/stable_roommates.hh"
#include "obs/obs.hh"
#include "sim/interference.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

namespace {

using namespace cooper;

using Clock = std::chrono::steady_clock;

/** Wall-clock seconds of the best of `reps` runs. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            Clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

bool
sameDense(const std::vector<std::vector<double>> &a,
          const std::vector<std::vector<double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t r = 0; r < a.size(); ++r)
        if (!sameBits(a[r], b[r]))
            return false;
    return true;
}

/** One phase row of the JSON document. */
struct PhaseResult
{
    std::string name;
    std::string mode; //!< "baseline_vs_optimized" or "optimized_only"
    double baselineSeconds = 0.0;
    double optimizedSeconds = 0.0;
    double speedup = 0.0; //!< 0 in optimized_only mode
    bool identical = true;
    std::string metric; //!< backing MetricsRegistry histogram
    std::uint64_t metricCount = 0;
    double metricSum = 0.0;
};

/** Full-precision JSON number. */
std::string
jsonNum(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

void
writeJson(const std::string &path,
          const std::vector<std::pair<std::string, std::string>> &workload,
          const std::vector<PhaseResult> &phases)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << "{\n  \"schema\": \"cooper.bench_kernels.v1\",\n";
    out << "  \"workload\": {";
    for (std::size_t i = 0; i < workload.size(); ++i) {
        out << (i ? ", " : "") << "\"" << workload[i].first
            << "\": " << workload[i].second;
    }
    out << "},\n  \"phases\": {\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const PhaseResult &p = phases[i];
        out << "    \"" << p.name << "\": {"
            << "\"mode\": \"" << p.mode << "\", "
            << "\"baseline_seconds\": " << jsonNum(p.baselineSeconds)
            << ", \"optimized_seconds\": " << jsonNum(p.optimizedSeconds)
            << ", \"speedup\": " << jsonNum(p.speedup)
            << ", \"identical\": " << (p.identical ? "true" : "false")
            << ", \"metric\": \"" << p.metric << "\""
            << ", \"metric_count\": " << p.metricCount
            << ", \"metric_sum\": " << jsonNum(p.metricSum) << "}"
            << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

/** Fill metric/metricCount/metricSum from the registry snapshot. */
void
attachMetric(PhaseResult &phase, const MetricsSnapshot &snapshot,
             const std::string &metric)
{
    phase.metric = metric;
    for (const auto &[name, histogram] : snapshot.histograms) {
        if (name == metric) {
            phase.metricCount = histogram.count;
            phase.metricSum = histogram.sum;
            return;
        }
    }
}

void
printPhases(const std::vector<PhaseResult> &phases)
{
    Table table({"phase", "baseline", "optimized", "speedup",
                 "identical"});
    for (const PhaseResult &p : phases) {
        const bool compared = p.mode == "baseline_vs_optimized";
        table.addRow(
            {p.name,
             compared ? Table::num(p.baselineSeconds * 1e3, 2) + " ms"
                      : std::string("-"),
             Table::num(p.optimizedSeconds * 1e3, 2) + " ms",
             compared ? Table::num(p.speedup, 2) : std::string("-"),
             p.identical ? "yes" : "NO"});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("matrix", "192", "CF ratings-matrix dimension");
    flags.declare("population", "640", "matching/blocking population");
    flags.declare("samples", "20000", "Shapley permutation samples");
    flags.declare("shapley-agents", "24", "Shapley game size (<= 32)");
    flags.declare("alpha", "0.0", "blocking-scan break-away threshold");
    flags.declare("density", "0.25", "observed fraction of the matrix");
    flags.declare("reps", "3", "timing repetitions (best-of)");
    flags.declare("tiny", "false",
                  "smoke-test sizes (matrix 24, population 48, ...)");
    flags.declare("out", "BENCH_kernels.json", "JSON output path");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Kernel regression: seed baselines vs. packed/memoized rewrites",
        [&] {
            const bool tiny = flags.getBool("tiny");
            const auto matrix_n = static_cast<std::size_t>(
                tiny ? 24 : flags.getInt("matrix"));
            const auto population = static_cast<std::size_t>(
                tiny ? 48 : flags.getInt("population"));
            const auto samples = static_cast<std::size_t>(
                tiny ? 500 : flags.getInt("samples"));
            const auto shapley_n = static_cast<std::size_t>(
                flags.getInt("shapley-agents"));
            const double alpha = flags.getDouble("alpha");
            const double density = flags.getDouble("density");
            const int reps =
                tiny ? 1 : static_cast<int>(flags.getInt("reps"));

            // Everything below runs serially: the wins being measured
            // are algorithmic (packed layouts, memo tables, pruning),
            // not parallel scaling — bench_parallel covers that.
            constexpr std::size_t kThreads = 1;

            // Table-I-derived workload: type-level penalties from the
            // paper's catalog, tiled to the requested sizes with a
            // small continuous perturbation so similarities have no
            // ties (the capped-neighbor gather order is only specified
            // for distinct similarities).
            const Catalog catalog = Catalog::paperTableI();
            const InterferenceModel model(catalog);
            const PenaltyMatrix penalties = model.penaltyMatrix();
            const std::size_t types = catalog.size();

            Rng rng(2017);
            SparseMatrix full(matrix_n, matrix_n);
            for (std::size_t i = 0; i < matrix_n; ++i)
                for (std::size_t j = 0; j < matrix_n; ++j)
                    full.set(i, j,
                             penalties(i % types, j % types) +
                                 rng.uniform() * 0.05);
            const SparseMatrix sparse =
                subsampleSymmetric(full, density, 2, rng);

            std::vector<JobTypeId> pop_types(population);
            for (std::size_t i = 0; i < population; ++i)
                pop_types[i] = i % types;
            const ColocationInstance instance =
                ColocationInstance::oracular(catalog, pop_types, model);

            ItemKnnConfig knn;
            knn.threads = kThreads;

            std::vector<PhaseResult> phases;

            ObsConfig obs_config;
            obs_config.metrics = true;
            const ObsScope obs(obs_config);

            // --- similarity fill --------------------------------------
            {
                PhaseResult p;
                p.name = "similarity";
                p.mode = "baseline_vs_optimized";
                std::vector<std::vector<double>> base;
                p.baselineSeconds = bestSeconds(reps, [&] {
                    base = baselineSimilarityMatrix(sparse, knn);
                });
                SimilarityTriangle tri(0);
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    tri = ItemKnnPredictor(knn).similarityTriangle(
                        sparse);
                });
                p.identical = sameDense(base, tri.toNested());
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                phases.push_back(std::move(p));
            }

            // --- simd similarity fill --------------------------------
            // Same packed fill both sides; only the dispatched tier
            // differs, so this isolates the vector win from the
            // packed-layout win the phase above measures. The predictor
            // fills similarities twice per predict (iterations = 2):
            // pass 1 over the sparse observations, pass 2 over the
            // filled dense matrix, where every lane runs full — the
            // phase times both, exactly the per-predict similarity
            // work.
            {
                PhaseResult p;
                p.name = "simd_similarity";
                p.mode = "baseline_vs_optimized";
                const Prediction filled =
                    ItemKnnPredictor(knn).predict(sparse);
                SparseMatrix dense_m(matrix_n, matrix_n);
                for (std::size_t i = 0; i < matrix_n; ++i)
                    for (std::size_t j = 0; j < matrix_n; ++j)
                        dense_m.set(i, j, filled.dense[i][j]);
                SimilarityTriangle s1(0), s2(0), v1(0), v2(0);
                setSimdOverrideForTesting(SimdLevel::Scalar);
                p.baselineSeconds = bestSeconds(reps, [&] {
                    s1 = ItemKnnPredictor(knn).similarityTriangle(
                        sparse);
                    s2 = ItemKnnPredictor(knn).similarityTriangle(
                        dense_m);
                });
                setSimdOverrideForTesting(detectedSimdLevel());
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    v1 = ItemKnnPredictor(knn).similarityTriangle(
                        sparse);
                    v2 = ItemKnnPredictor(knn).similarityTriangle(
                        dense_m);
                });
                setSimdOverrideForTesting(std::nullopt);
                const std::size_t cells =
                    matrix_n > 1 ? matrix_n * (matrix_n - 1) / 2 : 0;
                p.identical =
                    cells == 0 ||
                    (std::memcmp(s1.data(), v1.data(),
                                 cells * sizeof(double)) == 0 &&
                     std::memcmp(s2.data(), v2.data(),
                                 cells * sizeof(double)) == 0);
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                phases.push_back(std::move(p));
            }

            // --- predict ---------------------------------------------
            {
                PhaseResult p;
                p.name = "predict";
                p.mode = "baseline_vs_optimized";
                Prediction base, opt;
                p.baselineSeconds = bestSeconds(reps, [&] {
                    base = baselinePredict(sparse, knn);
                });
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    opt = ItemKnnPredictor(knn).predict(sparse);
                });
                p.identical = sameDense(base.dense, opt.dense) &&
                              base.iterations == opt.iterations &&
                              base.fallbackCells == opt.fallbackCells;
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                phases.push_back(std::move(p));
            }

            // --- matching --------------------------------------------
            // Baseline is the pre-table call path (believedPreferences
            // + oracle-backed roommates). It already benefits from the
            // rank-key preference sort, so the reported speedup is the
            // memo table's marginal win and deliberately conservative.
            Matching matched(population);
            {
                PhaseResult p;
                p.name = "matching";
                p.mode = "baseline_vs_optimized";
                Matching base_m(population);
                p.baselineSeconds = bestSeconds(reps, [&] {
                    const PreferenceProfile prefs =
                        instance.believedPreferences();
                    base_m = adaptedRoommates(
                                 prefs,
                                 [&](AgentId a, AgentId b) {
                                     return instance.believedDisutility(
                                         a, b);
                                 })
                                 .matching;
                });
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    const DisutilityTable table =
                        instance.believedTable(kThreads);
                    const PreferenceProfile prefs =
                        PreferenceProfile::fromTable(
                            table, /*exclude_self=*/true);
                    matched = adaptedRoommates(prefs, table).matching;
                });
                p.identical = true;
                for (AgentId a = 0; a < population; ++a)
                    p.identical &=
                        base_m.partnerOf(a) == matched.partnerOf(a);
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                phases.push_back(std::move(p));
            }

            // --- blocking scan ---------------------------------------
            // The table is built once per epoch for the phases above,
            // so the optimized scan reuses it; the baseline pays the
            // std::function oracle per cell, as the seed did.
            {
                PhaseResult p;
                p.name = "blocking";
                p.mode = "baseline_vs_optimized";
                const DisutilityFn oracle = [&](AgentId a, AgentId b) {
                    return instance.believedDisutility(a, b);
                };
                const DisutilityTable table =
                    instance.believedTable(kThreads);
                std::size_t base_count = 0, opt_count = 0;
                p.baselineSeconds = bestSeconds(reps, [&] {
                    base_count = baselineCountBlockingPairs(
                        matched, oracle, alpha, kThreads);
                });
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    opt_count = countBlockingPairs(matched, table,
                                                   alpha, kThreads);
                });
                const auto base_pairs = baselineFindBlockingPairs(
                    matched, oracle, alpha, kThreads);
                const auto opt_pairs = findBlockingPairs(
                    matched, table, alpha, kThreads);
                p.identical = base_count == opt_count &&
                              base_pairs.size() == opt_pairs.size();
                for (std::size_t i = 0;
                     p.identical && i < base_pairs.size(); ++i) {
                    p.identical =
                        base_pairs[i].a == opt_pairs[i].a &&
                        base_pairs[i].b == opt_pairs[i].b &&
                        base_pairs[i].gainA == opt_pairs[i].gainA &&
                        base_pairs[i].gainB == opt_pairs[i].gainB;
                }
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                phases.push_back(std::move(p));
            }

            // --- incremental blocking bounds -------------------------
            // The online service's steady state: the matching and the
            // table both held, so a maintained BlockingBounds answers
            // the epoch's blocking questions from its bitset while the
            // scan re-derives all O(n^2) pairs.
            {
                PhaseResult p;
                p.name = "blocking_incremental";
                p.mode = "baseline_vs_optimized";
                const DisutilityTable table =
                    instance.believedTable(kThreads);
                BlockingBounds bounds;
                bounds.rebuild(matched, table, alpha, kThreads);
                std::size_t base_count = 0, opt_count = 0;
                p.baselineSeconds = bestSeconds(reps, [&] {
                    base_count = countBlockingPairs(matched, table,
                                                    alpha, kThreads);
                });
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    bounds.update(matched, table, alpha, {}, kThreads);
                    opt_count = bounds.count();
                });
                p.identical = base_count == opt_count;
                const auto scan_pairs = findBlockingPairs(
                    matched, table, alpha, kThreads);
                const auto bound_pairs = bounds.pairs(table);
                p.identical &= scan_pairs.size() == bound_pairs.size();
                for (std::size_t i = 0;
                     p.identical && i < scan_pairs.size(); ++i) {
                    p.identical =
                        scan_pairs[i].a == bound_pairs[i].a &&
                        scan_pairs[i].b == bound_pairs[i].b &&
                        scan_pairs[i].gainA == bound_pairs[i].gainA &&
                        scan_pairs[i].gainB == bound_pairs[i].gainB;
                }
                p.speedup = p.baselineSeconds / p.optimizedSeconds;
                phases.push_back(std::move(p));
            }

            // --- sampled Shapley -------------------------------------
            {
                PhaseResult p;
                p.name = "shapley";
                p.mode = "optimized_only";
                std::vector<double> interference(shapley_n, 1.0);
                for (std::size_t i = 0; i < shapley_n; ++i)
                    interference[i] += 0.1 * static_cast<double>(i);
                const auto v = interferenceGame(interference);
                p.optimizedSeconds = bestSeconds(reps, [&] {
                    Rng shapley_rng(42);
                    shapleySampled(shapley_n, v, samples, shapley_rng,
                                   kThreads);
                });
                phases.push_back(std::move(p));
            }

            // Attach the registry histograms behind each phase timer.
            MetricsRegistry *metrics = obsMetrics();
            if (metrics == nullptr)
                throw std::runtime_error("metrics session missing");
            const MetricsSnapshot snapshot = metrics->snapshot();
            const char *backing[] = {
                "cf.similarity_seconds", "cf.similarity_seconds",
                "cf.predict_pass_seconds",
                "matching.roommates_seconds",
                "matching.blocking_seconds",
                "matching.blocking_bound_seconds",
                "shapley.sampled_seconds"};
            for (std::size_t i = 0; i < phases.size(); ++i)
                attachMetric(phases[i], snapshot, backing[i]);

            printPhases(phases);

            for (const PhaseResult &p : phases)
                if (!p.identical)
                    throw std::runtime_error(
                        "equivalence violation in phase " + p.name);

            const std::vector<std::pair<std::string, std::string>>
                workload{
                    {"matrix", std::to_string(matrix_n)},
                    {"population", std::to_string(population)},
                    {"samples", std::to_string(samples)},
                    {"shapley_agents", std::to_string(shapley_n)},
                    {"alpha", jsonNum(alpha)},
                    {"density", jsonNum(density)},
                    {"reps", std::to_string(reps)},
                    {"threads", std::to_string(kThreads)},
                    {"tiny", tiny ? "true" : "false"},
                };
            writeJson(flags.get("out"), workload, phases);
            std::cout << "\nwrote " << flags.get("out")
                      << " (schema cooper.bench_kernels.v1)\n";
        });
}
