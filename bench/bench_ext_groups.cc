/**
 * @file
 * Extension (Section VIII): colocation with more than two co-runners
 * via hierarchical stable matching.
 *
 * Compares hierarchical (match applications, then match pairs),
 * greedy, and random groupings at group sizes 2 and 4 on performance
 * (mean penalty) and fairness (penalty-vs-demand rank correlation).
 * Expected shape: the hierarchical heuristic retains the fairness of
 * pairwise stable matching while greedy/random groupings do not;
 * penalties grow with group size for everyone.
 *
 * Multi-co-runner penalties route through the shared coalition value
 * function (coalitionMemberPenalty in src/coalition/value.hh, via
 * trueGroupPenalties), the same math the formation subsystem and
 * bench_coalition score with.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "core/groups.hh"
#include "stats/correlation.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace {

using namespace cooper;

struct GroupScore
{
    double meanPenalty = 0.0;
    double fairness = 0.0;
};

GroupScore
score(const ColocationInstance &instance, const InterferenceModel &model,
      const Grouping &grouping)
{
    const auto penalties = trueGroupPenalties(instance, model, grouping);
    std::vector<double> demand;
    demand.reserve(instance.agents());
    for (AgentId a = 0; a < instance.agents(); ++a)
        demand.push_back(
            instance.catalog().job(instance.typeOf(a)).gbps);
    GroupScore out;
    double acc = 0.0;
    for (double p : penalties)
        acc += p;
    out.meanPenalty = acc / static_cast<double>(penalties.size());
    out.fairness = spearman(demand, penalties);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "400", "population size per trial");
    flags.declare("trials", "5", "trial populations");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Extension: hierarchical matching for group colocation", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));

        Table table({"group_size", "scheme", "mean_penalty",
                     "fairness_corr"});
        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));

        for (std::size_t size : {std::size_t(2), std::size_t(4)}) {
            OnlineStats h_pen, h_fair, g_pen, g_fair, r_pen, r_fair;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto instance = sampleInstance(
                    catalog, model, agents, MixKind::Uniform, rng);
                Rng rng_h = rng.split();
                Rng rng_g = rng.split();
                Rng rng_r = rng.split();

                const GroupScore h = score(
                    instance, model,
                    hierarchicalGroups(instance, size, rng_h));
                const GroupScore g = score(
                    instance, model, greedyGroups(instance, size, rng_g));
                const GroupScore r = score(
                    instance, model, randomGroups(instance, size, rng_r));
                h_pen.add(h.meanPenalty);
                h_fair.add(h.fairness);
                g_pen.add(g.meanPenalty);
                g_fair.add(g.fairness);
                r_pen.add(r.meanPenalty);
                r_fair.add(r.fairness);
            }
            const auto size_txt =
                Table::num(static_cast<long long>(size));
            table.addRow({size_txt, "hierarchical",
                          Table::num(h_pen.mean(), 4),
                          Table::num(h_fair.mean(), 3)});
            table.addRow({size_txt, "greedy",
                          Table::num(g_pen.mean(), 4),
                          Table::num(g_fair.mean(), 3)});
            table.addRow({size_txt, "random",
                          Table::num(r_pen.mean(), 4),
                          Table::num(r_fair.mean(), 3)});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: penalties grow with group size "
                     "for every scheme; the\nhierarchical heuristic "
                     "keeps penalty-vs-demand correlation high while\n"
                     "greedy and random groupings lose it.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
