/**
 * @file
 * Figure 10: stability analysis — agents that recommend breaking away
 * from their assigned colocations, as alpha varies.
 *
 * Alpha is the minimum performance benefit for which an agent breaks
 * away; with alpha = 2%, agents defect only for new colocations
 * improving both agents' penalties by at least two points. An agent
 * recommends breaking away when it belongs to at least one blocking
 * pair. Distributions are over 50 populations of 1000 sampled jobs.
 * Expected shape: counts fall as alpha grows; GR is least stable, CO
 * moderate, SMR most stable, with SMP and SR in between.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/descriptive.hh"
#include "util/chart.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "50", "trial populations");
    flags.declare("seed", "1", "base RNG seed");
    flags.declare("csv", "", "optional path to also write CSV");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Figure 10: break-away agents vs alpha for each policy", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        const std::vector<double> alphas{0.00, 0.01, 0.02,
                                         0.03, 0.04, 0.05};
        const auto policies = figurePolicies();

        // counts[policy][alpha] -> break-away-agent samples; raw
        // blocking-pair counts kept as a diagnostic.
        std::map<std::string, std::vector<std::vector<double>>> counts;
        std::map<std::string, std::vector<double>> raw_pairs;
        for (const auto &policy : policies) {
            counts[policy->name()].resize(alphas.size());
            raw_pairs[policy->name()].resize(alphas.size(), 0.0);
        }

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const auto instance = sampleInstance(
                catalog, model, agents, MixKind::Uniform, rng);
            const DisutilityFn d = [&](AgentId a, AgentId b) {
                return instance.trueDisutility(a, b);
            };
            for (const auto &policy : policies) {
                Rng policy_rng = rng.split();
                const Matching m = policy->assign(instance, policy_rng);
                for (std::size_t k = 0; k < alphas.size(); ++k) {
                    const auto pairs =
                        findBlockingPairs(m, d, alphas[k]);
                    std::vector<std::uint8_t> blocked(m.size(), 0);
                    for (const auto &pair : pairs) {
                        blocked[pair.a] = 1;
                        blocked[pair.b] = 1;
                    }
                    double agents_blocked = 0.0;
                    for (std::uint8_t b : blocked)
                        agents_blocked += b;
                    counts[policy->name()][k].push_back(agents_blocked);
                    raw_pairs[policy->name()][k] +=
                        static_cast<double>(pairs.size()) /
                        static_cast<double>(trials);
                }
            }
        }

        Table table({"policy", "alpha", "median", "q1", "q3", "min",
                     "max", "mean_blocking_pairs"});
        for (const auto &policy : policies) {
            std::vector<std::string> labels;
            std::vector<BoxStats> boxes;
            for (std::size_t k = 0; k < alphas.size(); ++k) {
                const auto &samples = counts[policy->name()][k];
                const BoxStats box = boxStats(samples, 3.0);
                table.addRow(
                    {policy->name(), Table::num(alphas[k], 2),
                     Table::num(median(samples), 1),
                     Table::num(box.q1, 1), Table::num(box.q3, 1),
                     Table::num(minOf(samples), 0),
                     Table::num(maxOf(samples), 0),
                     Table::num(raw_pairs[policy->name()][k], 1)});
                labels.push_back("alpha=" + Table::num(alphas[k], 2));
                boxes.push_back(box);
            }
            std::cout << renderBoxplots(policy->name() +
                                            ": break-away agents vs "
                                            "alpha",
                                        labels, boxes)
                      << "\n";
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: counts fall with alpha; GR "
                     "worst, SMR best (near zero\nfor alpha >= 1%), CO "
                     "moderate, SMP and SR in between.\n";

        if (const std::string path = flags.get("csv"); !path.empty())
            table.writeCsv(path);
    });
}
