/**
 * @file
 * Ablation: threshold colocation vs greedy (Section IV.C).
 *
 * Threshold schemes colocate only when both penalties stay under a
 * tolerance and otherwise add a machine. With no machines held in
 * reserve, GR performs at least as well; this harness sweeps the
 * tolerance and reports machines used, jobs left running alone, and
 * mean penalty.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "1000", "population size per trial");
    flags.declare("trials", "5", "trial populations");
    flags.declare("mix", "Uniform",
                  "workload mix: Uniform|Beta-Low|Gaussian|Beta-High");
    flags.declare("seed", "1", "base RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    return bench::runHarness(
        "Ablation: threshold tolerance vs greedy colocation", [&] {
        const Catalog catalog = Catalog::paperTableI();
        const InterferenceModel model(catalog);
        const auto agents =
            static_cast<std::size_t>(flags.getInt("agents"));
        const auto trials =
            static_cast<std::size_t>(flags.getInt("trials"));
        MixKind mix = MixKind::Uniform;
        for (MixKind candidate : allMixes())
            if (mixName(candidate) == flags.get("mix"))
                mix = candidate;

        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        Table table({"policy", "mean_penalty", "machines_used",
                     "jobs_alone"});

        // Greedy baseline with exactly n/2 machines.
        {
            OnlineStats penalty;
            Rng gr_rng(11);
            GreedyPolicy gr;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto instance =
                    sampleInstance(catalog, model, agents, mix, rng);
                const PolicyRun run = runPolicy(gr, instance, gr_rng);
                penalty.add(run.meanPenalty);
            }
            table.addRow({"GR", Table::num(penalty.mean(), 4),
                          Table::num(static_cast<long long>(agents / 2)),
                          "0"});
        }

        for (double tolerance : {0.02, 0.05, 0.10, 0.20}) {
            OnlineStats penalty, machines, alone;
            Rng th_rng(13);
            ThresholdPolicy th(tolerance);
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto instance =
                    sampleInstance(catalog, model, agents, mix, rng);
                const PolicyRun run = runPolicy(th, instance, th_rng);
                penalty.add(run.meanPenalty);
                const std::size_t pairs = run.matching.pairCount();
                const std::size_t singles = agents - 2 * pairs;
                machines.add(static_cast<double>(pairs + singles));
                alone.add(static_cast<double>(singles));
            }
            table.addRow({"TH(" + Table::num(tolerance, 2) + ")",
                          Table::num(penalty.mean(), 4),
                          Table::num(machines.mean(), 1),
                          Table::num(alone.mean(), 1)});
        }
        table.print(std::cout);
        std::cout << "\nExpected shape: tighter tolerances bound "
                     "penalties only by spending\nextra machines; with "
                     "machines fixed at n/2, GR's mean penalty is\n"
                     "competitive, matching Section IV.C's argument.\n";
    });
}
