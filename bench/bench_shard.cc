/**
 * @file
 * Sharded-fleet scaling harness: replays one churn trace through the
 * ShardedDriver at each shard count in --shard-list, cross-checks
 * that the K = 1 run matches the flat OnlineDriver byte-for-byte
 * (the same differential the test suite holds), and emits a
 * schema-stable BENCH_shard.json (schema "cooper.bench_shard.v1")
 * that tools/bench_json validates.
 *
 * What scales: epoch repair cost is O(population^2) per matching
 * domain, so K shards each holding ~n/K jobs do ~n^2/K work per epoch
 * in total. The speedup column is wall-clock t(K=1) / t(K) — on a
 * single core that ratio is pure work reduction; with threads it
 * compounds with concurrent shard stepping. Efficiency is
 * speedup / K, the per-shard scaling figure the CI floor guards:
 *
 *   bench_shard && bench_json --file BENCH_shard.json \
 *       --min-efficiency k2=0.5
 *
 * Each K > 1 run also reports the egalitarian (worst-off-agent)
 * objective the cross-shard rebalancer optimizes — final and
 * per-epoch mean — so a regression in rebalance quality shows up next
 * to the timing numbers.
 *
 * --tiny shrinks the trace for the `ctest -L bench-smoke` run.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "shard/sharded_driver.hh"
#include "sim/interference.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workload/catalog.hh"

namespace {

using namespace cooper;

using Clock = std::chrono::steady_clock;

/** One shard-count replay of the trace. */
struct ScaleResult
{
    std::size_t requestedShards = 0;
    std::size_t effectiveShards = 0;
    double wallSeconds = 0.0;
    double egalitarianFinal = 0.0;
    double egalitarianMean = 0.0; //!< mean post-rebalance objective
    std::size_t migrations = 0;
    std::size_t epochs = 0;
    std::string summary; //!< writeShardedSummary bytes (determinism)
    std::string flatEquivalent; //!< K = 1 only: shard 0 as a flat summary
};

/** Full-precision JSON number. */
std::string
jsonNum(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

/** Parse "1,2,4" into shard counts. */
std::vector<std::size_t>
parseShardList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            continue;
        out.push_back(static_cast<std::size_t>(std::stoul(item)));
    }
    if (out.empty())
        throw std::runtime_error("empty --shard-list");
    return out;
}

/** Replay `trace` once at shard count `k`; best wall time over reps. */
ScaleResult
replay(const Catalog &catalog, const InterferenceModel &model,
       FrameworkConfig config, std::uint64_t seed,
       const ChurnTrace &trace, std::size_t k, int reps)
{
    config.execution.online.shards = k;

    ScaleResult out;
    out.requestedShards = k;
    for (int r = 0; r < reps; ++r) {
        ShardedDriver driver(catalog, model, config, seed);
        const auto start = Clock::now();
        const ShardedReport report = driver.run(trace);
        const std::chrono::duration<double> elapsed =
            Clock::now() - start;

        std::ostringstream summary;
        writeShardedSummary(summary, report);
        if (r == 0) {
            out.summary = summary.str();
            out.effectiveShards = report.shards;
            out.wallSeconds = elapsed.count();
            out.egalitarianFinal = report.finalObjective;
            out.migrations = report.totalCrossMigrations;
            out.epochs = report.epochs.size();
            double sum = 0.0;
            for (const ShardEpochStats &e : report.epochs)
                sum += e.objectiveAfter;
            out.egalitarianMean =
                report.epochs.empty()
                    ? 0.0
                    : sum / static_cast<double>(report.epochs.size());
            if (report.shards == 1) {
                std::ostringstream flat;
                writeOnlineSummary(flat, report.perShard[0]);
                out.flatEquivalent = flat.str();
            }
        } else {
            if (summary.str() != out.summary)
                throw std::runtime_error(
                    "sharded replay diverged across repetitions at K=" +
                    std::to_string(k));
            out.wallSeconds = std::min(out.wallSeconds, elapsed.count());
        }
    }
    return out;
}

void
writeJson(const std::string &path,
          const std::vector<std::pair<std::string, std::string>> &workload,
          const std::vector<ScaleResult> &runs, double baselineSeconds)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << "{\n  \"schema\": \"cooper.bench_shard.v1\",\n";
    out << "  \"workload\": {";
    for (std::size_t i = 0; i < workload.size(); ++i) {
        out << (i ? ", " : "") << "\"" << workload[i].first
            << "\": " << workload[i].second;
    }
    out << "},\n  \"phases\": {\n";
    bool first = true;
    for (const ScaleResult &run : runs) {
        if (run.requestedShards <= 1)
            continue;
        if (!first)
            out << ",\n";
        first = false;
        const double speedup = baselineSeconds / run.wallSeconds;
        out << "    \"scale" << run.requestedShards << "\": {"
            << "\"mode\": \"optimized_only\", "
            << "\"baseline_seconds\": " << jsonNum(baselineSeconds)
            << ", \"optimized_seconds\": " << jsonNum(run.wallSeconds)
            << ", \"speedup\": " << jsonNum(speedup)
            << ", \"identical\": true"
            << ", \"metric\": \"shard.epoch_seconds\""
            << ", \"metric_count\": " << run.epochs
            << ", \"metric_sum\": " << jsonNum(run.wallSeconds) << "}";
    }
    out << "\n  },\n  \"shards\": {\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ScaleResult &run = runs[i];
        const double speedup = baselineSeconds / run.wallSeconds;
        const double efficiency =
            speedup / static_cast<double>(run.requestedShards);
        out << "    \"k" << run.requestedShards << "\": {"
            << "\"shards\": " << run.effectiveShards
            << ", \"wall_seconds\": " << jsonNum(run.wallSeconds)
            << ", \"speedup\": " << jsonNum(speedup)
            << ", \"efficiency\": " << jsonNum(efficiency)
            << ", \"egalitarian_final\": "
            << jsonNum(run.egalitarianFinal)
            << ", \"egalitarian_mean\": " << jsonNum(run.egalitarianMean)
            << ", \"migrations\": " << run.migrations
            << ", \"epochs\": " << run.epochs << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    if (!out.flush())
        throw std::runtime_error("failed writing " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("arrivals", "400", "churn-trace arrivals");
    flags.declare("initial", "32", "jobs present at tick 0");
    flags.declare("mean-gap", "3.0", "mean interarrival gap, ticks");
    flags.declare("mean-life", "1200.0", "mean job lifetime, ticks");
    flags.declare("epoch-ticks", "50", "virtual-clock ticks per epoch");
    flags.declare("admit", "16", "arrivals admitted per epoch");
    flags.declare("shard-list", "1,2,4",
                  "comma-separated shard counts (must include 1)");
    flags.declare("rebalance-budget", "4",
                  "cross-shard migrations per epoch");
    flags.declare("threads", "1",
                  "worker threads (0 = all hardware, 1 = serial)");
    flags.declare("seed", "2017", "trace and service seed");
    flags.declare("reps", "3", "timing repetitions (best-of)");
    flags.declare("tiny", "false",
                  "smoke-test sizes (arrivals 80, shard-list 1,2)");
    flags.declare("out", "BENCH_shard.json", "JSON output path");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Sharded fleet: per-shard scaling of the online service",
        [&] {
            const bool tiny = flags.getBool("tiny");
            const auto seed =
                static_cast<std::uint64_t>(flags.getInt("seed"));
            const int reps =
                tiny ? 1 : static_cast<int>(flags.getInt("reps"));
            const std::vector<std::size_t> shard_list = parseShardList(
                tiny ? "1,2" : flags.get("shard-list"));
            if (shard_list.front() != 1)
                throw std::runtime_error(
                    "--shard-list must start with 1 (the baseline)");

            ChurnConfig churn;
            churn.arrivals = static_cast<std::size_t>(
                tiny ? 80 : flags.getInt("arrivals"));
            churn.initialJobs = static_cast<std::size_t>(
                tiny ? 12 : flags.getInt("initial"));
            churn.meanInterarrivalTicks = flags.getDouble("mean-gap");
            churn.meanLifetimeTicks = flags.getDouble("mean-life");

            FrameworkConfig config;
            config.execution.threads = static_cast<std::size_t>(
                flags.getInt("threads"));
            config.execution.online.epochTicks =
                static_cast<std::uint64_t>(flags.getInt("epoch-ticks"));
            config.execution.online.admitPerEpoch =
                static_cast<std::size_t>(flags.getInt("admit"));
            config.execution.online.rebalanceBudgetPerEpoch =
                static_cast<std::size_t>(
                    flags.getInt("rebalance-budget"));

            const Catalog catalog = Catalog::paperTableI();
            const InterferenceModel model(catalog);
            Rng trace_rng(seed);
            const ChurnTrace trace =
                generateChurnTrace(catalog, churn, trace_rng);

            std::vector<ScaleResult> runs;
            for (const std::size_t k : shard_list)
                runs.push_back(replay(catalog, model, config, seed,
                                      trace, k, reps));

            // Differential guard: the K = 1 sharded run must match the
            // flat driver byte-for-byte, or every speedup below is
            // measured against the wrong baseline.
            {
                FrameworkConfig flat_config = config;
                flat_config.execution.online.shards = 1;
                OnlineDriver flat(catalog, model, flat_config, seed);
                const OnlineReport report = flat.run(trace);
                std::ostringstream summary;
                writeOnlineSummary(summary, report);
                if (summary.str() != runs.front().flatEquivalent)
                    throw std::runtime_error(
                        "K=1 sharded summary differs from the flat "
                        "OnlineDriver");
            }

            const double baseline = runs.front().wallSeconds;
            Table table({"shards", "wall", "speedup", "efficiency",
                         "egal(final)", "migrations"});
            for (const ScaleResult &run : runs) {
                const double speedup = baseline / run.wallSeconds;
                table.addRow(
                    {std::to_string(run.requestedShards),
                     Table::num(run.wallSeconds * 1e3, 2) + " ms",
                     Table::num(speedup, 2),
                     Table::num(speedup / static_cast<double>(
                                              run.requestedShards),
                                2),
                     Table::num(run.egalitarianFinal, 4),
                     std::to_string(run.migrations)});
            }
            table.print(std::cout);

            const std::vector<std::pair<std::string, std::string>>
                workload{
                    {"events", std::to_string(trace.size())},
                    {"arrivals", std::to_string(churn.arrivals)},
                    {"types", std::to_string(catalog.size())},
                    {"threads",
                     std::to_string(config.execution.threads)},
                    {"rebalance_budget",
                     std::to_string(config.execution.online
                                        .rebalanceBudgetPerEpoch)},
                    {"tiny", tiny ? "true" : "false"},
                };
            writeJson(flags.get("out"), workload, runs, baseline);
            std::cout << "\nwrote " << flags.get("out")
                      << " (schema cooper.bench_shard.v1)\n";
        });
}
