/**
 * @file
 * Scaling harness for the parallel kernels: times sampled Shapley,
 * item-kNN fill, blocking-pair scans, and experiment replications at
 * 1/2/4/8 threads, prints the speedups, and cross-checks that every
 * thread count produced bit-identical results (the determinism
 * contract from DESIGN.md, "Parallelism & determinism").
 *
 * On a machine with >= 8 hardware threads the Shapley and item-kNN
 * kernels should clear 3x at 8 threads; on smaller machines the
 * speedup degrades gracefully toward 1x while the identity checks
 * still hold.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "cf/item_knn.hh"
#include "cf/subsample.hh"
#include "core/experiment.hh"
#include "core/policies.hh"
#include "game/shapley.hh"
#include "matching/blocking.hh"
#include "sim/interference.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workload/catalog.hh"

namespace {

using namespace cooper;

using Clock = std::chrono::steady_clock;

/** Wall-clock seconds of the best of `reps` runs. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            Clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

struct KernelResult
{
    std::string name;
    std::vector<double> seconds;  //!< per thread count
    bool identical = true;        //!< outputs bit-identical to serial
};

void
printResults(const std::vector<std::size_t> &thread_counts,
             const std::vector<KernelResult> &kernels)
{
    std::vector<std::string> header{"kernel"};
    for (std::size_t t : thread_counts)
        header.push_back("t=" + std::to_string(t));
    for (std::size_t t : thread_counts)
        header.push_back("x" + std::to_string(t));
    header.push_back("identical");
    Table table(std::move(header));
    for (const KernelResult &k : kernels) {
        std::vector<std::string> row{k.name};
        for (double s : k.seconds)
            row.push_back(Table::num(s * 1e3, 2) + " ms");
        for (double s : k.seconds)
            row.push_back(Table::num(k.seconds.front() / s, 2));
        row.push_back(k.identical ? "yes" : "NO");
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("samples", "20000", "Shapley permutation samples");
    flags.declare("agents", "32", "Shapley game size (<= 32)");
    flags.declare("matrix", "64", "item-kNN matrix dimension");
    flags.declare("population", "768", "blocking-scan population");
    flags.declare("replications", "16", "experiment replications");
    flags.declare("reps", "3", "timing repetitions (best-of)");
    if (!flags.parse(argc, argv))
        return 0;

    return cooper::bench::runHarness(
        "Parallel kernel scaling (deterministic across thread counts)",
        [&] {
            const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
            const int reps = static_cast<int>(flags.getInt("reps"));
            std::vector<KernelResult> kernels;

            std::cout << "hardware threads: "
                      << ThreadPool::global().threadCount() << "\n\n";

            // --- Shapley Monte-Carlo sampling -----------------------
            {
                const auto n = static_cast<std::size_t>(
                    flags.getInt("agents"));
                const auto samples = static_cast<std::size_t>(
                    flags.getInt("samples"));
                std::vector<double> interference(n, 1.0);
                for (std::size_t i = 0; i < n; ++i)
                    interference[i] += 0.1 * static_cast<double>(i);
                const auto v = interferenceGame(interference);

                KernelResult k;
                k.name = "shapley " + std::to_string(n) + "x" +
                         std::to_string(samples);
                std::vector<double> baseline;
                for (std::size_t threads : thread_counts) {
                    std::vector<double> phi;
                    k.seconds.push_back(bestSeconds(reps, [&] {
                        Rng rng(42);
                        phi = shapleySampled(n, v, samples, rng,
                                             threads);
                    }));
                    if (baseline.empty())
                        baseline = phi;
                    else
                        k.identical &= sameBits(baseline, phi);
                }
                kernels.push_back(std::move(k));
            }

            // --- Item-kNN fill --------------------------------------
            {
                const auto n = static_cast<std::size_t>(
                    flags.getInt("matrix"));
                Rng rng(5);
                SparseMatrix full(n, n);
                for (std::size_t i = 0; i < n; ++i)
                    for (std::size_t j = 0; j < n; ++j)
                        full.set(i, j, rng.uniform() * 0.3);
                const SparseMatrix sparse =
                    subsampleSymmetric(full, 0.25, 2, rng);

                KernelResult k;
                k.name = "item-knn " + std::to_string(n) + "x" +
                         std::to_string(n);
                std::vector<std::vector<double>> baseline;
                for (std::size_t threads : thread_counts) {
                    ItemKnnConfig config;
                    config.threads = threads;
                    Prediction prediction;
                    k.seconds.push_back(bestSeconds(reps, [&] {
                        prediction =
                            ItemKnnPredictor(config).predict(sparse);
                    }));
                    if (baseline.empty()) {
                        baseline = prediction.dense;
                    } else {
                        for (std::size_t r = 0; r < n; ++r)
                            k.identical &= sameBits(
                                baseline[r], prediction.dense[r]);
                    }
                }
                kernels.push_back(std::move(k));
            }

            // --- Blocking-pair scan ---------------------------------
            {
                const auto n = static_cast<std::size_t>(
                    flags.getInt("population"));
                Rng rng(11);
                std::vector<std::vector<double>> penalty(
                    n, std::vector<double>(n, 0.0));
                for (std::size_t i = 0; i < n; ++i)
                    for (std::size_t j = 0; j < n; ++j)
                        penalty[i][j] = rng.uniform() * 0.3;
                const DisutilityFn d = [&](AgentId a, AgentId b) {
                    return penalty[a][b];
                };
                Matching m(n);
                const auto order = rng.permutation(n);
                for (std::size_t i = 0; i + 1 < n; i += 2)
                    m.pair(order[i], order[i + 1]);

                KernelResult k;
                k.name = "blocking " + std::to_string(n) + " agents";
                std::size_t baseline = 0;
                bool first = true;
                for (std::size_t threads : thread_counts) {
                    std::size_t count = 0;
                    k.seconds.push_back(bestSeconds(reps, [&] {
                        count = countBlockingPairs(m, d, 0.01,
                                                   threads);
                    }));
                    if (first) {
                        baseline = count;
                        first = false;
                    } else {
                        k.identical &= count == baseline;
                    }
                }
                kernels.push_back(std::move(k));
            }

            // --- Experiment replications ----------------------------
            {
                const auto replications = static_cast<std::size_t>(
                    flags.getInt("replications"));
                const Catalog catalog = Catalog::paperTableI();
                const InterferenceModel model(catalog);
                const auto policy = makePolicy("SMR");
                const Rng root(17);

                ReplicationPlan plan;
                plan.replications = replications;
                plan.agents = 200;

                KernelResult k;
                k.name = "replications x" +
                         std::to_string(replications);
                std::vector<double> baseline;
                for (std::size_t threads : thread_counts) {
                    plan.threads = threads;
                    std::vector<double> means;
                    k.seconds.push_back(bestSeconds(reps, [&] {
                        const auto runs = runReplications(
                            *policy, catalog, model, plan, root);
                        means.clear();
                        for (const PolicyRun &run : runs)
                            means.push_back(run.meanPenalty);
                    }));
                    if (baseline.empty())
                        baseline = means;
                    else
                        k.identical &= sameBits(baseline, means);
                }
                kernels.push_back(std::move(k));
            }

            printResults(thread_counts, kernels);

            for (const KernelResult &k : kernels)
                if (!k.identical)
                    throw std::runtime_error(
                        "determinism violation in kernel " + k.name);
            std::cout << "\nall kernels bit-identical across thread "
                         "counts\n";
        });
}
