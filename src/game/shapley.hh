/**
 * @file
 * Cooperative-game foundations: characteristic functions over
 * coalitions and the Shapley value (Equation 1 and Appendix A).
 *
 * Shapley assigns each agent its marginal contribution to the
 * coalition's penalty, averaged over every order in which the
 * coalition could have formed. The paper uses it as the theoretical
 * justification for fair attribution: more contentious agents should
 * absorb larger shares of the colocation penalty.
 */

#ifndef COOPER_GAME_SHAPLEY_HH
#define COOPER_GAME_SHAPLEY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hh"

namespace cooper {

/** Coalitions are bitmasks over at most 32 agents. */
using CoalitionMask = std::uint32_t;

/**
 * Characteristic function v(S): the penalty a coalition S generates.
 */
using CharacteristicFn = std::function<double(CoalitionMask)>;

/**
 * Exact Shapley values by subset enumeration, O(2^n * n).
 *
 * @param n Number of agents (n <= 20 keeps this tractable).
 * @param v Characteristic function; v(empty) is assumed 0.
 */
std::vector<double> shapleyExact(std::size_t n, const CharacteristicFn &v);

/**
 * Monte-Carlo Shapley by sampling agent arrival orders.
 *
 * Sample s draws its permutation from an independent sub-stream keyed
 * by s (derived from `rng` without draw-order coupling), and the
 * per-sample marginals are reduced in a fixed chunk order. The
 * estimate is therefore bit-identical for every `threads` value, and
 * no longer depends on what else consumed `rng` between samples. The
 * characteristic function must be safe to call concurrently.
 *
 * @param n Number of agents.
 * @param v Characteristic function.
 * @param samples Number of sampled permutations.
 * @param rng Random stream; advanced once to derive the sample base.
 * @param threads Worker threads; 0 = hardware, 1 = serial.
 */
std::vector<double> shapleySampled(std::size_t n, const CharacteristicFn &v,
                                   std::size_t samples, Rng &rng,
                                   std::size_t threads = 1);

/**
 * The appendix's interference game: each agent contributes a fixed
 * interference amount, coalition penalty is zero for singletons and
 * the sum of members' interference otherwise.
 *
 * For this game the Shapley value of agent i works out to
 * I_i * (n-1)/n + (sum of others' interference) / (n * (n-1)) summed
 * appropriately; the appendix instance {1, 2, 3} yields
 * {1.5, 2.0, 2.5}.
 */
CharacteristicFn interferenceGame(std::vector<double> interference);

/**
 * Per-permutation marginal contributions for a small game, in the
 * appendix's presentation order (all n! permutations, lexicographic).
 *
 * @return marginals[p][i] = agent i's marginal penalty in the p-th
 *         permutation.
 */
std::vector<std::vector<double>>
shapleyMarginalTable(std::size_t n, const CharacteristicFn &v);

} // namespace cooper

#endif // COOPER_GAME_SHAPLEY_HH
