/**
 * @file
 * Fairness metrics for colocation outcomes.
 *
 * Following Section II, a colocation is fair when performance
 * penalties rise with contentiousness (bandwidth demand). These
 * helpers aggregate per-job penalties out of a population matching and
 * score the penalty-vs-demand relationship (Figures 7, 8, and 13).
 */

#ifndef COOPER_GAME_FAIRNESS_HH
#define COOPER_GAME_FAIRNESS_HH

#include <string>
#include <vector>

#include "matching/blocking.hh"
#include "matching/matching.hh"
#include "workload/catalog.hh"

namespace cooper {

/** Per-job-type penalty aggregate over a matched population. */
struct JobPenalty
{
    JobTypeId type = 0;
    double gbps = 0.0;        //!< bandwidth demand (contentiousness)
    double meanPenalty = 0.0; //!< average over the type's colocations
    double stddev = 0.0;
    std::size_t count = 0;    //!< matched agents of this type
};

/**
 * Average each job type's penalty over a matched population.
 *
 * @param catalog Job catalog (for names and bandwidth).
 * @param types Agent -> job type.
 * @param matching Colocations over those agents.
 * @param disutility True disutility oracle over agents.
 * @return One entry per type that appears matched, ordered by
 *         increasing bandwidth demand (the paper's x-axis order).
 */
std::vector<JobPenalty>
penaltiesByType(const Catalog &catalog,
                const std::vector<JobTypeId> &types,
                const Matching &matching, const DisutilityFn &disutility);

/** Fairness summary of one colocation outcome. */
struct FairnessReport
{
    /** Spearman correlation of per-type penalty vs bandwidth. */
    double rankCorrelation = 0.0;

    /** Pearson correlation of the same series. */
    double linearCorrelation = 0.0;

    /** Kendall tau of the same series. */
    double kendall = 0.0;
};

/** Score how well penalties track contentiousness. */
FairnessReport fairness(const std::vector<JobPenalty> &penalties);

} // namespace cooper

#endif // COOPER_GAME_FAIRNESS_HH
