#include "shapley.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

namespace {

/** n! for the small n used in exact computations. */
double
factorial(std::size_t n)
{
    double f = 1.0;
    for (std::size_t i = 2; i <= n; ++i)
        f *= static_cast<double>(i);
    return f;
}

} // namespace

std::vector<double>
shapleyExact(std::size_t n, const CharacteristicFn &v)
{
    fatalIf(n == 0, "shapleyExact: no agents");
    fatalIf(n > 20, "shapleyExact: n=", n,
            " too large for subset enumeration; use shapleySampled");

    // Cache v over all subsets so each is evaluated exactly once.
    const std::size_t subsets = std::size_t(1) << n;
    std::vector<double> value(subsets, 0.0);
    for (CoalitionMask s = 1; s < subsets; ++s)
        value[s] = v(s);

    // Precompute |S|!(n-|S|-1)!/n! by coalition size.
    const double n_fact = factorial(n);
    std::vector<double> weight(n, 0.0);
    for (std::size_t s = 0; s < n; ++s)
        weight[s] = factorial(s) * factorial(n - s - 1) / n_fact;

    std::vector<double> phi(n, 0.0);
    for (CoalitionMask s = 0; s < subsets; ++s) {
        const auto size = static_cast<std::size_t>(
            std::popcount(static_cast<std::uint32_t>(s)));
        for (std::size_t i = 0; i < n; ++i) {
            if (s & (CoalitionMask(1) << i))
                continue;
            const CoalitionMask with_i = s | (CoalitionMask(1) << i);
            phi[i] += weight[size] * (value[with_i] - value[s]);
        }
    }
    return phi;
}

std::vector<double>
shapleySampled(std::size_t n, const CharacteristicFn &v,
               std::size_t samples, Rng &rng, std::size_t threads)
{
    fatalIf(n == 0, "shapleySampled: no agents");
    fatalIf(n > 32, "shapleySampled: CoalitionMask holds at most 32");
    fatalIf(samples == 0, "shapleySampled: need at least one sample");

    const TraceSpan span("shapley.sampled", "game");
    const ScopedTimer timer("shapley.sampled_seconds");
    if (MetricsRegistry *metrics = obsMetrics()) {
        // One permutation per sample, each dispatched on its own
        // substream of the caller's generator.
        metrics->counter("shapley.permutations").add(samples);
        metrics->counter("shapley.substreams").add(samples);
    }

    // One deterministic advance of the caller's stream seeds the
    // per-sample substreams, so repeated calls see fresh samples while
    // each sample's permutation stays independent of thread schedule.
    const Rng base = rng.split();

    // Chunk boundaries are a function of `samples` alone; partials are
    // folded in chunk order, so the floating-point sum is identical
    // for every thread count.
    constexpr std::size_t kGrain = 32;
    std::vector<double> phi = parallelReduce(
        std::size_t(0), samples, threads, kGrain,
        std::vector<double>(n, 0.0),
        [&](std::size_t sample_begin, std::size_t sample_end) {
            std::vector<double> local(n, 0.0);
            for (std::size_t s = sample_begin; s < sample_end; ++s) {
                Rng sub = base.substream(s);
                const auto order = sub.permutation(n);
                CoalitionMask mask = 0;
                double prev = 0.0;
                for (std::size_t k = 0; k < n; ++k) {
                    mask |= CoalitionMask(1) << order[k];
                    const double cur = v(mask);
                    local[order[k]] += cur - prev;
                    prev = cur;
                }
            }
            return local;
        },
        [n](std::vector<double> &acc, std::vector<double> &&part) {
            for (std::size_t i = 0; i < n; ++i)
                acc[i] += part[i];
        });

    for (double &p : phi)
        p /= static_cast<double>(samples);
    return phi;
}

CharacteristicFn
interferenceGame(std::vector<double> interference)
{
    return [interference = std::move(interference)](CoalitionMask s) {
        double total = 0.0;
        std::size_t members = 0;
        for (std::size_t i = 0; i < interference.size(); ++i) {
            if (s & (CoalitionMask(1) << i)) {
                total += interference[i];
                ++members;
            }
        }
        // Agents running alone suffer no contention penalty.
        return members >= 2 ? total : 0.0;
    };
}

std::vector<std::vector<double>>
shapleyMarginalTable(std::size_t n, const CharacteristicFn &v)
{
    fatalIf(n == 0 || n > 8,
            "shapleyMarginalTable: table only sensible for tiny n");
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));

    std::vector<std::vector<double>> rows;
    do {
        std::vector<double> marginals(n, 0.0);
        CoalitionMask mask = 0;
        double prev = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            mask |= CoalitionMask(1) << order[k];
            const double cur = v(mask);
            marginals[order[k]] = cur - prev;
            prev = cur;
        }
        rows.push_back(std::move(marginals));
    } while (std::next_permutation(order.begin(), order.end()));
    return rows;
}

} // namespace cooper
