#include "colocation_game.hh"

#include <bit>

#include "util/error.hh"

namespace cooper {

CharacteristicFn
colocationGame(const InterferenceModel &model, std::vector<JobTypeId> jobs)
{
    fatalIf(jobs.empty(), "colocationGame: no jobs");
    fatalIf(jobs.size() > 20, "colocationGame: at most 20 jobs");
    for (JobTypeId t : jobs)
        fatalIf(t >= model.catalog().size(),
                "colocationGame: unknown job type ", t);

    return [&model, jobs = std::move(jobs)](CoalitionMask s) {
        const auto members =
            std::popcount(static_cast<std::uint32_t>(s));
        if (members < 2)
            return 0.0;
        double total = 0.0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (!(s & (CoalitionMask(1) << i)))
                continue;
            std::vector<JobTypeId> others;
            others.reserve(static_cast<std::size_t>(members) - 1);
            for (std::size_t j = 0; j < jobs.size(); ++j)
                if (j != i && (s & (CoalitionMask(1) << j)))
                    others.push_back(jobs[j]);
            total += model.groupPenalty(jobs[i], others);
        }
        return total;
    };
}

std::vector<double>
shapleyAttribution(const InterferenceModel &model,
                   std::vector<JobTypeId> jobs)
{
    fatalIf(jobs.size() < 2,
            "shapleyAttribution: need at least two jobs");
    fatalIf(jobs.size() > 16,
            "shapleyAttribution: exact Shapley capped at 16 jobs");
    const std::size_t n = jobs.size();
    const auto v = colocationGame(model, std::move(jobs));
    return shapleyExact(n, v);
}

} // namespace cooper
