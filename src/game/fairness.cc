#include "fairness.hh"

#include <algorithm>
#include <cmath>

#include "stats/correlation.hh"
#include "stats/online.hh"
#include "util/error.hh"

namespace cooper {

std::vector<JobPenalty>
penaltiesByType(const Catalog &catalog,
                const std::vector<JobTypeId> &types,
                const Matching &matching, const DisutilityFn &disutility)
{
    fatalIf(types.size() != matching.size(),
            "penaltiesByType: ", types.size(), " types vs matching over ",
            matching.size(), " agents");

    std::vector<OnlineStats> per_type(catalog.size());
    for (AgentId i = 0; i < types.size(); ++i) {
        if (!matching.isMatched(i))
            continue;
        fatalIf(types[i] >= catalog.size(),
                "penaltiesByType: agent ", i, " has unknown type");
        per_type[types[i]].add(disutility(i, matching.partnerOf(i)));
    }

    std::vector<JobPenalty> out;
    for (JobTypeId t = 0; t < catalog.size(); ++t) {
        if (per_type[t].count() == 0)
            continue;
        JobPenalty row;
        row.type = t;
        row.gbps = catalog.job(t).gbps;
        row.meanPenalty = per_type[t].mean();
        row.stddev = per_type[t].stddev();
        row.count = per_type[t].count();
        out.push_back(row);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const JobPenalty &a, const JobPenalty &b) {
                         return a.gbps < b.gbps;
                     });
    return out;
}

FairnessReport
fairness(const std::vector<JobPenalty> &penalties)
{
    std::vector<double> demand, penalty;
    demand.reserve(penalties.size());
    penalty.reserve(penalties.size());
    for (const auto &row : penalties) {
        demand.push_back(row.gbps);
        penalty.push_back(row.meanPenalty);
    }
    FairnessReport report;
    report.rankCorrelation = spearman(demand, penalty);
    report.linearCorrelation = pearson(demand, penalty);
    report.kendall = kendallTau(demand, penalty);
    return report;
}

} // namespace cooper
