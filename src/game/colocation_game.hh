/**
 * @file
 * The colocation game as a cooperative game (Section II).
 *
 * A coalition of jobs sharing one chip multiprocessor generates a
 * total penalty; the Shapley value divides that penalty fairly among
 * the members according to their marginal contributions. The paper
 * uses this construction to justify its fairness goal — larger
 * losses for more contentious jobs — and notes Shapley itself is not
 * directly deployable (penalties are not transferable), so it serves
 * as the benchmark that colocation outcomes are measured against.
 */

#ifndef COOPER_GAME_COLOCATION_GAME_HH
#define COOPER_GAME_COLOCATION_GAME_HH

#include <vector>

#include "game/shapley.hh"
#include "sim/interference.hh"

namespace cooper {

/**
 * Characteristic function of a set of jobs sharing a CMP: v(S) is
 * the sum of coalition members' penalties when all of S colocates
 * (zero for singletons and the empty coalition).
 *
 * @param model Interference model.
 * @param jobs Candidate job types (agent i of the game runs
 *        jobs[i]); at most 20 jobs.
 */
CharacteristicFn colocationGame(const InterferenceModel &model,
                                std::vector<JobTypeId> jobs);

/**
 * Fair (Shapley) division of the grand coalition's penalty among the
 * jobs sharing one CMP.
 *
 * @param model Interference model.
 * @param jobs Job types sharing the processor (2..16 of them).
 * @return One share per job, summing to the coalition penalty.
 */
std::vector<double> shapleyAttribution(const InterferenceModel &model,
                                       std::vector<JobTypeId> jobs);

} // namespace cooper

#endif // COOPER_GAME_COLOCATION_GAME_HH
