#include "agent.hh"

#include <algorithm>

#include "core/coordinator.hh"
#include "util/error.hh"

namespace cooper {

Agent::Agent(AgentId id, JobTypeId type)
    : id_(id), type_(type)
{}

const SparseMatrix &
Agent::queryProfiles(Coordinator &coordinator) const
{
    return coordinator.profiles();
}

std::vector<double>
Agent::predictTypeRow(const SparseMatrix &profiles,
                      const ItemKnnConfig &config) const
{
    fatalIf(type_ >= profiles.rows(),
            "Agent ", id_, ": type ", type_,
            " outside the profile matrix");
    const ItemKnnPredictor predictor(config);
    const Prediction prediction = predictor.predict(profiles);
    return prediction.dense[type_];
}

std::vector<std::size_t>
Agent::predictTypePreferences(const SparseMatrix &profiles,
                              const ItemKnnConfig &config) const
{
    // A job can colocate with another instance of its own type, so
    // no index is excluded (the sentinel is past the end).
    const auto row = predictTypeRow(profiles, config);
    return preferenceOrder(row, row.size());
}

void
Agent::setPreferences(std::vector<AgentId> ordered)
{
    for (AgentId c : ordered)
        fatalIf(c == id_, "Agent ", id_, ": own id on preference list");
    prefs_ = std::move(ordered);
}

std::vector<AgentId>
Agent::messageTargets(const Matching &matching,
                      const DisutilityFn &disutility, double alpha) const
{
    std::vector<AgentId> targets;
    if (!matching.isMatched(id_))
        return targets; // running alone: nothing to improve on

    const double current = disutility(id_, matching.partnerOf(id_));
    for (AgentId candidate : prefs_) {
        if (candidate == matching.partnerOf(id_))
            continue;
        const double gain = current - disutility(id_, candidate);
        const bool worthwhile =
            alpha > 0.0 ? gain >= alpha : gain > 0.0;
        if (worthwhile)
            targets.push_back(candidate);
    }
    return targets;
}

Recommendation
Agent::assess(const Matching &matching,
              const std::vector<AgentId> &received,
              const DisutilityFn &disutility, double alpha) const
{
    Recommendation rec;
    if (!matching.isMatched(id_))
        return rec;

    const auto targets = messageTargets(matching, disutility, alpha);
    const double current = disutility(id_, matching.partnerOf(id_));

    for (AgentId sender : received) {
        // A sender prefers us over its partner; it blocks with us
        // only if we messaged it too.
        if (std::find(targets.begin(), targets.end(), sender) ==
            targets.end()) {
            continue;
        }
        BreakAwayOption option;
        option.partner = sender;
        option.myGain = current - disutility(id_, sender);
        if (matching.isMatched(sender)) {
            option.partnerGain =
                disutility(sender, matching.partnerOf(sender)) -
                disutility(sender, id_);
        }
        rec.options.push_back(option);
    }
    if (!rec.options.empty()) {
        rec.action = ActionKind::BreakAway;
        // Most attractive alternatives first.
        std::stable_sort(rec.options.begin(), rec.options.end(),
                         [](const BreakAwayOption &a,
                            const BreakAwayOption &b) {
                             return a.myGain > b.myGain;
                         });
    }
    return rec;
}

} // namespace cooper
