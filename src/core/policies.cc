#include "policies.hh"

#include <algorithm>
#include <numeric>

#include "matching/stable_marriage.hh"
#include "matching/stable_roommates.hh"
#include "util/error.hh"

namespace cooper {

namespace {

/** Agent ids sorted by their type's bandwidth demand (ascending). */
std::vector<AgentId>
agentsByDemand(const ColocationInstance &instance)
{
    std::vector<AgentId> order(instance.agents());
    std::iota(order.begin(), order.end(), AgentId(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](AgentId a, AgentId b) {
                         const double da =
                             instance.catalog().job(instance.typeOf(a)).gbps;
                         const double db =
                             instance.catalog().job(instance.typeOf(b)).gbps;
                         return da < db;
                     });
    return order;
}

/**
 * Run stable marriage between two agent sets and lift the result to a
 * global matching. `proposers` and `acceptors` hold global agent ids.
 */
Matching
marriageBetween(const ColocationInstance &instance,
                const std::vector<AgentId> &proposers,
                const std::vector<AgentId> &acceptors)
{
    auto side_prefs = [&](const std::vector<AgentId> &side,
                          const std::vector<AgentId> &other) {
        return PreferenceProfile::fromDisutility(
            side.size(), other.size(),
            [&](AgentId local_a, AgentId local_b) {
                return instance.believedDisutility(side[local_a],
                                                   other[local_b]);
            },
            /*exclude_self=*/false);
    };
    const PreferenceProfile prop_prefs = side_prefs(proposers, acceptors);
    const PreferenceProfile acc_prefs = side_prefs(acceptors, proposers);

    const MarriageResult result = stableMarriage(prop_prefs, acc_prefs);

    Matching matching(instance.agents());
    for (AgentId m = 0; m < proposers.size(); ++m)
        if (result.proposerPartner[m] != kUnmatched)
            matching.pair(proposers[m],
                          acceptors[result.proposerPartner[m]]);
    return matching;
}

} // namespace

Matching
GreedyPolicy::assign(const ColocationInstance &instance, Rng &rng) const
{
    const std::size_t n = instance.agents();
    const std::size_t machines = n / 2 + (n % 2);
    const auto arrival = rng.permutation(n);

    Matching matching(n);
    std::vector<AgentId> solo; // agents alone on a machine so far
    std::size_t open_machines = machines;

    for (std::size_t k = 0; k < n; ++k) {
        const AgentId task = arrival[k];
        // GR minimizes *contention* — demand for shared memory — not
        // penalty (Section II defines contentiousness as bandwidth
        // demand). An empty processor carries no contention, so it
        // wins while one remains; afterwards the task joins the
        // least-demanding solo occupant. This is precisely what makes
        // GR unfair: low-demand but cache-sensitive jobs like dedup
        // look like ideal targets and absorb contentious co-runners.
        if (open_machines > 0) {
            --open_machines;
            solo.push_back(task);
            continue;
        }
        double best = 0.0;
        std::size_t best_idx = solo.size();
        for (std::size_t s = 0; s < solo.size(); ++s) {
            const AgentId occ = solo[s];
            const double demand =
                instance.catalog().job(instance.typeOf(occ)).gbps;
            if (best_idx == solo.size() || demand < best) {
                best = demand;
                best_idx = s;
            }
        }
        panicIf(best_idx == solo.size(),
                "GreedyPolicy: no machine available for task");
        matching.pair(task, solo[best_idx]);
        solo.erase(solo.begin() +
                   static_cast<std::ptrdiff_t>(best_idx));
    }
    return matching;
}

Matching
ComplementaryPolicy::assign(const ColocationInstance &instance,
                            Rng &rng) const
{
    (void)rng; // deterministic given the population
    const auto order = agentsByDemand(instance);
    const std::size_t n = order.size();

    Matching matching(instance.agents());
    // Most demanding with least demanding, second-most with
    // second-least, and so on; the median agent of an odd population
    // runs alone.
    for (std::size_t k = 0; k < n / 2; ++k)
        matching.pair(order[k], order[n - 1 - k]);
    return matching;
}

Matching
StableMarriagePartitionPolicy::assign(const ColocationInstance &instance,
                                      Rng &rng) const
{
    (void)rng;
    const auto order = agentsByDemand(instance);
    const std::size_t half = order.size() / 2;

    // Lower half: compute-intensive acceptors. Upper half:
    // memory-intensive proposers (the resource-intensive set
    // proposes). The median of an odd population is left out.
    std::vector<AgentId> acceptors(order.begin(),
                                   order.begin() +
                                       static_cast<std::ptrdiff_t>(half));
    std::vector<AgentId> proposers(
        order.end() - static_cast<std::ptrdiff_t>(half), order.end());
    return marriageBetween(instance, proposers, acceptors);
}

Matching
StableMarriageRandomPolicy::assign(const ColocationInstance &instance,
                                   Rng &rng) const
{
    std::vector<AgentId> order(instance.agents());
    std::iota(order.begin(), order.end(), AgentId(0));
    rng.shuffle(order);
    const std::size_t half = order.size() / 2;

    std::vector<AgentId> proposers(order.begin(),
                                   order.begin() +
                                       static_cast<std::ptrdiff_t>(half));
    std::vector<AgentId> acceptors(
        order.begin() + static_cast<std::ptrdiff_t>(half),
        order.begin() + static_cast<std::ptrdiff_t>(2 * half));
    return marriageBetween(instance, proposers, acceptors);
}

Matching
StableRoommatePolicy::assign(const ColocationInstance &instance,
                             Rng &rng) const
{
    (void)rng;
    // One table serves both preference construction and the greedy
    // fallback pairing; each believed disutility (penalty lookup +
    // jitter hash) is evaluated exactly once.
    const DisutilityTable believed = instance.believedTable();
    const PreferenceProfile prefs =
        PreferenceProfile::fromTable(believed, /*exclude_self=*/true);
    const RoommatesResult result = adaptedRoommates(prefs, believed);
    return result.matching;
}

ThresholdPolicy::ThresholdPolicy(double tolerance)
    : tolerance_(tolerance)
{
    fatalIf(tolerance <= 0.0, "ThresholdPolicy: tolerance must be > 0");
}

Matching
ThresholdPolicy::assign(const ColocationInstance &instance, Rng &rng) const
{
    const std::size_t n = instance.agents();
    const auto arrival = rng.permutation(n);

    Matching matching(n);
    std::vector<AgentId> solo;
    for (std::size_t k = 0; k < n; ++k) {
        const AgentId task = arrival[k];
        double best = 0.0;
        std::size_t best_idx = solo.size();
        for (std::size_t s = 0; s < solo.size(); ++s) {
            const AgentId occ = solo[s];
            const double d_task = instance.believedDisutility(task, occ);
            const double d_occ = instance.believedDisutility(occ, task);
            if (d_task >= tolerance_ || d_occ >= tolerance_)
                continue;
            const double cost = d_task + d_occ;
            if (best_idx == solo.size() || cost < best) {
                best = cost;
                best_idx = s;
            }
        }
        if (best_idx == solo.size()) {
            solo.push_back(task); // add a machine
        } else {
            matching.pair(task, solo[best_idx]);
            solo.erase(solo.begin() +
                       static_cast<std::ptrdiff_t>(best_idx));
        }
    }
    return matching;
}

std::vector<std::unique_ptr<ColocationPolicy>>
figurePolicies()
{
    std::vector<std::unique_ptr<ColocationPolicy>> out;
    out.push_back(std::make_unique<GreedyPolicy>());
    out.push_back(std::make_unique<ComplementaryPolicy>());
    out.push_back(std::make_unique<StableMarriagePartitionPolicy>());
    out.push_back(std::make_unique<StableMarriageRandomPolicy>());
    out.push_back(std::make_unique<StableRoommatePolicy>());
    return out;
}

std::unique_ptr<ColocationPolicy>
makePolicy(const std::string &name)
{
    if (name == "GR")
        return std::make_unique<GreedyPolicy>();
    if (name == "CO")
        return std::make_unique<ComplementaryPolicy>();
    if (name == "SMP")
        return std::make_unique<StableMarriagePartitionPolicy>();
    if (name == "SMR")
        return std::make_unique<StableMarriageRandomPolicy>();
    if (name == "SR")
        return std::make_unique<StableRoommatePolicy>();
    if (name == "TH")
        return std::make_unique<ThresholdPolicy>();
    fatal("makePolicy: unknown policy '", name, "'");
}

} // namespace cooper
