/**
 * @file
 * The system coordinator (Figures 4 and 6).
 *
 * The coordinator is the centralized counterpart to the decentralized
 * agents. It exposes three services: the system profiler (a database
 * of colocation measurements that answers agents' queries), the
 * colocation policy (assigning co-runners from agents' predicted
 * preferences), and the job dispatcher (sending participating pairs
 * to machines). Together with the agents it shields human users from
 * hardware complexity.
 */

#ifndef COOPER_CORE_COORDINATOR_HH
#define COOPER_CORE_COORDINATOR_HH

#include <memory>
#include <optional>
#include <string>

#include "core/instance.hh"
#include "core/policies.hh"
#include "sim/cluster.hh"
#include "sim/profiler.hh"

namespace cooper {

/** Coordinator-side configuration. */
struct CoordinatorConfig
{
    /** Policy short name: GR, CO, SMP, SMR, SR, TH. */
    std::string policy = "SMR";

    /** Fraction of the type matrix the profiler samples. */
    double sampleRatio = 0.25;

    /** Measurements averaged per profiled colocation. */
    std::size_t profileRepeats = 3;

    /** Profiling-noise parameters. */
    NoiseConfig noise;

    /** Machines available to the dispatcher; 0 means one per pair. */
    std::size_t machines = 0;
};

/**
 * Centralized coordinator: profiler + colocation policy + dispatcher.
 */
class Coordinator
{
  public:
    /**
     * @param catalog Job catalog.
     * @param model Ground-truth interference model (the "hardware").
     * @param config Coordinator settings.
     * @param seed Seed for profiling noise and sampling.
     */
    Coordinator(const Catalog &catalog, const InterferenceModel &model,
                CoordinatorConfig config, std::uint64_t seed = 1);

    const CoordinatorConfig &config() const { return config_; }
    const Catalog &catalog() const { return *catalog_; }

    /**
     * Profiler service: the sparse matrix of sampled type-level
     * colocation measurements. Sampled lazily on first query and
     * cached; agents query this to train their predictors.
     */
    const SparseMatrix &profiles();

    /** Re-profile from scratch (e.g., at an epoch boundary). */
    void refreshProfiles();

    /**
     * Measurement database accumulated by the profiler (supports the
     * paper's Google-wide-profiling-style queries).
     */
    const ProfileDatabase &database() const;

    /**
     * Policy service: assign co-runners for an instance built from
     * the agents' predicted preferences.
     */
    Matching colocate(const ColocationInstance &instance, Rng &rng) const;

    /**
     * Dispatcher service: send colocated pairs to machines; pairs
     * queue when machines are scarce.
     */
    DispatchReport dispatch(const std::vector<PairAssignment> &pairs,
                            std::size_t pair_count_hint = 0) const;

  private:
    const Catalog *catalog_;
    const InterferenceModel *model_;
    CoordinatorConfig config_;
    SystemProfiler profiler_;
    std::unique_ptr<ColocationPolicy> policy_;
    std::optional<SparseMatrix> profiles_;
};

} // namespace cooper

#endif // COOPER_CORE_COORDINATOR_HH
