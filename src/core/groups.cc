#include "groups.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "coalition/value.hh"
#include "matching/stable_roommates.hh"
#include "util/error.hh"

namespace cooper {

std::size_t
Grouping::agentCount() const
{
    std::size_t total = 0;
    for (const auto &group : groups)
        total += group.size();
    return total;
}

bool
Grouping::isPartitionOf(std::size_t agents) const
{
    std::vector<std::uint8_t> seen(agents, 0);
    for (const auto &group : groups) {
        for (AgentId a : group) {
            if (a >= agents || seen[a])
                return false;
            seen[a] = 1;
        }
    }
    return agentCount() == agents;
}

double
trueGroupPenalty(const ColocationInstance &instance,
                 const InterferenceModel &model, AgentId self,
                 const std::vector<AgentId> &group)
{
    std::vector<JobTypeId> others;
    others.reserve(group.size());
    bool found = false;
    for (AgentId member : group) {
        if (member == self) {
            found = true;
            continue;
        }
        others.push_back(instance.typeOf(member));
    }
    fatalIf(!found, "trueGroupPenalty: agent ", self,
            " is not in the group");
    // One shared route to multi-co-runner penalties: the coalition
    // subsystem, these evaluation helpers, and the group benchmarks
    // all price colocation through the same value function.
    return coalitionMemberPenalty(model, instance.typeOf(self), others);
}

std::vector<double>
trueGroupPenalties(const ColocationInstance &instance,
                   const InterferenceModel &model,
                   const Grouping &grouping)
{
    std::vector<double> out(instance.agents(), 0.0);
    for (const auto &group : grouping.groups)
        for (AgentId a : group)
            out[a] = trueGroupPenalty(instance, model, a, group);
    return out;
}

namespace {

/**
 * One level of pair-the-pairs: match super-agents (current groups)
 * with adapted stable roommates under additive believed disutility,
 * merging matched groups.
 */
std::vector<std::vector<AgentId>>
mergeLevel(const ColocationInstance &instance,
           std::vector<std::vector<AgentId>> groups)
{
    const std::size_t m = groups.size();
    if (m < 2)
        return groups;

    auto super_disutility = [&](AgentId gi, AgentId gj) {
        double acc = 0.0;
        for (AgentId a : groups[gi])
            for (AgentId b : groups[gj])
                acc += instance.believedDisutility(a, b);
        return acc;
    };
    const auto prefs = PreferenceProfile::fromDisutility(
        m, m, super_disutility, /*exclude_self=*/true);
    const RoommatesResult result =
        adaptedRoommates(prefs, super_disutility);

    std::vector<std::vector<AgentId>> merged;
    std::vector<std::uint8_t> used(m, 0);
    for (AgentId g = 0; g < m; ++g) {
        if (used[g])
            continue;
        used[g] = 1;
        std::vector<AgentId> group = groups[g];
        const AgentId partner = result.matching.partnerOf(g);
        if (partner != kUnmatched && !used[partner]) {
            used[partner] = 1;
            group.insert(group.end(), groups[partner].begin(),
                         groups[partner].end());
        }
        merged.push_back(std::move(group));
    }
    return merged;
}

} // namespace

Grouping
hierarchicalGroups(const ColocationInstance &instance,
                   std::size_t group_size, Rng &rng)
{
    (void)rng; // deterministic given the instance
    fatalIf(group_size < 2 || !std::has_single_bit(group_size),
            "hierarchicalGroups: group size must be a power of two "
            ">= 2, got ",
            group_size);

    // Level 0: every agent is its own group; each merge level doubles
    // the group size via stable matching over super-agents.
    std::vector<std::vector<AgentId>> groups(instance.agents());
    for (AgentId a = 0; a < instance.agents(); ++a)
        groups[a] = {a};
    for (std::size_t size = 1; size < group_size; size *= 2)
        groups = mergeLevel(instance, std::move(groups));

    Grouping out;
    out.groups = std::move(groups);
    return out;
}

Grouping
greedyGroups(const ColocationInstance &instance, std::size_t group_size,
             Rng &rng)
{
    fatalIf(group_size < 2, "greedyGroups: group size must be >= 2");
    const std::size_t n = instance.agents();
    const std::size_t machines = (n + group_size - 1) / group_size;
    const auto arrival = rng.permutation(n);

    std::vector<std::vector<AgentId>> groups;
    groups.reserve(machines);
    std::size_t open_machines = machines;

    for (std::size_t k = 0; k < n; ++k) {
        const AgentId task = arrival[k];
        if (open_machines > 0) {
            --open_machines;
            groups.push_back({task});
            continue;
        }
        // Join the non-full machine with the least combined demand.
        double best = 0.0;
        std::size_t best_idx = groups.size();
        for (std::size_t g = 0; g < groups.size(); ++g) {
            if (groups[g].size() >= group_size)
                continue;
            double demand = 0.0;
            for (AgentId occ : groups[g])
                demand +=
                    instance.catalog().job(instance.typeOf(occ)).gbps;
            if (best_idx == groups.size() || demand < best) {
                best = demand;
                best_idx = g;
            }
        }
        panicIf(best_idx == groups.size(),
                "greedyGroups: no machine has a free slot");
        groups[best_idx].push_back(task);
    }

    Grouping out;
    out.groups = std::move(groups);
    return out;
}

Grouping
randomGroups(const ColocationInstance &instance, std::size_t group_size,
             Rng &rng)
{
    fatalIf(group_size < 2, "randomGroups: group size must be >= 2");
    const auto order = rng.permutation(instance.agents());

    Grouping out;
    for (std::size_t k = 0; k < order.size(); k += group_size) {
        std::vector<AgentId> group;
        for (std::size_t j = k;
             j < std::min(order.size(), k + group_size); ++j)
            group.push_back(order[j]);
        out.groups.push_back(std::move(group));
    }
    return out;
}

} // namespace cooper
