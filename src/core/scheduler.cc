#include "scheduler.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace cooper {

EpochScheduler::EpochScheduler(const Catalog &catalog,
                               const InterferenceModel &model,
                               SchedulerConfig config, std::uint64_t seed)
    : catalog_(&catalog), model_(&model), config_(std::move(config)),
      rng_(seed)
{
    fatalIf(config_.epochSec <= 0.0,
            "EpochScheduler: epochSec must be positive");
    fatalIf(config_.arrivalRatePerSec < 0.0,
            "EpochScheduler: negative arrival rate");
    fatalIf(config_.machines == 0,
            "EpochScheduler: need at least one machine");
}

ScheduleTrace
EpochScheduler::run(double horizon_sec, double drain_sec)
{
    fatalIf(horizon_sec <= 0.0,
            "EpochScheduler: horizon must be positive");
    fatalIf(drain_sec < 0.0, "EpochScheduler: negative drain");

    ScheduleTrace trace;
    const auto weights = mixWeights(*catalog_, config_.mix);
    const auto policy = makePolicy(config_.policy);

    // Pre-generate Poisson arrivals over the horizon.
    if (config_.arrivalRatePerSec > 0.0) {
        double t = 0.0;
        for (;;) {
            double u = rng_.uniform();
            while (u == 0.0)
                u = rng_.uniform();
            t += -std::log(u) / config_.arrivalRatePerSec;
            if (t >= horizon_sec)
                break;
            JobRecord job;
            job.id = trace.jobs.size();
            job.type = static_cast<JobTypeId>(rng_.discrete(weights));
            job.arrivalSec = t;
            trace.jobs.push_back(job);
        }
    }

    std::vector<double> machine_free(config_.machines, 0.0);
    std::vector<std::size_t> queue; // job ids, FIFO by arrival
    std::size_t next_arrival = 0;
    double busy_seconds = 0.0;

    const double end_time = horizon_sec + drain_sec;
    for (double now = config_.epochSec; now <= end_time + 1e-9;
         now += config_.epochSec) {
        EpochSummary epoch;
        epoch.timeSec = now;

        // Admit jobs that arrived during this period.
        while (next_arrival < trace.jobs.size() &&
               trace.jobs[next_arrival].arrivalSec <= now) {
            queue.push_back(next_arrival);
            ++next_arrival;
            ++epoch.arrivals;
        }

        std::vector<std::size_t> free_machines;
        for (std::size_t m = 0; m < config_.machines; ++m)
            if (machine_free[m] <= now)
                free_machines.push_back(m);
        epoch.freeMachines = free_machines.size();

        if (queue.size() >= 2 && !free_machines.empty()) {
            // Match the entire queue, then dispatch pairs in order of
            // the older member's arrival until machines run out.
            std::vector<JobTypeId> types;
            types.reserve(queue.size());
            for (std::size_t id : queue)
                types.push_back(trace.jobs[id].type);
            const auto instance = ColocationInstance::oracular(
                *catalog_, types, *model_);
            const Matching matching = policy->assign(instance, rng_);

            auto pairs = matching.pairs();
            std::stable_sort(
                pairs.begin(), pairs.end(),
                [&](const auto &x, const auto &y) {
                    return std::min(trace.jobs[queue[x.first]].arrivalSec,
                                    trace.jobs[queue[x.second]]
                                        .arrivalSec) <
                           std::min(trace.jobs[queue[y.first]].arrivalSec,
                                    trace.jobs[queue[y.second]]
                                        .arrivalSec);
                });

            std::vector<std::uint8_t> dispatched(queue.size(), 0);
            double penalty_sum = 0.0;
            std::size_t machine_cursor = 0;
            for (const auto &[la, lb] : pairs) {
                if (machine_cursor >= free_machines.size())
                    break;
                const std::size_t machine =
                    free_machines[machine_cursor++];
                JobRecord &a = trace.jobs[queue[la]];
                JobRecord &b = trace.jobs[queue[lb]];
                const double runtime = std::max(
                    model_->colocatedSeconds(a.type, b.type),
                    model_->colocatedSeconds(b.type, a.type));
                a.startSec = now;
                b.startSec = now;
                a.endSec = now + runtime;
                b.endSec = now + runtime;
                a.penalty = model_->penalty(a.type, b.type);
                b.penalty = model_->penalty(b.type, a.type);
                a.machine = machine;
                b.machine = machine;
                machine_free[machine] = now + runtime;
                busy_seconds += runtime;
                penalty_sum += a.penalty + b.penalty;
                dispatched[la] = 1;
                dispatched[lb] = 1;
                epoch.dispatched += 2;
            }
            if (epoch.dispatched > 0) {
                epoch.meanPenalty =
                    penalty_sum / static_cast<double>(epoch.dispatched);
            }
            std::vector<std::size_t> still_waiting;
            for (std::size_t k = 0; k < queue.size(); ++k)
                if (!dispatched[k])
                    still_waiting.push_back(queue[k]);
            queue = std::move(still_waiting);
        }
        epoch.queued = queue.size();
        trace.epochs.push_back(epoch);
    }

    // Aggregate metrics over started jobs.
    double wait = 0.0, slowdown = 0.0;
    std::size_t started = 0;
    for (const JobRecord &job : trace.jobs) {
        if (!job.started()) {
            ++trace.unfinished;
            continue;
        }
        if (job.endSec > end_time) {
            ++trace.unfinished;
        }
        ++started;
        wait += job.startSec - job.arrivalSec;
        slowdown += (job.endSec - job.arrivalSec) /
                    catalog_->job(job.type).standaloneSec;
    }
    if (started) {
        trace.meanWaitSec = wait / static_cast<double>(started);
        trace.meanSlowdown = slowdown / static_cast<double>(started);
    }
    trace.utilization =
        busy_seconds /
        (static_cast<double>(config_.machines) * end_time);
    return trace;
}

} // namespace cooper
