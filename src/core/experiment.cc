#include "experiment.hh"

#include "cf/item_knn.hh"
#include "sim/profiler.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

ColocationInstance
sampleInstance(const Catalog &catalog, const InterferenceModel &model,
               std::size_t agents, MixKind mix, Rng &rng)
{
    auto population = samplePopulation(catalog, agents, mix, rng);
    return ColocationInstance::oracular(catalog, std::move(population),
                                        model);
}

ColocationInstance
sampleInstanceCf(const Catalog &catalog, const InterferenceModel &model,
                 std::size_t agents, MixKind mix, double sample_ratio,
                 Rng &rng)
{
    auto population = samplePopulation(catalog, agents, mix, rng);

    SystemProfiler profiler(model, NoiseConfig{}, rng());
    const SparseMatrix profiles = profiler.sampleProfiles(sample_ratio);
    const Prediction prediction = ItemKnnPredictor().predict(profiles);

    const std::size_t n = catalog.size();
    PenaltyMatrix truth = model.penaltyMatrix();
    PenaltyMatrix believed(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            believed(i, j) = prediction.dense[i][j];
    return ColocationInstance(catalog, std::move(population),
                              std::move(truth), std::move(believed));
}

PolicyRun
runPolicy(const ColocationPolicy &policy,
          const ColocationInstance &instance, Rng &rng)
{
    PolicyRun run;
    run.policy = policy.name();
    run.matching = policy.assign(instance, rng);
    panicIf(!run.matching.consistent(),
            "runPolicy: inconsistent matching from ", policy.name());
    run.penalties = instance.truePenalties(run.matching);
    run.meanPenalty = instance.meanTruePenalty(run.matching);
    return run;
}

std::vector<PolicyRun>
runReplications(const ColocationPolicy &policy, const Catalog &catalog,
                const InterferenceModel &model, const ReplicationPlan &plan,
                const Rng &root)
{
    fatalIf(plan.replications == 0,
            "runReplications: need at least one replication");
    fatalIf(!plan.oracular &&
                (plan.sampleRatio <= 0.0 || plan.sampleRatio > 1.0),
            "runReplications: sampleRatio outside (0, 1]");

    std::vector<PolicyRun> out(plan.replications);
    parallelFor(0, plan.replications, plan.threads, [&](std::size_t r) {
        // All of replication r's randomness flows from substream(r):
        // population sampling, profiling noise, and the policy's own
        // draws. Nothing is shared, so execution order is irrelevant.
        Rng rng = root.substream(r);
        const ColocationInstance instance =
            plan.oracular
                ? sampleInstance(catalog, model, plan.agents, plan.mix,
                                 rng)
                : sampleInstanceCf(catalog, model, plan.agents, plan.mix,
                                   plan.sampleRatio, rng);
        out[r] = runPolicy(policy, instance, rng);
    });
    return out;
}

std::vector<JobPenalty>
aggregateByType(const ColocationInstance &instance,
                const Matching &matching)
{
    return penaltiesByType(
        instance.catalog(), instance.types(), matching,
        [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        });
}

std::vector<JobPenalty>
figureJobRows(const Catalog &catalog,
              const std::vector<JobPenalty> &by_type)
{
    std::vector<JobPenalty> rows;
    for (const std::string &name : Catalog::figureJobNames()) {
        const JobType &job = catalog.jobByName(name);
        for (const auto &entry : by_type) {
            if (entry.type == job.id) {
                rows.push_back(entry);
                break;
            }
        }
    }
    return rows;
}

} // namespace cooper
