/**
 * @file
 * Epoch-based scheduling of an arriving job stream (Section III.A).
 *
 * The colocation game batches arriving jobs and assigns them to
 * available processors periodically; the scheduling period is
 * comparable to job completion times (minutes), and jobs queue when
 * the system is heavily loaded. EpochScheduler simulates that loop on
 * top of the colocation policies: jobs arrive as a Poisson process,
 * each epoch the queued jobs are matched, and as many pairs as there
 * are free machines dispatch; unmatched or undispatched jobs wait for
 * the next epoch.
 */

#ifndef COOPER_CORE_SCHEDULER_HH
#define COOPER_CORE_SCHEDULER_HH

#include <string>
#include <vector>

#include "core/instance.hh"
#include "core/policies.hh"
#include "workload/population.hh"

namespace cooper {

/** Scheduler configuration. */
struct SchedulerConfig
{
    /** Policy short name used to match each epoch's batch. */
    std::string policy = "SMR";

    /** Scheduling period in seconds (minutes, like job runtimes). */
    double epochSec = 300.0;

    /** Mean job arrivals per second (Poisson process). */
    double arrivalRatePerSec = 0.05;

    /** Chip multiprocessors in the cluster. */
    std::size_t machines = 10;

    /** Workload mix of the arrival stream. */
    MixKind mix = MixKind::Uniform;
};

/** Lifecycle record of one job. */
struct JobRecord
{
    std::size_t id = 0;
    JobTypeId type = 0;
    double arrivalSec = 0.0;
    double startSec = -1.0;   //!< -1 while still queued
    double endSec = -1.0;     //!< -1 while queued or running
    double penalty = 0.0;     //!< throughput penalty while colocated
    std::size_t machine = 0;

    bool started() const { return startSec >= 0.0; }
};

/** Per-epoch accounting. */
struct EpochSummary
{
    double timeSec = 0.0;
    std::size_t arrivals = 0;   //!< jobs that arrived this epoch
    std::size_t dispatched = 0; //!< jobs sent to machines
    std::size_t queued = 0;     //!< jobs left waiting afterwards
    std::size_t freeMachines = 0;
    double meanPenalty = 0.0;   //!< over jobs dispatched this epoch
};

/** Full simulation outcome. */
struct ScheduleTrace
{
    std::vector<JobRecord> jobs;
    std::vector<EpochSummary> epochs;

    /** Mean queueing delay of started jobs (start - arrival). */
    double meanWaitSec = 0.0;

    /** Mean of (end - arrival) / standalone runtime. */
    double meanSlowdown = 0.0;

    /** Busy machine-seconds over machines * horizon. */
    double utilization = 0.0;

    /** Jobs still queued or running at the horizon. */
    std::size_t unfinished = 0;
};

/**
 * Periodic batch scheduler over the colocation game.
 */
class EpochScheduler
{
  public:
    /**
     * @param catalog Job catalog.
     * @param model Interference model (runtimes and penalties).
     * @param config Scheduler settings.
     * @param seed Seed for arrivals and policy randomness.
     */
    EpochScheduler(const Catalog &catalog, const InterferenceModel &model,
                   SchedulerConfig config, std::uint64_t seed = 1);

    /**
     * Simulate the arrival stream for `horizon_sec` seconds of
     * simulated time, then let the queue drain (no further arrivals)
     * for up to `drain_sec` more.
     */
    ScheduleTrace run(double horizon_sec, double drain_sec = 0.0);

  private:
    const Catalog *catalog_;
    const InterferenceModel *model_;
    SchedulerConfig config_;
    Rng rng_;
};

} // namespace cooper

#endif // COOPER_CORE_SCHEDULER_HH
