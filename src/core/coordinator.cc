#include "coordinator.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

Coordinator::Coordinator(const Catalog &catalog,
                         const InterferenceModel &model,
                         CoordinatorConfig config, std::uint64_t seed)
    : catalog_(&catalog), model_(&model), config_(std::move(config)),
      profiler_(model, config_.noise, seed),
      policy_(makePolicy(config_.policy))
{
    fatalIf(config_.sampleRatio <= 0.0 || config_.sampleRatio > 1.0,
            "Coordinator: sampleRatio outside (0, 1]");
    fatalIf(config_.profileRepeats == 0,
            "Coordinator: profileRepeats must be >= 1");
}

const SparseMatrix &
Coordinator::profiles()
{
    if (!profiles_) {
        const TraceSpan span("coordinator.profile", "coordinator");
        const ScopedTimer timer("coordinator.profile_seconds");
        profiles_ = profiler_.sampleProfiles(config_.sampleRatio, 2,
                                             config_.profileRepeats);
    }
    return *profiles_;
}

void
Coordinator::refreshProfiles()
{
    profiles_.reset();
}

const ProfileDatabase &
Coordinator::database() const
{
    return profiler_.database();
}

Matching
Coordinator::colocate(const ColocationInstance &instance, Rng &rng) const
{
    const TraceSpan span("coordinator.match", "coordinator");
    const ScopedTimer timer("coordinator.match_seconds");
    Matching matching = policy_->assign(instance, rng);
    panicIf(!matching.consistent(),
            "Coordinator: policy ", policy_->name(),
            " returned an inconsistent matching");
    return matching;
}

DispatchReport
Coordinator::dispatch(const std::vector<PairAssignment> &pairs,
                      std::size_t pair_count_hint) const
{
    const TraceSpan span("coordinator.dispatch", "coordinator");
    const std::size_t hint =
        pair_count_hint ? pair_count_hint : pairs.size();
    const std::size_t machines =
        config_.machines ? config_.machines
                         : std::max<std::size_t>(1, hint);
    Cluster cluster(*model_, machines);
    DispatchReport report = cluster.dispatch(pairs);
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("coordinator.dispatched_pairs")
            .add(pairs.size());
    return report;
}

} // namespace cooper
