#include "coordinator.hh"

#include <algorithm>

#include "util/error.hh"

namespace cooper {

Coordinator::Coordinator(const Catalog &catalog,
                         const InterferenceModel &model,
                         CoordinatorConfig config, std::uint64_t seed)
    : catalog_(&catalog), model_(&model), config_(std::move(config)),
      profiler_(model, config_.noise, seed),
      policy_(makePolicy(config_.policy))
{
    fatalIf(config_.sampleRatio <= 0.0 || config_.sampleRatio > 1.0,
            "Coordinator: sampleRatio outside (0, 1]");
    fatalIf(config_.profileRepeats == 0,
            "Coordinator: profileRepeats must be >= 1");
}

const SparseMatrix &
Coordinator::profiles()
{
    if (!profiles_) {
        profiles_ = profiler_.sampleProfiles(config_.sampleRatio, 2,
                                             config_.profileRepeats);
    }
    return *profiles_;
}

void
Coordinator::refreshProfiles()
{
    profiles_.reset();
}

const ProfileDatabase &
Coordinator::database() const
{
    return profiler_.database();
}

Matching
Coordinator::colocate(const ColocationInstance &instance, Rng &rng) const
{
    Matching matching = policy_->assign(instance, rng);
    panicIf(!matching.consistent(),
            "Coordinator: policy ", policy_->name(),
            " returned an inconsistent matching");
    return matching;
}

DispatchReport
Coordinator::dispatch(const std::vector<PairAssignment> &pairs,
                      std::size_t pair_count_hint) const
{
    const std::size_t hint =
        pair_count_hint ? pair_count_hint : pairs.size();
    const std::size_t machines =
        config_.machines ? config_.machines
                         : std::max<std::size_t>(1, hint);
    Cluster cluster(*model_, machines);
    return cluster.dispatch(pairs);
}

} // namespace cooper
