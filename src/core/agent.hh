/**
 * @file
 * Decentralized agents (Section IV, Figures 4 and 6).
 *
 * An agent represents one user and her job. It queries the
 * coordinator's profiler, predicts preferences for co-runners, and
 * after assignment assesses its colocation and recommends strategic
 * action: participate, or break away with a mutually preferred
 * partner. Break-away opportunities are discovered through message
 * exchange: an agent messages everyone it prefers over its assigned
 * co-runner; a mutual message identifies a blocking pair.
 */

#ifndef COOPER_CORE_AGENT_HH
#define COOPER_CORE_AGENT_HH

#include <vector>

#include "cf/item_knn.hh"
#include "matching/blocking.hh"
#include "matching/matching.hh"
#include "workload/job.hh"

namespace cooper {

class Coordinator;

/** Strategic action an agent recommends to its user. */
enum class ActionKind
{
    Participate,
    BreakAway,
};

/** A mutually beneficial alternative colocation. */
struct BreakAwayOption
{
    AgentId partner = 0;
    double myGain = 0.0;      //!< penalty reduction for this agent
    double partnerGain = 0.0; //!< penalty reduction for the partner
};

/** The action recommender's output for one agent. */
struct Recommendation
{
    ActionKind action = ActionKind::Participate;
    std::vector<BreakAwayOption> options;
};

/**
 * One user's agent in the colocation game.
 */
class Agent
{
  public:
    /**
     * @param id Agent id within the population.
     * @param type The job the agent runs.
     */
    Agent(AgentId id, JobTypeId type);

    AgentId id() const { return id_; }
    JobTypeId type() const { return type_; }

    /**
     * Query interface: fetch the sparse colocation profiles from the
     * coordinator's profiler (Figure 6's first agent module).
     */
    const SparseMatrix &queryProfiles(Coordinator &coordinator) const;

    /**
     * Preference predictor: fill the sparse profiles with item-based
     * collaborative filtering and return this agent's believed
     * penalty row over job types (Figure 6's second agent module).
     *
     * @param profiles Sparse type-level measurements.
     * @param config Predictor settings.
     */
    std::vector<double>
    predictTypeRow(const SparseMatrix &profiles,
                   const ItemKnnConfig &config = {}) const;

    /**
     * Candidate job types ordered most-preferred first, derived from
     * predictTypeRow (ties broken toward the lower type id). The
     * agent's own type is included: a job may colocate with another
     * instance of itself.
     */
    std::vector<std::size_t>
    predictTypePreferences(const SparseMatrix &profiles,
                           const ItemKnnConfig &config = {}) const;

    /**
     * Store the predicted preference list (candidate agents, most
     * preferred first) produced from the preference predictor.
     */
    void setPreferences(std::vector<AgentId> ordered);

    /** Predicted preference order over other agents. */
    const std::vector<AgentId> &preferences() const { return prefs_; }

    /**
     * Candidates this agent prefers over its assigned co-runner and
     * would gain at least `alpha` penalty by switching to; these are
     * the agents it messages.
     *
     * @param matching Assigned colocations.
     * @param disutility Assessed disutility oracle.
     * @param alpha Minimum gain worth acting on.
     */
    std::vector<AgentId> messageTargets(const Matching &matching,
                                        const DisutilityFn &disutility,
                                        double alpha) const;

    /**
     * Assess the assignment given the messages received and recommend
     * an action. A blocking partner is a message target that also
     * messaged this agent.
     *
     * @param matching Assigned colocations.
     * @param received Agents whose messages arrived.
     * @param disutility Assessed disutility oracle.
     * @param alpha Minimum gain worth acting on.
     */
    Recommendation assess(const Matching &matching,
                          const std::vector<AgentId> &received,
                          const DisutilityFn &disutility,
                          double alpha) const;

  private:
    AgentId id_;
    JobTypeId type_;
    std::vector<AgentId> prefs_;
};

} // namespace cooper

#endif // COOPER_CORE_AGENT_HH
