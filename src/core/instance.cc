#include "instance.hh"

#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {

ColocationInstance::ColocationInstance(const Catalog &catalog,
                                       std::vector<JobTypeId> types,
                                       PenaltyMatrix truth,
                                       PenaltyMatrix believed,
                                       double jitter)
    : catalog_(&catalog), types_(std::move(types)),
      truth_(std::move(truth)), believed_(std::move(believed)),
      jitter_(jitter)
{
    fatalIf(types_.empty(), "ColocationInstance: empty population");
    fatalIf(truth_.size() != catalog.size(),
            "ColocationInstance: truth matrix is ", truth_.size(),
            "x, catalog has ", catalog.size(), " types");
    fatalIf(believed_.size() != catalog.size(),
            "ColocationInstance: believed matrix size mismatch");
    for (JobTypeId t : types_)
        fatalIf(t >= catalog.size(),
                "ColocationInstance: unknown job type ", t);
    fatalIf(jitter_ < 0.0, "ColocationInstance: negative jitter");
}

ColocationInstance
ColocationInstance::oracular(const Catalog &catalog,
                             std::vector<JobTypeId> types,
                             const InterferenceModel &model)
{
    PenaltyMatrix truth = model.penaltyMatrix();
    PenaltyMatrix believed = truth;
    return ColocationInstance(catalog, std::move(types), std::move(truth),
                              std::move(believed));
}

double
ColocationInstance::jitterFor(AgentId a, AgentId b) const
{
    if (jitter_ == 0.0)
        return 0.0;
    // Stable per-ordered-pair hash in [0, jitter). Including the pair
    // (not just the co-runner) keeps two same-type co-runners
    // distinguishable, giving strict preference orders.
    std::uint64_t h = (static_cast<std::uint64_t>(a) << 32) ^
                      (static_cast<std::uint64_t>(b) + 0x51ed2701);
    return (splitmix64(h) >> 11) * 0x1.0p-53 * jitter_;
}

double
ColocationInstance::trueDisutility(AgentId a, AgentId b) const
{
    return truth_(types_[a], types_[b]) + jitterFor(a, b);
}

double
ColocationInstance::believedDisutility(AgentId a, AgentId b) const
{
    return believed_(types_[a], types_[b]) + jitterFor(a, b);
}

PreferenceProfile
ColocationInstance::believedPreferences() const
{
    return PreferenceProfile::fromDisutility(
        agents(), agents(),
        [this](AgentId a, AgentId b) { return believedDisutility(a, b); },
        /*exclude_self=*/true);
}

DisutilityTable
ColocationInstance::believedTable(std::size_t threads) const
{
    return DisutilityTable(
        agents(), agents(),
        [this](AgentId a, AgentId b) { return believedDisutility(a, b); },
        threads);
}

double
ColocationInstance::meanTruePenalty(const Matching &matching) const
{
    fatalIf(matching.size() != agents(),
            "meanTruePenalty: matching size mismatch");
    double acc = 0.0;
    std::size_t matched = 0;
    for (AgentId a = 0; a < agents(); ++a) {
        if (matching.isMatched(a)) {
            acc += trueDisutility(a, matching.partnerOf(a));
            ++matched;
        }
    }
    return matched ? acc / static_cast<double>(matched) : 0.0;
}

std::vector<double>
ColocationInstance::truePenalties(const Matching &matching) const
{
    fatalIf(matching.size() != agents(),
            "truePenalties: matching size mismatch");
    std::vector<double> out(agents(), 0.0);
    for (AgentId a = 0; a < agents(); ++a)
        if (matching.isMatched(a))
            out[a] = trueDisutility(a, matching.partnerOf(a));
    return out;
}

} // namespace cooper
