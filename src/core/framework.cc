#include "framework.hh"

#include <algorithm>

#include "cf/accuracy.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

namespace {

CoordinatorConfig
coordinatorConfigFrom(const FrameworkConfig &config)
{
    CoordinatorConfig out;
    out.policy = config.policy;
    out.sampleRatio = config.sampleRatio;
    out.noise = config.noise;
    out.machines = config.machines;
    return out;
}

} // namespace

CooperFramework::CooperFramework(const Catalog &catalog,
                                 const InterferenceModel &model,
                                 FrameworkConfig config, std::uint64_t seed)
    : catalog_(&catalog), model_(&model), config_(std::move(config)),
      rng_(seed),
      coordinator_(catalog, model, coordinatorConfigFrom(config_),
                   seed * 0x9e3779b97f4a7c15ULL + 1)
{
    fatalIf(config_.sampleRatio <= 0.0 || config_.sampleRatio > 1.0,
            "CooperFramework: sampleRatio outside (0, 1]");
}

ColocationInstance
CooperFramework::buildInstance(const std::vector<JobTypeId> &population)
{
    const TraceSpan span("framework.build_instance", "framework");
    PenaltyMatrix truth = model_->penaltyMatrix();

    if (config_.oracular) {
        lastAccuracy_ = 1.0;
        lastDensity_ = 1.0;
        PenaltyMatrix believed = truth;
        return ColocationInstance(*catalog_, population, std::move(truth),
                                  std::move(believed), config_.jitter);
    }

    // 1. Agents query the coordinator's profiler for sparse
    // colocation profiles.
    const SparseMatrix &profiles = coordinator_.profiles();
    lastDensity_ = profiles.density();

    // 2. The preference predictor fills the matrix.
    ItemKnnConfig knn_config = config_.predictor;
    if (knn_config.threads == 1)
        knn_config.threads = config_.execution.threads;
    ItemKnnPredictor predictor(knn_config);
    const Prediction prediction = predictor.predict(profiles);

    const std::size_t n = catalog_->size();
    PenaltyMatrix believed(n);
    std::vector<std::vector<double>> truth_dense(
        n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            believed(i, j) = prediction.dense[i][j];
            truth_dense[i][j] = truth(i, j);
        }
    }
    lastAccuracy_ = preferenceAccuracy(truth_dense, prediction.dense);

    return ColocationInstance(*catalog_, population, std::move(truth),
                              std::move(believed), config_.jitter);
}

EpochReport
CooperFramework::runEpoch(const std::vector<JobTypeId> &population)
{
    fatalIf(population.empty(), "runEpoch: empty population");

    // Honor the framework-level observability knob. The scope is
    // passive when the config is off or an outer session (for
    // example the CLI's) is already installed.
    const ObsScope obs_scope(config_.execution.obs);
    const TraceSpan epoch_span("framework.epoch", "framework");
    const ScopedTimer epoch_timer("framework.epoch_seconds");

    // New epoch, fresh profiles (the profiler keeps accumulating its
    // measurement database across epochs).
    if (!config_.oracular)
        coordinator_.refreshProfiles();
    ColocationInstance instance = buildInstance(population);

    EpochReport report;
    report.predictionAccuracy = lastAccuracy_;
    report.profiledDensity = lastDensity_;

    // 3. The coordinator's policy assigns co-runners.
    report.matching = coordinator_.colocate(instance, rng_);

    report.penalties = instance.truePenalties(report.matching);
    report.meanPenalty = instance.meanTruePenalty(report.matching);

    // 4. Agents assess assignments via message exchange. Candidates
    // are judged with believed penalties; the current co-runner with
    // the observed (true) penalty. Both oracles are memoized for the
    // epoch: the believed table once per instance, the assessed table
    // after the matching is fixed (its answers depend on who ended up
    // paired with whom).
    const std::size_t n = population.size();
    const DisutilityTable believed =
        instance.believedTable(config_.execution.threads);
    const DisutilityTable assessed_table(
        n, n,
        [&](AgentId a, AgentId b) {
            if (report.matching.partnerOf(a) == b)
                return instance.trueDisutility(a, b);
            return believed(a, b);
        },
        config_.execution.threads);
    const DisutilityFn assessed = assessed_table.fn();

    std::vector<Agent> agents;
    agents.reserve(n);
    for (AgentId i = 0; i < n; ++i) {
        agents.emplace_back(i, population[i]);
        std::vector<AgentId> prefs;
        prefs.reserve(n - 1);
        for (AgentId j = 0; j < n; ++j)
            if (j != i)
                prefs.push_back(j);
        const double *keys = believed.row(i);
        std::stable_sort(prefs.begin(), prefs.end(),
                         [keys](AgentId a, AgentId b) {
                             return keys[a] < keys[b];
                         });
        agents.back().setPreferences(std::move(prefs));
    }

    std::vector<std::vector<AgentId>> inbox(n);
    for (const Agent &agent : agents) {
        const auto targets =
            agent.messageTargets(report.matching, assessed, config_.alpha);
        report.messagesSent += targets.size();
        for (AgentId target : targets)
            inbox[target].push_back(agent.id());
    }

    report.recommendations.reserve(n);
    std::size_t mutual_edges = 0;
    for (const Agent &agent : agents) {
        Recommendation rec = agent.assess(report.matching,
                                          inbox[agent.id()], assessed,
                                          config_.alpha);
        if (rec.action == ActionKind::BreakAway) {
            ++report.breakAwayAgents;
            mutual_edges += rec.options.size();
        }
        report.recommendations.push_back(std::move(rec));
    }
    // Each blocking pair surfaces once at each endpoint.
    panicIf(mutual_edges % 2 != 0,
            "runEpoch: asymmetric blocking-pair discovery");
    report.blockingPairs = mutual_edges / 2;

    // 5. The dispatcher sends participating pairs to machines. (The
    // default agent behavior is to participate; break-away counts
    // quantify dissatisfaction.)
    std::vector<PairAssignment> assignments;
    for (const auto &[a, b] : report.matching.pairs())
        assignments.push_back(PairAssignment{population[a],
                                             population[b]});
    report.dispatch = coordinator_.dispatch(
        assignments, std::max<std::size_t>(1, n / 2));

    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->gauge("framework.agents")
            .set(static_cast<double>(n));
        metrics->gauge("framework.mean_penalty")
            .set(report.meanPenalty);
        metrics->gauge("framework.prediction_accuracy")
            .set(report.predictionAccuracy);
        metrics->gauge("framework.profiled_density")
            .set(report.profiledDensity);
    }
    return report;
}

} // namespace cooper
