#include "approx_policies.hh"

#include <algorithm>
#include <limits>

#include "stats/kmeans.hh"
#include "util/error.hh"

namespace cooper {

namespace {

/**
 * Shared engine: pair agents through a coarse classification.
 *
 * Classes are drained greedily: commit the cheapest remaining
 * (class, class) colocation — a class may pair with itself — and
 * pair agents across it until one side runs out.
 */
Matching
matchThroughClasses(const ColocationInstance &instance,
                    const std::vector<std::size_t> &class_of_type,
                    std::size_t classes, Rng &rng)
{
    const std::size_t types = instance.catalog().size();
    fatalIf(class_of_type.size() != types,
            "matchThroughClasses: need one class per job type");

    // Class-level colocation cost: membership-weighted mean of the
    // believed type-level penalties in both directions.
    const std::size_t n = instance.agents();
    std::vector<std::vector<AgentId>> members(classes);
    std::vector<double> type_count(types, 0.0);
    for (AgentId a = 0; a < n; ++a) {
        members[class_of_type[instance.typeOf(a)]].push_back(a);
        type_count[instance.typeOf(a)] += 1.0;
    }
    // Shuffle members so within-class pairing is unbiased.
    for (auto &list : members)
        rng.shuffle(list);

    auto class_cost = [&](std::size_t ci, std::size_t cj) {
        double weight = 0.0, acc = 0.0;
        for (JobTypeId t = 0; t < types; ++t) {
            if (class_of_type[t] != ci || type_count[t] == 0.0)
                continue;
            for (JobTypeId u = 0; u < types; ++u) {
                if (class_of_type[u] != cj || type_count[u] == 0.0)
                    continue;
                const double w = type_count[t] * type_count[u];
                acc += w * (instance.believed()(t, u) +
                            instance.believed()(u, t));
                weight += w;
            }
        }
        return weight > 0.0 ? acc / weight
                            : std::numeric_limits<double>::infinity();
    };

    std::vector<std::size_t> next(classes, 0); // consumed members
    auto remaining = [&](std::size_t c) {
        return members[c].size() - next[c];
    };

    Matching matching(n);
    for (;;) {
        std::size_t total = 0;
        for (std::size_t c = 0; c < classes; ++c)
            total += remaining(c);
        if (total < 2)
            break;

        // Cheapest feasible class pair (self-pairs need two agents).
        double best = 0.0;
        std::size_t best_i = classes, best_j = classes;
        for (std::size_t ci = 0; ci < classes; ++ci) {
            if (remaining(ci) == 0)
                continue;
            for (std::size_t cj = ci; cj < classes; ++cj) {
                if (remaining(cj) == 0 ||
                    (ci == cj && remaining(ci) < 2)) {
                    continue;
                }
                const double cost = class_cost(ci, cj);
                if (best_i == classes || cost < best) {
                    best = cost;
                    best_i = ci;
                    best_j = cj;
                }
            }
        }
        panicIf(best_i == classes,
                "matchThroughClasses: no feasible class pair");

        if (best_i == best_j) {
            while (remaining(best_i) >= 2) {
                const AgentId a = members[best_i][next[best_i]++];
                const AgentId b = members[best_i][next[best_i]++];
                matching.pair(a, b);
            }
        } else {
            while (remaining(best_i) > 0 && remaining(best_j) > 0) {
                const AgentId a = members[best_i][next[best_i]++];
                const AgentId b = members[best_j][next[best_j]++];
                matching.pair(a, b);
            }
        }
    }
    return matching;
}

} // namespace

Matching
TypeMatchPolicy::assign(const ColocationInstance &instance,
                        Rng &rng) const
{
    const std::size_t types = instance.catalog().size();
    std::vector<std::size_t> identity(types);
    for (std::size_t t = 0; t < types; ++t)
        identity[t] = t;
    return matchThroughClasses(instance, identity, types, rng);
}

ClusterMatchPolicy::ClusterMatchPolicy(std::size_t clusters)
    : clusters_(clusters)
{
    fatalIf(clusters_ == 0, "ClusterMatchPolicy: need >= 1 cluster");
}

Matching
ClusterMatchPolicy::assign(const ColocationInstance &instance,
                           Rng &rng) const
{
    const Catalog &catalog = instance.catalog();
    std::vector<std::vector<double>> features;
    features.reserve(catalog.size());
    for (const JobType &job : catalog.jobs())
        features.push_back({job.gbps, job.cacheMB, job.bwSensitivity,
                            job.cacheSensitivity});
    const auto normalized = normalizeFeatures(features);
    const std::size_t k = std::min(clusters_, catalog.size());
    const KMeansResult clusters = kmeans(normalized, k, rng);
    return matchThroughClasses(instance, clusters.assignment, k, rng);
}

} // namespace cooper
