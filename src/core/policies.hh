/**
 * @file
 * Colocation policies (Section IV.C).
 *
 * Conventional baselines:
 *  - Greedy (GR): each task, in arrival order, goes to the processor
 *    that minimizes contention given prior assignments.
 *  - Complementary (CO): partition by resource demand and pair
 *    memory-intensive tasks with compute-intensive ones.
 *  - Threshold: colocate only when both penalties stay under a
 *    tolerance; otherwise add a machine (Bubble-Up-style).
 *
 * Game-theoretic policies:
 *  - Stable Marriage Partition (SMP): partition by memory intensity;
 *    the resource-intensive set proposes.
 *  - Stable Marriage Random (SMR): random partition; a random set
 *    proposes.
 *  - Stable Roommate (SR): unrestricted matching; greedy fallback
 *    when no perfectly stable solution exists.
 */

#ifndef COOPER_CORE_POLICIES_HH
#define COOPER_CORE_POLICIES_HH

#include <memory>
#include <string>
#include <vector>

#include "core/instance.hh"
#include "matching/matching.hh"
#include "util/rng.hh"

namespace cooper {

/**
 * Interface every colocation policy implements.
 */
class ColocationPolicy
{
  public:
    virtual ~ColocationPolicy() = default;

    /** Short name as used in the paper's figures (GR, CO, ...). */
    virtual std::string name() const = 0;

    /**
     * Assign co-runners for an instance.
     *
     * @param instance Population and believed disutilities.
     * @param rng Random stream (arrival orders, random partitions).
     */
    virtual Matching assign(const ColocationInstance &instance,
                            Rng &rng) const = 0;
};

/** Greedy contention-minimizing baseline (GR). */
class GreedyPolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "GR"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;
};

/** Complementary-demand pairing baseline (CO). */
class ComplementaryPolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "CO"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;
};

/** Stable marriage with a memory-intensity partition (SMP). */
class StableMarriagePartitionPolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "SMP"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;
};

/** Stable marriage with a random partition (SMR). */
class StableMarriageRandomPolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "SMR"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;
};

/** Adapted stable roommates (SR). */
class StableRoommatePolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "SR"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;
};

/**
 * Threshold policy: colocate a pair only when both believed penalties
 * are below the tolerance; tasks that cannot colocate run alone on an
 * extra machine. Included for the related-work comparison; note GR
 * dominates it when no spare machines exist (Section IV.C).
 */
class ThresholdPolicy : public ColocationPolicy
{
  public:
    explicit ThresholdPolicy(double tolerance = 0.10);

    std::string name() const override { return "TH"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;

    double tolerance() const { return tolerance_; }

  private:
    double tolerance_;
};

/** All five figure policies in presentation order. */
std::vector<std::unique_ptr<ColocationPolicy>> figurePolicies();

/** Instantiate a policy by its short name (GR, CO, SMP, SMR, SR, TH). */
std::unique_ptr<ColocationPolicy> makePolicy(const std::string &name);

} // namespace cooper

#endif // COOPER_CORE_POLICIES_HH
