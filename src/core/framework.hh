/**
 * @file
 * The Cooper framework: coordinator plus agents, end to end.
 *
 * One epoch of the colocation game (Sections III and IV):
 *   1. the coordinator's profiler measures a sparse sample of
 *      pairwise colocations;
 *   2. each agent's preference predictor fills in the unobserved
 *      penalties with item-based collaborative filtering;
 *   3. the coordinator's colocation policy matches agents;
 *   4. agents assess assignments by exchanging messages and recommend
 *      participating or breaking away;
 *   5. the job dispatcher sends participating pairs to machines.
 */

#ifndef COOPER_CORE_FRAMEWORK_HH
#define COOPER_CORE_FRAMEWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "cf/item_knn.hh"
#include "core/agent.hh"
#include "core/coordinator.hh"
#include "core/instance.hh"
#include "core/policies.hh"
#include "sim/cluster.hh"
#include "sim/profiler.hh"

namespace cooper {

/** Framework configuration. */
struct FrameworkConfig
{
    /** Policy short name: GR, CO, SMP, SMR, SR, TH, or coalition
     *  (n-way formation; honors execution.online.groupSize). */
    std::string policy = "SMR";

    /** Fraction of the type-penalty matrix the profiler samples. */
    double sampleRatio = 0.25;

    /** Skip prediction and hand policies the ground truth. */
    bool oracular = false;

    /** Preference-predictor settings. */
    ItemKnnConfig predictor;

    /** Profiling-noise settings. */
    NoiseConfig noise;

    /** Minimum gain for which an agent breaks away (Figure 10's
     *  alpha). */
    double alpha = 0.0;

    /** Machines available to the dispatcher; 0 means one per pair. */
    std::size_t machines = 0;

    /** Tie-breaking jitter for agent-level disutilities. */
    double jitter = 1e-4;

    /**
     * Parallel-execution settings. The predictor inherits
     * execution.threads unless the predictor config sets its own
     * non-default value. Results never depend on the thread count.
     */
    ExecutionConfig execution{.threads = 1, .obs = {}, .online = {}};
};

/** Everything one epoch produces. */
struct EpochReport
{
    Matching matching;

    /** True per-agent penalties under the assignment. */
    std::vector<double> penalties;

    /** Mean true penalty over matched agents. */
    double meanPenalty = 0.0;

    /** Per-agent recommendations from the action recommenders. */
    std::vector<Recommendation> recommendations;

    /** Agents recommending break-away. */
    std::size_t breakAwayAgents = 0;

    /** Blocking pairs discovered through message exchange. */
    std::size_t blockingPairs = 0;

    /** Messages sent during assessment. */
    std::size_t messagesSent = 0;

    /** Preference-prediction accuracy vs ground truth (Equation 2);
     *  1.0 in oracular mode. */
    double predictionAccuracy = 1.0;

    /** Fraction of the type matrix that was profiled. */
    double profiledDensity = 0.0;

    /** Dispatch outcome for participating pairs. */
    DispatchReport dispatch;
};

/**
 * End-to-end Cooper instance over a job catalog and a cluster model.
 */
class CooperFramework
{
  public:
    /**
     * @param catalog Job catalog.
     * @param model Ground-truth interference model.
     * @param config Framework settings.
     * @param seed Seed for profiling noise, sampling, and policy
     *        randomness.
     */
    CooperFramework(const Catalog &catalog, const InterferenceModel &model,
                    FrameworkConfig config, std::uint64_t seed = 1);

    const FrameworkConfig &config() const { return config_; }

    /**
     * Play one epoch of the colocation game.
     *
     * @param population Job type of every arriving agent.
     */
    EpochReport runEpoch(const std::vector<JobTypeId> &population);

    /**
     * Build the instance an epoch would play (profile + predict),
     * without matching or dispatching. Useful for experiments that
     * evaluate several policies on identical inputs.
     */
    ColocationInstance
    buildInstance(const std::vector<JobTypeId> &population);

    /** The coordinator instance serving this framework. */
    const Coordinator &coordinator() const { return coordinator_; }

  private:
    const Catalog *catalog_;
    const InterferenceModel *model_;
    FrameworkConfig config_;
    Rng rng_;
    Coordinator coordinator_;
    double lastAccuracy_ = 1.0;
    double lastDensity_ = 0.0;
};

} // namespace cooper

#endif // COOPER_CORE_FRAMEWORK_HH
