/**
 * @file
 * Shared experiment plumbing for the evaluation harnesses in bench/.
 *
 * Each bench binary reproduces one of the paper's tables or figures;
 * this header centralizes the pieces they share: sampling a
 * population, building an instance, running a policy, and aggregating
 * per-job penalties.
 */

#ifndef COOPER_CORE_EXPERIMENT_HH
#define COOPER_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/instance.hh"
#include "core/policies.hh"
#include "game/fairness.hh"
#include "workload/population.hh"

namespace cooper {

/** One policy's outcome on one instance. */
struct PolicyRun
{
    std::string policy;
    Matching matching;
    std::vector<double> penalties; //!< true per-agent penalties
    double meanPenalty = 0.0;
};

/**
 * Sample a population and wrap it in an oracular instance.
 */
ColocationInstance
sampleInstance(const Catalog &catalog, const InterferenceModel &model,
               std::size_t agents, MixKind mix, Rng &rng);

/**
 * Sample a population and wrap it in a collaborative-filtering
 * instance: believed penalties come from sparse noisy profiles run
 * through the preference predictor, the way a deployed Cooper would
 * operate (Section VI.C compares this against oracular knowledge).
 *
 * @param sample_ratio Fraction of the type matrix profiled.
 */
ColocationInstance
sampleInstanceCf(const Catalog &catalog, const InterferenceModel &model,
                 std::size_t agents, MixKind mix, double sample_ratio,
                 Rng &rng);

/** Run one policy and collect its true penalties. */
PolicyRun runPolicy(const ColocationPolicy &policy,
                    const ColocationInstance &instance, Rng &rng);

/**
 * Plan for a batch of independent experiment replications.
 */
struct ReplicationPlan
{
    /** Number of independent replications. */
    std::size_t replications = 1;

    /** Agents per sampled population. */
    std::size_t agents = 100;

    /** Population mix to sample from. */
    MixKind mix = MixKind::Uniform;

    /**
     * When true, every replication sees oracular (true) penalties;
     * when false, believed penalties come from sparse profiles run
     * through the preference predictor at `sampleRatio`.
     */
    bool oracular = true;

    /** Fraction of the type matrix profiled in CF replications. */
    double sampleRatio = 0.25;

    /** Worker threads; 0 = hardware, 1 = serial. */
    std::size_t threads = 1;
};

/**
 * Run `plan.replications` independent (sample population, build
 * instance, run policy) replications.
 *
 * Replication r derives every random decision from `root.substream(r)`
 * — the root generator is not advanced — so the result vector is
 * identical for any thread count and any execution order, and adding
 * replications never perturbs earlier ones. The policy's assign() must
 * be safe to call concurrently on distinct instances.
 */
std::vector<PolicyRun>
runReplications(const ColocationPolicy &policy, const Catalog &catalog,
                const InterferenceModel &model, const ReplicationPlan &plan,
                const Rng &root);

/**
 * Aggregate a run into per-type penalties ordered by contentiousness
 * (the figures' x-axis).
 */
std::vector<JobPenalty> aggregateByType(const ColocationInstance &instance,
                                        const Matching &matching);

/**
 * Restrict per-type aggregates to the eleven jobs displayed in
 * Figures 1/7/8, in the paper's x-axis order. Types absent from the
 * population are skipped.
 */
std::vector<JobPenalty>
figureJobRows(const Catalog &catalog,
              const std::vector<JobPenalty> &by_type);

} // namespace cooper

#endif // COOPER_CORE_EXPERIMENT_HH
