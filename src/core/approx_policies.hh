/**
 * @file
 * Approximate colocation policies from the paper's future-work
 * discussion (Section VIII): classify applications into types (or
 * clusters of types) and then match at that coarser granularity.
 * Stability guarantees weaken, but matching cost drops from O(n^2)
 * over agents to O(t^2) over types.
 */

#ifndef COOPER_CORE_APPROX_POLICIES_HH
#define COOPER_CORE_APPROX_POLICIES_HH

#include "core/policies.hh"

namespace cooper {

/**
 * Type-level matching (TM): greedily commit the cheapest remaining
 * (type, type) colocation — a type may pair with itself — and pair
 * agents across the committed type pair until one side runs out.
 */
class TypeMatchPolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "TM"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;
};

/**
 * Cluster-level matching (CM): k-means the job types on their
 * resource profile (bandwidth, cache footprint, sensitivities), then
 * apply type-level matching over clusters.
 */
class ClusterMatchPolicy : public ColocationPolicy
{
  public:
    /** @param clusters Number of k-means clusters over job types. */
    explicit ClusterMatchPolicy(std::size_t clusters = 6);

    std::string name() const override { return "CM"; }
    Matching assign(const ColocationInstance &instance,
                    Rng &rng) const override;

    std::size_t clusters() const { return clusters_; }

  private:
    std::size_t clusters_;
};

} // namespace cooper

#endif // COOPER_CORE_APPROX_POLICIES_HH
