/**
 * @file
 * A colocation-game instance: a population of agents plus the
 * disutility information the game is played with.
 *
 * Policies act on *believed* disutilities (collaborative-filtering
 * predictions, or ground truth in oracular mode); evaluation uses
 * *true* disutilities. Agents of the same job type share type-level
 * penalties; a tiny deterministic per-agent-pair jitter breaks ties so
 * every agent has strict preferences, which the matching algorithms
 * require.
 */

#ifndef COOPER_CORE_INSTANCE_HH
#define COOPER_CORE_INSTANCE_HH

#include <vector>

#include "matching/disutility.hh"
#include "matching/matching.hh"
#include "matching/preferences.hh"
#include "sim/interference.hh"
#include "workload/catalog.hh"

namespace cooper {

/**
 * Agent population bound to type-level penalty matrices.
 */
class ColocationInstance
{
  public:
    /**
     * @param catalog Job catalog.
     * @param types Agent -> job type.
     * @param truth Type-level ground-truth penalties.
     * @param believed Type-level penalties the policies act on.
     * @param jitter Amplitude of the deterministic tie-breaking
     *        jitter added to every agent-pair disutility.
     */
    ColocationInstance(const Catalog &catalog,
                       std::vector<JobTypeId> types, PenaltyMatrix truth,
                       PenaltyMatrix believed, double jitter = 1e-4);

    /** Oracular instance: policies see the ground truth. */
    static ColocationInstance oracular(const Catalog &catalog,
                                       std::vector<JobTypeId> types,
                                       const InterferenceModel &model);

    const Catalog &catalog() const { return *catalog_; }
    std::size_t agents() const { return types_.size(); }
    const std::vector<JobTypeId> &types() const { return types_; }
    JobTypeId typeOf(AgentId a) const { return types_[a]; }

    /** Ground-truth disutility of agent a colocated with agent b. */
    double trueDisutility(AgentId a, AgentId b) const;

    /** Disutility as believed by the agents (policy input). */
    double believedDisutility(AgentId a, AgentId b) const;

    /** Type-level ground truth (no jitter). */
    const PenaltyMatrix &truth() const { return truth_; }

    /** Type-level believed penalties (no jitter). */
    const PenaltyMatrix &believed() const { return believed_; }

    /** Amplitude of the tie-breaking jitter (sub-instances built from
     *  this one, e.g. by the online repairing policy, reuse it). */
    double jitter() const { return jitter_; }

    /**
     * Full roommates preference profile from believed disutilities.
     */
    PreferenceProfile believedPreferences() const;

    /**
     * Memoized believed disutilities over all ordered agent pairs.
     * Valid for as long as this instance's believed penalties are —
     * i.e. for the epoch that built the instance.
     */
    DisutilityTable believedTable(std::size_t threads = 1) const;

    /** Mean true penalty across matched agents. */
    double meanTruePenalty(const Matching &matching) const;

    /** Per-agent true penalties (zero for unmatched agents). */
    std::vector<double> truePenalties(const Matching &matching) const;

  private:
    double jitterFor(AgentId a, AgentId b) const;

    const Catalog *catalog_;
    std::vector<JobTypeId> types_;
    PenaltyMatrix truth_;
    PenaltyMatrix believed_;
    double jitter_;
};

} // namespace cooper

#endif // COOPER_CORE_INSTANCE_HH
