/**
 * @file
 * Colocation with more than two co-runners (Section VIII).
 *
 * Stable matching for arbitrary group sizes is intractable in
 * general; the paper proposes a hierarchical heuristic — match
 * applications into pairs, then match pairs — and notes stability
 * guarantees may vary. This module implements that heuristic plus
 * greedy and random group baselines, evaluated against the
 * interference model's multi-co-runner penalties.
 */

#ifndef COOPER_CORE_GROUPS_HH
#define COOPER_CORE_GROUPS_HH

#include <vector>

#include "core/instance.hh"
#include "util/rng.hh"

namespace cooper {

/** A partition of agents into CMP-sharing groups. */
struct Grouping
{
    std::vector<std::vector<AgentId>> groups;

    /** Total agents across all groups. */
    std::size_t agentCount() const;

    /** True when each agent appears exactly once and ids are valid. */
    bool isPartitionOf(std::size_t agents) const;
};

/**
 * Ground-truth penalty of agent `self` inside its group.
 *
 * @param instance Population and penalty matrices.
 * @param self Agent whose penalty is evaluated.
 * @param group The group containing `self`.
 * @param model Interference model for multi-co-runner penalties.
 */
double trueGroupPenalty(const ColocationInstance &instance,
                        const InterferenceModel &model, AgentId self,
                        const std::vector<AgentId> &group);

/** Per-agent true penalties for a grouping (zero when alone). */
std::vector<double> trueGroupPenalties(const ColocationInstance &instance,
                                       const InterferenceModel &model,
                                       const Grouping &grouping);

/**
 * Hierarchical stable grouping: adapted stable roommates pairs the
 * agents, then pairs the pairs (for group size 4) using the additive
 * believed disutility between super-agents. Group size 3 matches
 * pairs with leftover singles. Supported sizes: 2, 3, 4.
 *
 * Agents only know pairwise (believed) penalties; the quality of the
 * additive approximation is part of what the extension benchmarks.
 */
Grouping hierarchicalGroups(const ColocationInstance &instance,
                            std::size_t group_size, Rng &rng);

/**
 * Greedy baseline: tasks arrive in random order and join the
 * non-full machine with the least combined bandwidth demand (GR
 * generalized to larger groups).
 */
Grouping greedyGroups(const ColocationInstance &instance,
                      std::size_t group_size, Rng &rng);

/** Random baseline: shuffle and chop into groups. */
Grouping randomGroups(const ColocationInstance &instance,
                      std::size_t group_size, Rng &rng);

} // namespace cooper

#endif // COOPER_CORE_GROUPS_HH
