#include "rebalance.hh"

#include <algorithm>
#include <limits>
#include <map>

#include "util/error.hh"

namespace cooper {

namespace {

/** Mutable working copy of the fleet the planner moves jobs in. */
struct Fleet
{
    struct Shard
    {
        std::vector<LiveJob> live;
        std::map<JobUid, JobUid> partner; // both directions
        std::map<JobUid, JobTypeId> type;
        std::size_t room = 0;
    };

    std::vector<Shard> shards;
    const SparseMatrix *profiles = nullptr;
    double fallback = 0.0;

    /** Directed penalty estimate from the merged profiles. */
    double
    estimate(JobTypeId self, JobTypeId other) const
    {
        return profiles->valueOr(self, other, fallback);
    }

    /** A pair hurts both members; its cost is the worse direction. */
    double
    pairCost(JobTypeId a, JobTypeId b) const
    {
        return std::max(estimate(a, b), estimate(b, a));
    }

    /** Predicted cost of one job: its pair's cost, or 0 unmatched. */
    double
    costOf(const Shard &shard, const LiveJob &job) const
    {
        const auto link = shard.partner.find(job.uid);
        if (link == shard.partner.end())
            return 0.0;
        const auto other = shard.type.find(link->second);
        panicIf(other == shard.type.end(),
                "Rebalancer: partner uid without a type");
        return pairCost(job.type, other->second);
    }

    /** Worst-off job of one shard (first live slot wins ties). */
    std::pair<double, const LiveJob *>
    worstOf(const Shard &shard) const
    {
        double worst = 0.0;
        const LiveJob *job = nullptr;
        for (const LiveJob &candidate : shard.live) {
            const double cost = costOf(shard, candidate);
            if (job == nullptr || cost > worst) {
                worst = cost;
                job = &candidate;
            }
        }
        return {job == nullptr ? 0.0 : worst, job};
    }

    /** Fleet-wide egalitarian objective and the shard attaining it. */
    std::pair<double, std::size_t>
    objective() const
    {
        double worst = 0.0;
        std::size_t at = 0;
        for (std::size_t s = 0; s < shards.size(); ++s) {
            const double cost = worstOf(shards[s]).first;
            if (cost > worst) {
                worst = cost;
                at = s;
            }
        }
        return {worst, at};
    }

    /** Cheapest predicted co-runner for `type` in `shard`; an empty
     *  shard promises a solo slot (zero). */
    double
    entryCost(const Shard &shard, JobTypeId type) const
    {
        if (shard.live.empty())
            return 0.0;
        double best = std::numeric_limits<double>::infinity();
        for (const LiveJob &host : shard.live)
            best = std::min(best, pairCost(type, host.type));
        return best;
    }

    /** Worst-off cost of `shard` once `uid` leaves: the departing
     *  job drops out and its partner is widowed (cost 0). */
    double
    worstWithout(const Shard &shard, JobUid uid) const
    {
        const auto link = shard.partner.find(uid);
        const bool widows = link != shard.partner.end();
        const JobUid widowed = widows ? link->second : 0;
        double worst = 0.0;
        for (const LiveJob &candidate : shard.live) {
            if (candidate.uid == uid)
                continue;
            const double cost = widows && candidate.uid == widowed
                                    ? 0.0
                                    : costOf(shard, candidate);
            worst = std::max(worst, cost);
        }
        return worst;
    }

    /** Move `uid` from shard `from` to shard `to`, dissolving its
     *  pair; the migrant lands unmatched. */
    void
    move(JobUid uid, std::size_t from, std::size_t to)
    {
        Shard &src = shards[from];
        const auto it = std::find_if(
            src.live.begin(), src.live.end(),
            [uid](const LiveJob &job) { return job.uid == uid; });
        panicIf(it == src.live.end(),
                "Rebalancer: moving a job that is not live");
        const LiveJob job = *it;
        const auto link = src.partner.find(uid);
        if (link != src.partner.end()) {
            const JobUid other = link->second;
            src.partner.erase(link);
            src.partner.erase(other);
        }
        src.live.erase(it);
        src.type.erase(uid);

        Shard &dst = shards[to];
        panicIf(dst.room == 0, "Rebalancer: target shard has no room");
        --dst.room;
        dst.live.push_back(job);
        dst.type.emplace(job.uid, job.type);
    }
};

} // namespace

RebalanceOutcome
Rebalancer::plan(const std::vector<ShardView> &shards,
                 const SparseMatrix &profiles) const
{
    fatalIf(shards.empty(), "Rebalancer: no shards");

    Fleet fleet;
    fleet.profiles = &profiles;
    fleet.fallback = profiles.knownCount() > 0 ? profiles.knownMean()
                                               : 0.0;
    fleet.shards.reserve(shards.size());
    for (const ShardView &view : shards) {
        Fleet::Shard shard;
        shard.live = view.live;
        shard.room = view.admissionRoom;
        for (const LiveJob &job : view.live)
            shard.type.emplace(job.uid, job.type);
        for (const auto &[a, b] : view.pairs) {
            fatalIf(shard.type.find(a) == shard.type.end() ||
                        shard.type.find(b) == shard.type.end(),
                    "Rebalancer: paired uid not in its shard's live "
                    "set");
            shard.partner[a] = b;
            shard.partner[b] = a;
        }
        fleet.shards.push_back(std::move(shard));
    }

    RebalanceOutcome outcome;
    auto [phi, worstShard] = fleet.objective();
    outcome.objectiveBefore = phi;
    outcome.objectiveAfter = phi;
    outcome.worstShard = worstShard;

    while (outcome.moves.size() < budget_) {
        const auto [before, source] = fleet.objective();
        if (before <= 0.0)
            break; // nobody is suffering
        const auto worst = fleet.worstOf(fleet.shards[source]);
        panicIf(worst.second == nullptr,
                "Rebalancer: positive objective with no worst job");
        const LiveJob job = *worst.second;

        // Candidate objective for a target t: the source without the
        // victim, the victim's entry estimate at t, and every other
        // shard unchanged. The non-source worsts do not depend on t,
        // so they fold into one precomputed bound.
        const double sourceAfter =
            fleet.worstWithout(fleet.shards[source], job.uid);
        double othersWorst = 0.0;
        for (std::size_t s = 0; s < fleet.shards.size(); ++s)
            if (s != source)
                othersWorst = std::max(
                    othersWorst, fleet.worstOf(fleet.shards[s]).first);
        const double floor = std::max(sourceAfter, othersWorst);

        std::size_t target = fleet.shards.size();
        double bestPhi = before;
        for (std::size_t t = 0; t < fleet.shards.size(); ++t) {
            if (t == source || fleet.shards[t].room == 0)
                continue;
            const double candidate = std::max(
                floor, fleet.entryCost(fleet.shards[t], job.type));
            if (candidate < bestPhi) {
                bestPhi = candidate;
                target = t;
            }
        }
        if (target == fleet.shards.size())
            break; // no strictly improving move exists

        fleet.move(job.uid, source, target);
        MigrationMove moved;
        moved.uid = job.uid;
        moved.fromShard = source;
        moved.toShard = target;
        moved.objectiveBefore = before;
        moved.objectiveAfter = bestPhi;
        outcome.moves.push_back(moved);
    }

    const auto [finalPhi, finalWorst] = fleet.objective();
    outcome.objectiveAfter = finalPhi;
    outcome.worstShard = finalWorst;
    return outcome;
}

SparseMatrix
mergeProfiles(const std::vector<const SparseMatrix *> &profiles)
{
    fatalIf(profiles.empty(), "mergeProfiles: no shards");
    const std::size_t rows = profiles.front()->rows();
    const std::size_t cols = profiles.front()->cols();
    for (const SparseMatrix *matrix : profiles)
        fatalIf(matrix->rows() != rows || matrix->cols() != cols,
                "mergeProfiles: shard profile shapes differ");

    SparseMatrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) {
            double sum = 0.0;
            std::size_t count = 0;
            for (const SparseMatrix *matrix : profiles)
                if (matrix->known(r, c)) {
                    sum += matrix->at(r, c);
                    ++count;
                }
            if (count > 0)
                out.set(r, c, sum / static_cast<double>(count));
        }
    return out;
}

} // namespace cooper
