/**
 * @file
 * Deterministic arrival partitioner for the sharded online service.
 *
 * Job *types* are clustered once, at construction, with k-means over
 * their normalized (bandwidth, cache footprint, bandwidth
 * sensitivity, cache sensitivity) features — jobs with similar
 * contention behavior land in the same matching domain, so each
 * shard's predictor learns a coherent neighborhood. The raw
 * clustering is then balanced: types are assigned in id order to the
 * nearest centroid with remaining capacity ceil(n/k), so no shard
 * starts with more than its share of the catalog (one hot cluster
 * must not serialize the fleet).
 *
 * Every arrival of a type is routed to the type's shard; departures
 * follow the job wherever it currently lives through the uid map,
 * which cross-shard migration updates — a job migrated out of its
 * type's home shard still receives its departure in the right place.
 */

#ifndef COOPER_SHARD_ROUTER_HH
#define COOPER_SHARD_ROUTER_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "online/events.hh"
#include "workload/catalog.hh"

namespace cooper {

/**
 * Type -> shard partition plus the uid -> shard routing map.
 *
 * The effective shard count is min(requested, catalog size): more
 * shards than types would leave empty domains (and kmeans rejects
 * k > n points). Requesting zero shards is fatal. The partition is a
 * pure function of (catalog, shards, seed), so a restored run
 * recomputes exactly the table its checkpoint carries.
 */
class ShardRouter
{
  public:
    ShardRouter(const Catalog &catalog, std::size_t shards,
                std::uint64_t seed);

    /** Effective shard count (requested, clamped to the catalog). */
    std::size_t shards() const { return shards_; }

    /** Home shard of a job type; fatal outside the catalog. */
    std::size_t shardOfType(JobTypeId type) const;

    /** Catalog-indexed type -> shard table. */
    const std::vector<std::size_t> &typeAssignment() const
    {
        return typeShard_;
    }

    /**
     * Route one event. Arrivals go to their type's home shard and
     * are remembered; departures go wherever the uid lives now and
     * are forgotten. A departure for an unknown uid is fatal — the
     * trace was validated, so its arrival must have been routed.
     */
    std::size_t route(const ChurnEvent &event);

    /** Current shard of a routed uid; fatal when unknown. */
    std::size_t shardOfUid(JobUid uid) const;

    /** Point a migrated uid at its new home shard. */
    void recordMigration(JobUid uid, std::size_t shard);

    /** Uid map, ascending by uid (checkpointing). */
    std::vector<std::pair<JobUid, std::size_t>> uidSnapshot() const;

    /** Replace the uid map (checkpoint restore). */
    void restoreUids(
        const std::vector<std::pair<JobUid, std::size_t>> &uids);

  private:
    std::size_t shards_ = 1;
    std::vector<std::size_t> typeShard_;
    std::map<JobUid, std::size_t> uidShard_;
};

} // namespace cooper

#endif // COOPER_SHARD_ROUTER_HH
