/**
 * @file
 * Cluster-scale sharded online service.
 *
 * One flat OnlineDriver repairs an O(population^2) instance every
 * epoch; a cluster's worth of jobs cannot flow through it. The
 * ShardedDriver partitions arrivals into K matching domains with the
 * ShardRouter, steps all K domains through each epoch concurrently on
 * the shared ThreadPool, and then runs one cross-shard Rebalancer
 * pass per epoch that migrates the worst-off jobs between shards
 * under a migration budget (the egalitarian objective; see
 * rebalance.hh).
 *
 * Determinism contract, inherited and extended: a (trace, seed,
 * config) triple fully determines every pairing and counter at any
 * thread count AND any shard count's own replay. Each shard is a
 * complete OnlineDriver on its own root seed — shard s of K > 1 runs
 * on a substream of (seed, s); K = 1 keeps the root seed itself, so a
 * single-shard run reproduces the flat driver bit-for-bit (summary,
 * metrics, and checkpoint bytes — the differential suite in
 * tests/test_shard.cc holds the layer to this). No randomness crosses
 * the shard boundary: the rebalancer is deterministic, and shards
 * never share generator state.
 */

#ifndef COOPER_SHARD_SHARDED_DRIVER_HH
#define COOPER_SHARD_SHARDED_DRIVER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "online/driver.hh"
#include "shard/rebalance.hh"
#include "shard/router.hh"
#include "shard/sharded_state.hh"

namespace cooper {

/** What one fleet-wide epoch did. */
struct ShardEpochStats
{
    std::uint64_t epoch = 0;

    /** Epoch-boundary tick the fleet committed at. */
    Tick tick = 0;

    /** Live jobs across all shards after the epoch. */
    std::size_t population = 0;

    /** Cross-shard migrations applied at this boundary. */
    std::size_t migrations = 0;

    /** Egalitarian (worst-off-agent) objective around the rebalance
     *  pass, on predicted penalties. */
    double objectiveBefore = 0.0;
    double objectiveAfter = 0.0;

    /** Shard holding the worst-off job after the pass. */
    std::size_t worstShard = 0;
};

/** Everything one sharded run produced. */
struct ShardedReport
{
    std::string policy;
    std::uint64_t seed = 0;
    std::size_t shards = 1;
    std::size_t rebalanceBudget = 0;

    /** One full per-shard report, indexed by shard. */
    std::vector<OnlineReport> perShard;

    /** Fleet-wide per-epoch stats. */
    std::vector<ShardEpochStats> epochs;

    /** Lifetime fleet totals (across restores). */
    std::size_t totalCrossMigrations = 0;
    std::size_t totalRebalanceEpochs = 0; //!< epochs with >= 1 move

    double finalObjective = 0.0;
    std::size_t finalPopulation = 0;
};

/**
 * K OnlineDrivers in lockstep plus per-epoch cross-shard rebalancing.
 */
class ShardedDriver
{
  public:
    /** Writes one fleet checkpoint; false = write failed (counted,
     *  the run carries on). */
    using CheckpointSink = std::function<bool(const ShardedState &)>;

    /**
     * @param catalog Job catalog (shared by every shard).
     * @param model Ground-truth interference model.
     * @param config Framework settings; execution.online.shards picks
     *        the domain count (clamped to the catalog size) and
     *        execution.online.rebalanceBudgetPerEpoch bounds
     *        cross-shard moves.
     * @param seed Root seed; shard seeds derive from it.
     */
    ShardedDriver(const Catalog &catalog, const InterferenceModel &model,
                  FrameworkConfig config, std::uint64_t seed = 1);

    const FrameworkConfig &config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

    /** Effective shard count (requested, clamped to the catalog). */
    std::size_t shards() const { return drivers_.size(); }

    /** One shard's driver (tests and the CLI's inspection paths). */
    const OnlineDriver &shard(std::size_t index) const;

    const ShardRouter &router() const { return router_; }

    /** Fleet epochs completed. */
    std::uint64_t epoch() const { return epoch_; }

    /** Virtual-clock position (every shard agrees by construction). */
    Tick clockTick() const;

    /** Install a fault plan on every shard; must precede run(). */
    void setFaultPlan(const FaultPlan &plan);

    /** Install the periodic fleet checkpoint writer. */
    void setCheckpointSink(CheckpointSink sink);

    /**
     * Replay a trace to completion. On a restored driver, pass
     * `trace.suffix(clockTick())`; a trace starting before the clock
     * is fatal.
     */
    ShardedReport run(const ChurnTrace &trace);

    // -- Stepwise interface, mirroring OnlineDriver's. run() is
    // exactly beginReport(), then stepEpoch() until idle(), then
    // finalizeReport(); the net ServicePlane drives the fleet through
    // the same calls as events stream in over TCP, so a served trace
    // reproduces run() bit-for-bit.

    /** Report skeleton (policy, seed, shard skeletons) for a stepwise
     *  run. */
    ShardedReport beginReport() const;

    /** Play exactly one fleet epoch against `global` (route, step all
     *  shards, rebalance, checkpoint) and append its stats. */
    void stepEpoch(EventQueue &global, ShardedReport &report);

    /** Nothing left to do on any shard and no events pending. */
    bool idle(const EventQueue &global) const;

    /** Fill in the fleet totals and final-state fields. */
    void finalizeReport(ShardedReport &report) const;

    /** Checkpoint the fleet between epochs. */
    ShardedState snapshot() const;

    /** Resume from a checkpoint taken with the same seed/config/shard
     *  count; a shard-count or partition mismatch is fatal. */
    void restore(const ShardedState &state);

  private:
    void routeEpoch(EventQueue &global);
    void rebalance(ShardEpochStats &stats);
    void maybeCheckpoint();

    const Catalog *catalog_;
    FrameworkConfig config_;
    std::uint64_t seed_;

    ShardRouter router_;
    Rebalancer rebalancer_;
    std::vector<std::unique_ptr<OnlineDriver>> drivers_;
    std::vector<EventQueue> queues_;
    CheckpointSink sink_;

    std::uint64_t epoch_ = 0;
    std::size_t totalCrossMigrations_ = 0;
    std::size_t totalRebalanceEpochs_ = 0;
    double lastObjective_ = 0.0;
};

/**
 * Deterministic sharded run summary (schema cooper.sharded.v1).
 * Decision-path quantities only — no timings — so two replays of the
 * same (trace, seed, config) emit byte-identical files at any thread
 * count.
 */
void writeShardedSummary(std::ostream &os, const ShardedReport &report);

/** File wrapper; raises FatalError on I/O failure. */
void saveShardedSummary(const std::string &path,
                        const ShardedReport &report);

} // namespace cooper

#endif // COOPER_SHARD_SHARDED_DRIVER_HH
