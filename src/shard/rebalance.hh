/**
 * @file
 * Cross-shard rebalancing under the egalitarian objective.
 *
 * Sharding buys throughput at a price: a job can be stuck in a shard
 * where every co-runner hurts it, while a friendlier partner runs two
 * shards away. Following the side-effects colocation model of Pascual
 * & Rzadca, the rebalancer optimizes the *egalitarian* objective —
 * the predicted penalty of the worst-off agent across the whole fleet
 * — rather than the utilitarian sum: each epoch it migrates the
 * worst-off jobs out of their shard, under a migration budget, and
 * only when the move strictly lowers the fleet-wide worst-off cost.
 *
 * The planner is pure and deterministic: it sees per-shard population
 * views plus the merged probe profiles and returns a move list. It
 * never touches a driver, so its properties (budget respected, the
 * objective monotone non-increasing across passes) are directly
 * testable.
 */

#ifndef COOPER_SHARD_REBALANCE_HH
#define COOPER_SHARD_REBALANCE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "cf/sparse_matrix.hh"
#include "online/state.hh"

namespace cooper {

/** One shard's population as the rebalancer sees it. */
struct ShardView
{
    /** Live jobs in admission order. */
    std::vector<LiveJob> live;

    /** Uid-level pairs, first < second, ascending. */
    std::vector<std::pair<JobUid, JobUid>> pairs;

    /** Admission offers this shard accepts before backpressure;
     *  migrating more jobs in than this would lose them. */
    std::size_t admissionRoom = 0;
};

/** One planned cross-shard migration. */
struct MigrationMove
{
    JobUid uid = 0;
    std::size_t fromShard = 0;
    std::size_t toShard = 0;

    /** Egalitarian objective entering / leaving this pass. */
    double objectiveBefore = 0.0;
    double objectiveAfter = 0.0;
};

/** What one plan() call decided. */
struct RebalanceOutcome
{
    std::vector<MigrationMove> moves;

    /** Fleet-wide worst-off cost before any move. */
    double objectiveBefore = 0.0;

    /** Fleet-wide worst-off cost after all moves. */
    double objectiveAfter = 0.0;

    /** Shard holding the worst-off job after the last move. */
    std::size_t worstShard = 0;
};

/**
 * Greedy egalitarian planner.
 *
 * Each pass finds the worst-off matched job in the fleet (ties break
 * toward the lowest shard index, then the earliest live slot), prices
 * its relocation into every other shard with admission room, and
 * applies the best strictly-improving move. It stops at the migration
 * budget or when no move improves the objective — so the objective is
 * monotone non-increasing across passes by construction.
 *
 * Costs are predictions, not measurements: a matched job's cost is
 * the larger directed penalty of its pair under the merged profiles
 * (unknown cells fall back to the profile mean), and a candidate
 * shard's cost estimate is the friendliest co-runner it currently
 * hosts (an empty shard estimates zero). Migrants re-enter admission
 * unmatched, so the estimate only steers the choice; the target
 * shard's own policy decides the actual pairing next epoch.
 */
class Rebalancer
{
  public:
    /** @param budget Moves allowed per plan() call; 0 disables. */
    explicit Rebalancer(std::size_t budget) : budget_(budget) {}

    std::size_t budget() const { return budget_; }

    RebalanceOutcome plan(const std::vector<ShardView> &shards,
                          const SparseMatrix &profiles) const;

  private:
    std::size_t budget_;
};

/**
 * Merge per-shard profile matrices into one fleet view: each cell is
 * the mean of the shards that know it. All matrices must share one
 * shape. Deterministic — shards contribute in index order.
 */
SparseMatrix
mergeProfiles(const std::vector<const SparseMatrix *> &profiles);

} // namespace cooper

#endif // COOPER_SHARD_REBALANCE_HH
