#include "router.hh"

#include <algorithm>
#include <limits>

#include "stats/kmeans.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {

namespace {

// Substream purpose tag for the k-means++ seeding draws; keyed off
// the *root* seed so every shard count partitions the same catalog
// the same way under the same seed.
constexpr std::uint64_t kRouterStream = 0xD1;

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    double acc = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d)
        acc += (a[d] - b[d]) * (a[d] - b[d]);
    return acc;
}

} // namespace

ShardRouter::ShardRouter(const Catalog &catalog, std::size_t shards,
                         std::uint64_t seed)
{
    fatalIf(shards == 0, "ShardRouter: shard count must be positive");
    const std::size_t n = catalog.size();
    fatalIf(n == 0, "ShardRouter: empty catalog");
    shards_ = std::min(shards, n);
    typeShard_.assign(n, 0);
    if (shards_ == 1)
        return;

    std::vector<std::vector<double>> features;
    features.reserve(n);
    for (const JobType &job : catalog.jobs())
        features.push_back({job.gbps, job.cacheMB, job.bwSensitivity,
                            job.cacheSensitivity});
    const auto points = normalizeFeatures(features);

    Rng rng = Rng(seed).substream(kRouterStream);
    const KMeansResult clusters = kmeans(points, shards_, rng);

    // Balance the raw clustering: nearest centroid with remaining
    // capacity, types in id order. Duplicate feature vectors and
    // empty k-means clusters are both fine here — only the centers
    // matter, and the capacity bound guarantees every shard ends up
    // populated.
    const std::size_t cap = (n + shards_ - 1) / shards_;
    std::vector<std::size_t> load(shards_, 0);
    for (std::size_t t = 0; t < n; ++t) {
        std::size_t best = shards_;
        double bestDist = std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < shards_; ++s) {
            if (load[s] >= cap)
                continue;
            const double d2 =
                squaredDistance(points[t], clusters.centers[s]);
            if (d2 < bestDist) {
                bestDist = d2;
                best = s;
            }
        }
        panicIf(best == shards_,
                "ShardRouter: no shard has capacity left");
        typeShard_[t] = best;
        ++load[best];
    }
}

std::size_t
ShardRouter::shardOfType(JobTypeId type) const
{
    fatalIf(type >= typeShard_.size(), "ShardRouter: type ", type,
            " outside the catalog (", typeShard_.size(), " types)");
    return typeShard_[type];
}

std::size_t
ShardRouter::route(const ChurnEvent &event)
{
    if (event.kind == EventKind::Arrival) {
        const std::size_t shard = shardOfType(event.type);
        uidShard_[event.uid] = shard;
        return shard;
    }
    const auto it = uidShard_.find(event.uid);
    fatalIf(it == uidShard_.end(),
            "ShardRouter: departure for unrouted uid ", event.uid);
    const std::size_t shard = it->second;
    uidShard_.erase(it);
    return shard;
}

std::size_t
ShardRouter::shardOfUid(JobUid uid) const
{
    const auto it = uidShard_.find(uid);
    fatalIf(it == uidShard_.end(), "ShardRouter: unrouted uid ", uid);
    return it->second;
}

void
ShardRouter::recordMigration(JobUid uid, std::size_t shard)
{
    fatalIf(shard >= shards_, "ShardRouter: shard ", shard,
            " out of range (", shards_, " shards)");
    const auto it = uidShard_.find(uid);
    fatalIf(it == uidShard_.end(),
            "ShardRouter: migrating unrouted uid ", uid);
    it->second = shard;
}

std::vector<std::pair<JobUid, std::size_t>>
ShardRouter::uidSnapshot() const
{
    std::vector<std::pair<JobUid, std::size_t>> out;
    out.reserve(uidShard_.size());
    for (const auto &[uid, shard] : uidShard_)
        out.emplace_back(uid, shard); // map order: ascending by uid
    return out;
}

void
ShardRouter::restoreUids(
    const std::vector<std::pair<JobUid, std::size_t>> &uids)
{
    uidShard_.clear();
    for (const auto &[uid, shard] : uids) {
        fatalIf(shard >= shards_, "ShardRouter: restored uid ", uid,
                " maps to shard ", shard, " out of range (", shards_,
                " shards)");
        fatalIf(!uidShard_.emplace(uid, shard).second,
                "ShardRouter: restored uid ", uid, " repeated");
    }
}

} // namespace cooper
