/**
 * @file
 * Checkpointable state of the sharded online service.
 *
 * A sharded checkpoint is the router's routing state, the fleet-level
 * rebalance counters, and one full OnlineState per shard. The type ->
 * shard partition is recomputable from (catalog, shards, seed), but
 * it is carried anyway so a restore can refuse a checkpoint taken
 * under a different partition instead of silently misrouting
 * departures. Serialized as checkpoint format v3 (see io/serialize),
 * which embeds each shard's v2 block verbatim.
 */

#ifndef COOPER_SHARD_SHARDED_STATE_HH
#define COOPER_SHARD_SHARDED_STATE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "online/state.hh"

namespace cooper {

/** Snapshot of a ShardedDriver between epochs. */
struct ShardedState
{
    /** Root seed; restore refuses a mismatch. */
    std::uint64_t seed = 0;

    /** Fleet epochs completed; every shard block must agree. */
    std::uint64_t epoch = 0;

    /** Catalog-indexed type -> shard table the router was using. */
    std::vector<std::size_t> typeShard;

    /** uid -> current shard, ascending by uid. */
    std::vector<std::pair<JobUid, std::size_t>> uidShard;

    /** Lifetime rebalance counters. */
    std::size_t totalCrossMigrations = 0;
    std::size_t totalRebalanceEpochs = 0;

    /** Egalitarian objective after the last rebalance pass. */
    double lastObjective = 0.0;

    /** Per-shard driver state; the size is the shard count. */
    std::vector<OnlineState> perShard;
};

} // namespace cooper

#endif // COOPER_SHARD_SHARDED_STATE_HH
