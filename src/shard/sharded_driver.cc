#include "sharded_driver.hh"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

namespace {

// Substream purpose tag for deriving per-shard root seeds (the
// router's kRouterStream = 0xD1 is the only other shard-layer tag).
constexpr std::uint64_t kShardSeedStream = 0xD2;

/**
 * Per-shard root seed. One shard must reproduce the flat driver
 * bit-for-bit, so K = 1 keeps the root seed itself; K > 1 derives a
 * disjoint substream per shard index, so no two shards ever share
 * generator state and a shard's replay is independent of K only in
 * the K = 1 case (different K is a different partition, hence a
 * legitimately different run).
 */
std::uint64_t
shardSeed(std::uint64_t seed, std::size_t count, std::size_t shard)
{
    if (count == 1)
        return seed;
    Rng stream = Rng(seed).substream(kShardSeedStream).substream(shard);
    return stream();
}

std::string
jsonNum(double value)
{
    std::ostringstream os;
    os << std::setprecision(17) << value;
    return os.str();
}

} // namespace

ShardedDriver::ShardedDriver(const Catalog &catalog,
                             const InterferenceModel &model,
                             FrameworkConfig config, std::uint64_t seed)
    : catalog_(&catalog), config_(std::move(config)), seed_(seed),
      router_(catalog, config_.execution.online.shards, seed),
      rebalancer_(config_.execution.online.rebalanceBudgetPerEpoch)
{
    const std::size_t count = router_.shards();
    queues_.resize(count);
    drivers_.reserve(count);
    for (std::size_t s = 0; s < count; ++s)
        drivers_.push_back(std::make_unique<OnlineDriver>(
            catalog, model, config_, shardSeed(seed, count, s)));
}

const OnlineDriver &
ShardedDriver::shard(std::size_t index) const
{
    fatalIf(index >= drivers_.size(), "ShardedDriver: shard ", index,
            " out of range (", drivers_.size(), " shards)");
    return *drivers_[index];
}

Tick
ShardedDriver::clockTick() const
{
    return epoch_ * config_.execution.online.epochTicks;
}

void
ShardedDriver::setFaultPlan(const FaultPlan &plan)
{
    for (const auto &driver : drivers_)
        driver->setFaultPlan(plan);
}

void
ShardedDriver::setCheckpointSink(CheckpointSink sink)
{
    sink_ = std::move(sink);
}

bool
ShardedDriver::idle(const EventQueue &global) const
{
    if (!global.empty())
        return false;
    for (std::size_t s = 0; s < drivers_.size(); ++s)
        if (!drivers_[s]->idle(queues_[s]))
            return false;
    return true;
}

void
ShardedDriver::routeEpoch(EventQueue &global)
{
    const Tick boundary =
        (epoch_ + 1) * config_.execution.online.epochTicks;
    while (!global.empty() && global.nextTick() < boundary) {
        const ChurnEvent event = global.pop();
        queues_[router_.route(event)].push(event);
    }
}

void
ShardedDriver::rebalance(ShardEpochStats &stats)
{
    const TraceSpan span("shard.rebalance", "shard");

    std::vector<ShardView> views;
    views.reserve(drivers_.size());
    std::vector<const SparseMatrix *> profiles;
    profiles.reserve(drivers_.size());
    for (const auto &driver : drivers_) {
        ShardView view;
        view.live = driver->live();
        view.pairs = driver->pairsSnapshot();
        view.admissionRoom = driver->admissionRoom();
        views.push_back(std::move(view));
        profiles.push_back(&driver->profileRatings());
    }

    const RebalanceOutcome outcome =
        rebalancer_.plan(views, mergeProfiles(profiles));

    MetricsRegistry *metrics = obsMetrics();
    for (const MigrationMove &move : outcome.moves) {
        const auto job = drivers_[move.fromShard]->extractLive(move.uid);
        panicIf(!job.has_value(),
                "ShardedDriver: planned migrant is not live");
        // The planner never exceeds a target's admission room, so a
        // rejected migrant means the plan and the drivers disagree.
        panicIf(!drivers_[move.toShard]->acceptMigrant(*job),
                "ShardedDriver: migration target rejected a migrant "
                "inside its admission room");
        router_.recordMigration(move.uid, move.toShard);
        if (metrics != nullptr) {
            metrics
                ->counter("shard." + std::to_string(move.fromShard) +
                          ".migrations_out")
                .add(1);
            metrics
                ->counter("shard." + std::to_string(move.toShard) +
                          ".migrations_in")
                .add(1);
        }
    }

    totalCrossMigrations_ += outcome.moves.size();
    if (!outcome.moves.empty())
        ++totalRebalanceEpochs_;
    lastObjective_ = outcome.objectiveAfter;

    stats.migrations = outcome.moves.size();
    stats.objectiveBefore = outcome.objectiveBefore;
    stats.objectiveAfter = outcome.objectiveAfter;
    stats.worstShard = outcome.worstShard;
}

void
ShardedDriver::maybeCheckpoint()
{
    const OnlineConfig &online = config_.execution.online;
    if (online.checkpointEveryEpochs == 0 || !sink_ ||
        epoch_ % online.checkpointEveryEpochs != 0)
        return;
    const TraceSpan span("shard.checkpoint", "shard");
    if (!sink_(snapshot()))
        if (MetricsRegistry *metrics = obsMetrics())
            metrics->counter("shard.checkpoint_failures").add(1);
}

ShardedReport
ShardedDriver::run(const ChurnTrace &trace)
{
    // Honor the framework-level observability knob (passive when an
    // outer session, e.g. the CLI's, is already installed).
    const ObsScope obs_scope(config_.execution.obs);
    const TraceSpan span("shard.run", "shard");

    EventQueue global;
    global.push(trace);
    if (!global.empty() && global.nextTick() < clockTick())
        fatal("ShardedDriver::run: trace begins at tick ",
              global.nextTick(), ", before the clock (", clockTick(),
              "); resume with trace.suffix(clockTick())");

    ShardedReport report = beginReport();
    while (!idle(global))
        stepEpoch(global, report);
    finalizeReport(report);
    return report;
}

ShardedReport
ShardedDriver::beginReport() const
{
    ShardedReport report;
    report.policy = config_.policy;
    report.seed = seed_;
    report.shards = drivers_.size();
    report.rebalanceBudget =
        config_.execution.online.rebalanceBudgetPerEpoch;
    for (const auto &driver : drivers_)
        report.perShard.push_back(driver->beginReport());
    return report;
}

void
ShardedDriver::stepEpoch(EventQueue &global, ShardedReport &report)
{
    const std::size_t threads = config_.execution.threads;
    ShardEpochStats stats;
    stats.epoch = epoch_;
    stats.tick = (epoch_ + 1) * config_.execution.online.epochTicks;

    // 1. Route this epoch's events to their shards. Arrivals go
    // by type, departures by the uid's current home.
    routeEpoch(global);

    // 2. Step every shard through the epoch concurrently. Shards
    // share no mutable state — each writes only its own queue,
    // report slot, and driver — and every random draw comes from
    // the shard's own substreams, so the commit is bit-identical
    // at any thread count.
    {
        const TraceSpan epoch_span("shard.epoch", "shard");
        const ScopedTimer timer("shard.epoch_seconds");
        parallelFor(0, drivers_.size(), threads,
                    [&](std::size_t s) {
                        drivers_[s]->stepEpoch(queues_[s],
                                               report.perShard[s]);
                    });
    }
    for (const auto &driver : drivers_)
        panicIf(driver->epoch() != epoch_ + 1,
                "ShardedDriver: shard clocks diverged");
    ++epoch_;

    // 3. One egalitarian rebalance pass on the committed state;
    // migrants land in their target's admission queue at the new
    // clock tick, so they rejoin at the next epoch boundary.
    rebalance(stats);

    for (const auto &driver : drivers_)
        stats.population += driver->live().size();

    maybeCheckpoint();

    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("shard.epochs").add(1);
        metrics->counter("shard.migrations").add(stats.migrations);
        metrics->gauge("shard.objective").set(stats.objectiveAfter);
        metrics->gauge("shard.population")
            .set(static_cast<double>(stats.population));
        for (std::size_t s = 0; s < drivers_.size(); ++s)
            metrics
                ->gauge("shard." + std::to_string(s) + ".population")
                .set(static_cast<double>(drivers_[s]->live().size()));
    }

    report.epochs.push_back(stats);
}

void
ShardedDriver::finalizeReport(ShardedReport &report) const
{
    for (std::size_t s = 0; s < drivers_.size(); ++s)
        drivers_[s]->finalizeReport(report.perShard[s]);
    report.totalCrossMigrations = totalCrossMigrations_;
    report.totalRebalanceEpochs = totalRebalanceEpochs_;
    report.finalObjective = lastObjective_;
    report.finalPopulation = 0;
    for (const auto &driver : drivers_)
        report.finalPopulation += driver->live().size();
}

ShardedState
ShardedDriver::snapshot() const
{
    ShardedState state;
    state.seed = seed_;
    state.epoch = epoch_;
    state.typeShard = router_.typeAssignment();
    state.uidShard = router_.uidSnapshot();
    state.totalCrossMigrations = totalCrossMigrations_;
    state.totalRebalanceEpochs = totalRebalanceEpochs_;
    state.lastObjective = lastObjective_;
    state.perShard.reserve(drivers_.size());
    for (const auto &driver : drivers_)
        state.perShard.push_back(driver->snapshot());
    return state;
}

void
ShardedDriver::restore(const ShardedState &state)
{
    fatalIf(state.seed != seed_,
            "ShardedDriver::restore: checkpoint seed ", state.seed,
            " does not match the driver seed ", seed_);
    fatalIf(state.perShard.size() != drivers_.size(),
            "ShardedDriver::restore: checkpoint has ",
            state.perShard.size(), " shards, the driver has ",
            drivers_.size());
    fatalIf(state.typeShard != router_.typeAssignment(),
            "ShardedDriver::restore: checkpoint type partition does "
            "not match the router (different catalog, shard count, or "
            "seed)");
    for (std::size_t s = 0; s < drivers_.size(); ++s)
        fatalIf(state.perShard[s].epoch != state.epoch,
                "ShardedDriver::restore: shard ", s, " is at epoch ",
                state.perShard[s].epoch, ", fleet epoch is ",
                state.epoch);
    router_.restoreUids(state.uidShard);
    for (std::size_t s = 0; s < drivers_.size(); ++s)
        drivers_[s]->restore(state.perShard[s]);
    epoch_ = state.epoch;
    totalCrossMigrations_ = state.totalCrossMigrations;
    totalRebalanceEpochs_ = state.totalRebalanceEpochs;
    lastObjective_ = state.lastObjective;
}

void
writeShardedSummary(std::ostream &os, const ShardedReport &report)
{
    // Decision-path quantities only, like writeOnlineSummary: no
    // timings, no predictor diagnostics.
    os << "{\n";
    os << "  \"schema\": \"cooper.sharded.v1\",\n";
    os << "  \"policy\": \"" << report.policy << "\",\n";
    os << "  \"seed\": " << report.seed << ",\n";
    os << "  \"shards\": " << report.shards << ",\n";
    os << "  \"rebalance_budget\": " << report.rebalanceBudget << ",\n";
    os << "  \"epochs\": [";
    for (std::size_t i = 0; i < report.epochs.size(); ++i) {
        const ShardEpochStats &e = report.epochs[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"epoch\": " << e.epoch << ", \"tick\": " << e.tick
           << ", \"population\": " << e.population
           << ", \"migrations\": " << e.migrations
           << ", \"objective_before\": " << jsonNum(e.objectiveBefore)
           << ", \"objective_after\": " << jsonNum(e.objectiveAfter)
           << ", \"worst_shard\": " << e.worstShard << "}";
    }
    os << "\n  ],\n";
    os << "  \"per_shard\": [";
    for (std::size_t s = 0; s < report.perShard.size(); ++s) {
        const OnlineReport &shard = report.perShard[s];
        os << (s == 0 ? "\n" : ",\n");
        os << "    {\"shard\": " << s
           << ", \"arrivals\": " << shard.totalArrivals
           << ", \"departures\": " << shard.totalDepartures
           << ", \"admitted\": " << shard.totalAdmitted
           << ", \"rejected\": " << shard.totalRejected
           << ", \"probes\": " << shard.totalProbes
           << ", \"migrations\": " << shard.totalMigrations
           << ", \"final_population\": " << shard.finalPopulation
           << ", \"final_mean_penalty\": "
           << jsonNum(shard.finalMeanPenalty) << "}";
    }
    os << "\n  ],\n";
    std::size_t arrivals = 0, departures = 0, admitted = 0;
    std::size_t rejected = 0, probes = 0;
    for (const OnlineReport &shard : report.perShard) {
        arrivals += shard.totalArrivals;
        departures += shard.totalDepartures;
        admitted += shard.totalAdmitted;
        rejected += shard.totalRejected;
        probes += shard.totalProbes;
    }
    os << "  \"totals\": {\n";
    os << "    \"arrivals\": " << arrivals << ",\n";
    os << "    \"departures\": " << departures << ",\n";
    os << "    \"admitted\": " << admitted << ",\n";
    os << "    \"rejected\": " << rejected << ",\n";
    os << "    \"probes\": " << probes << ",\n";
    os << "    \"cross_migrations\": " << report.totalCrossMigrations
       << ",\n";
    os << "    \"rebalance_epochs\": " << report.totalRebalanceEpochs
       << "\n";
    os << "  },\n";
    os << "  \"final\": {\n";
    os << "    \"objective\": " << jsonNum(report.finalObjective)
       << ",\n";
    os << "    \"population\": " << report.finalPopulation << "\n";
    os << "  }\n";
    os << "}\n";
}

void
saveShardedSummary(const std::string &path, const ShardedReport &report)
{
    std::ofstream out(path);
    fatalIf(!out, "saveShardedSummary: cannot open ", path);
    writeShardedSummary(out, report);
    fatalIf(!out, "saveShardedSummary: write to ", path, " failed");
}

} // namespace cooper
