/**
 * @file
 * Blocking-coalition detection: bounded enumeration with pruning.
 *
 * A coalition S (2 <= |S| <= G) blocks a structure when every member
 * strictly gains by abandoning its current coalition and forming S —
 * the n-way generalization of a blocking pair, with the same alpha
 * semantics as blocking.cc (alpha = 0 demands strict mutual
 * improvement; alpha > 0 demands at least alpha from every member).
 *
 * Exhaustive enumeration is O(n^G); the scan bounds it two ways,
 * mirroring blocking.cc's mode-templated skeleton:
 *
 *  - *Anchor dedup + candidate truncation.* Each candidate coalition
 *    is enumerated exactly once from its minimum member (the anchor),
 *    growing along the anchor's preference-ranked candidate list,
 *    optionally truncated to the top `candidateCap` entries (0 keeps
 *    every candidate, which makes the G=2 scan exactly the pairwise
 *    blocking scan).
 *  - *Row-bound pruning.* An anchor whose best conceivable coalition
 *    (CoalitionPreferences::bestPossiblePenalty) cannot clear alpha is
 *    skipped whole, the analogue of blocking.cc's TableRowBound.
 *
 * Like the pairwise scans, only agents currently inside a coalition
 * participate: an agent running alone pays nothing and cannot be
 * improved upon. Collect/count/best parallelize over anchors with
 * chunk-order reduction, so results are bit-identical at any thread
 * count; first is serial in anchor-then-enumeration order.
 */

#ifndef COOPER_COALITION_BLOCKING_COALITION_HH
#define COOPER_COALITION_BLOCKING_COALITION_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "coalition/prefs.hh"
#include "coalition/structure.hh"

namespace cooper {

/** One coalition every member wants to deviate into. */
struct BlockingCoalition
{
    /** Members ascending; front() is the anchor. */
    std::vector<AgentId> members;

    /** Worst member's believed gain from deviating. */
    double minGain = 0.0;
};

/** Bounds and thresholds for one scan. */
struct CoalitionScanConfig
{
    /** Largest coalition considered (G >= 2). */
    std::size_t maxSize = 2;

    /** Minimum per-member gain (see blocking.cc semantics). */
    double alpha = 0.0;

    /** Per-anchor ranked-candidate truncation; 0 = no truncation. */
    std::size_t candidateCap = 0;

    /** Worker threads; 0 = hardware, 1 = serial. */
    std::size_t threads = 1;
};

/** Every blocking coalition, anchors ascending then enumeration
 *  order. */
std::vector<BlockingCoalition>
collectBlockingCoalitions(const CoalitionStructure &structure,
                          const CoalitionPreferences &prefs,
                          const CoalitionScanConfig &config);

/** Tally without materializing. */
std::size_t
countBlockingCoalitions(const CoalitionStructure &structure,
                        const CoalitionPreferences &prefs,
                        const CoalitionScanConfig &config);

/** First blocking coalition in deterministic scan order. */
std::optional<BlockingCoalition>
firstBlockingCoalition(const CoalitionStructure &structure,
                       const CoalitionPreferences &prefs,
                       const CoalitionScanConfig &config);

/** Largest-minimum-gain blocking coalition (ties: lexicographically
 *  smallest member list); the formation loop's deviation pick. */
std::optional<BlockingCoalition>
bestBlockingCoalition(const CoalitionStructure &structure,
                      const CoalitionPreferences &prefs,
                      const CoalitionScanConfig &config);

} // namespace cooper

#endif // COOPER_COALITION_BLOCKING_COALITION_HH
