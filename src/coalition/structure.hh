/**
 * @file
 * Coalition structures: partitions of agents into CMP-sharing groups.
 *
 * The matching layer's Matching pairs agents one-to-one; a
 * CoalitionStructure generalizes it to groups of up to G co-runners
 * per CMP. The canonical form (each coalition's members ascending,
 * coalitions ordered by their first member) makes structures directly
 * comparable, which the differential tests and the checkpoint format
 * both rely on.
 */

#ifndef COOPER_COALITION_STRUCTURE_HH
#define COOPER_COALITION_STRUCTURE_HH

#include <cstddef>
#include <vector>

#include "matching/matching.hh"

namespace cooper {

/** No coalition: the agent runs alone on its CMP. */
inline constexpr std::size_t kNoCoalition =
    static_cast<std::size_t>(-1);

/**
 * A partition of agents 0..n-1 into coalitions of co-located jobs.
 * Singleton coalitions are implicit: an agent in no listed coalition
 * runs alone.
 */
class CoalitionStructure
{
  public:
    CoalitionStructure() = default;

    /** @param agents Population size (agent ids are 0..agents-1). */
    explicit CoalitionStructure(std::size_t agents)
        : memberOf_(agents, kNoCoalition)
    {
    }

    std::size_t agents() const { return memberOf_.size(); }

    /** Coalitions of size >= 2, in canonical order after canonicalize(). */
    const std::vector<std::vector<AgentId>> &coalitions() const
    {
        return coalitions_;
    }

    /** Index into coalitions() for `a`, or kNoCoalition when alone. */
    std::size_t coalitionOf(AgentId a) const { return memberOf_[a]; }

    /** Co-members of `a` (empty when alone), ascending. */
    std::vector<AgentId> othersOf(AgentId a) const;

    /**
     * Add a coalition of >= 2 distinct, currently-alone agents.
     * Members are stored sorted ascending.
     */
    void addCoalition(std::vector<AgentId> members);

    /**
     * Remove `a` from its coalition (no-op when alone). A coalition
     * reduced to one member dissolves — its survivor runs alone.
     */
    void removeAgent(AgentId a);

    /**
     * Carve out a deviating coalition: every member leaves its current
     * coalition (abandoned co-members stay behind in their shrunken
     * coalition) and the members form a new one together.
     */
    void deviate(const std::vector<AgentId> &members);

    /**
     * Sort each coalition's members and order coalitions by first
     * member, dropping empty slots. Call before comparing or
     * serializing.
     */
    void canonicalize();

    /** Number of occupied CMPs: listed coalitions plus singletons. */
    std::size_t machines() const;

    /** True when every member id is valid, no agent appears twice,
     *  and every coalition has 2..maxSize members. */
    bool valid(std::size_t max_size) const;

    /** Lift a pairwise matching: every pair becomes a coalition. */
    static CoalitionStructure fromMatching(const Matching &matching);

    /**
     * Pack a pairwise matching into ceil(n/group_size) machines of
     * capacity group_size: pairs first-fit onto the emptiest machine
     * with two free slots (splitting a pair only when none has two),
     * then unmatched agents fill the remaining capacity. This is the
     * equal-capacity bridge from the pairwise policies to the n-way
     * setting: the formation uses it as a candidate seed and the
     * coalition bench as its SR/SMR baselines.
     */
    static CoalitionStructure packMatching(const Matching &matching,
                                           std::size_t group_size);

    bool operator==(const CoalitionStructure &other) const
    {
        return coalitions_ == other.coalitions_ &&
               memberOf_ == other.memberOf_;
    }

  private:
    std::vector<std::vector<AgentId>> coalitions_;
    std::vector<std::size_t> memberOf_;
};

} // namespace cooper

#endif // COOPER_COALITION_STRUCTURE_HH
