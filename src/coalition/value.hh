/**
 * @file
 * Coalition-value function over the multi-co-runner interference
 * model.
 *
 * The characteristic function of the colocation game prices a
 * coalition S by the total ground-truth degradation its members
 * inflict on each other when they share one CMP: v(S) = sum over
 * members of InterferenceModel::groupPenalty against the rest of S,
 * with v = 0 for singletons (running alone costs nothing). This is
 * the one shared route to multi-co-runner penalties — core/groups'
 * evaluation helpers and bench_ext_groups both go through it, so the
 * benchmarks cannot drift from the subsystem.
 */

#ifndef COOPER_COALITION_VALUE_HH
#define COOPER_COALITION_VALUE_HH

#include <span>
#include <vector>

#include "game/shapley.hh"
#include "sim/interference.hh"
#include "workload/catalog.hh"

namespace cooper {

/**
 * Ground-truth penalty of one member colocated with `others` on a
 * CMP. Zero when `others` is empty; the pair case equals the model's
 * pairwise penalty exactly.
 */
double coalitionMemberPenalty(const InterferenceModel &model,
                              JobTypeId self,
                              std::span<const JobTypeId> others);

/** Per-member penalties for a whole coalition, in member order. */
std::vector<double>
coalitionMemberPenalties(const InterferenceModel &model,
                         std::span<const JobTypeId> members);

/** Coalition value v(S): total penalty across members (>= 0). */
double coalitionValue(const InterferenceModel &model,
                      std::span<const JobTypeId> members);

/**
 * Mask-based characteristic function over up to 20 jobs, for the
 * Shapley samplers: bit i of the mask selects jobs[i]. Delegates to
 * the same member-penalty route as coalitionValue.
 */
CharacteristicFn coalitionCharacteristic(const InterferenceModel &model,
                                         std::vector<JobTypeId> jobs);

} // namespace cooper

#endif // COOPER_COALITION_VALUE_HH
