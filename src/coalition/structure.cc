#include "structure.hh"

#include <algorithm>

#include "util/error.hh"

namespace cooper {

std::vector<AgentId>
CoalitionStructure::othersOf(AgentId a) const
{
    std::vector<AgentId> out;
    const std::size_t g = memberOf_[a];
    if (g == kNoCoalition)
        return out;
    for (AgentId m : coalitions_[g])
        if (m != a)
            out.push_back(m);
    return out;
}

void
CoalitionStructure::addCoalition(std::vector<AgentId> members)
{
    fatalIf(members.size() < 2,
            "CoalitionStructure: a coalition needs at least 2 members");
    std::sort(members.begin(), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
        const AgentId m = members[i];
        fatalIf(m >= memberOf_.size(),
                "CoalitionStructure: member ", m, " out of range");
        fatalIf(i > 0 && members[i - 1] == m,
                "CoalitionStructure: duplicate member ", m);
        fatalIf(memberOf_[m] != kNoCoalition,
                "CoalitionStructure: agent ", m,
                " is already in a coalition");
    }
    for (AgentId m : members)
        memberOf_[m] = coalitions_.size();
    coalitions_.push_back(std::move(members));
}

void
CoalitionStructure::removeAgent(AgentId a)
{
    const std::size_t g = memberOf_[a];
    if (g == kNoCoalition)
        return;
    auto &group = coalitions_[g];
    group.erase(std::find(group.begin(), group.end(), a));
    memberOf_[a] = kNoCoalition;
    if (group.size() == 1) {
        memberOf_[group.front()] = kNoCoalition;
        group.clear(); // canonicalize() drops the empty slot
    }
}

void
CoalitionStructure::deviate(const std::vector<AgentId> &members)
{
    for (AgentId m : members)
        removeAgent(m);
    addCoalition(members);
}

void
CoalitionStructure::canonicalize()
{
    std::vector<std::vector<AgentId>> kept;
    kept.reserve(coalitions_.size());
    for (auto &group : coalitions_) {
        if (group.empty())
            continue;
        std::sort(group.begin(), group.end());
        kept.push_back(std::move(group));
    }
    std::sort(kept.begin(), kept.end());
    coalitions_ = std::move(kept);
    for (std::size_t g = 0; g < coalitions_.size(); ++g)
        for (AgentId m : coalitions_[g])
            memberOf_[m] = g;
}

std::size_t
CoalitionStructure::machines() const
{
    std::size_t grouped = 0;
    std::size_t nonempty = 0;
    for (const auto &group : coalitions_) {
        if (group.empty())
            continue;
        ++nonempty;
        grouped += group.size();
    }
    return nonempty + (memberOf_.size() - grouped);
}

bool
CoalitionStructure::valid(std::size_t max_size) const
{
    std::vector<std::uint8_t> seen(memberOf_.size(), 0);
    for (const auto &group : coalitions_) {
        if (group.empty())
            continue;
        if (group.size() < 2 || group.size() > max_size)
            return false;
        for (AgentId m : group) {
            if (m >= memberOf_.size() || seen[m])
                return false;
            seen[m] = 1;
        }
    }
    for (AgentId a = 0; a < memberOf_.size(); ++a) {
        const std::size_t g = memberOf_[a];
        if (g == kNoCoalition) {
            if (seen[a])
                return false;
            continue;
        }
        if (g >= coalitions_.size() ||
            std::find(coalitions_[g].begin(), coalitions_[g].end(),
                      a) == coalitions_[g].end())
            return false;
    }
    return true;
}

CoalitionStructure
CoalitionStructure::fromMatching(const Matching &matching)
{
    CoalitionStructure out(matching.size());
    for (const auto &[a, b] : matching.pairs())
        out.addCoalition({a, b});
    out.canonicalize();
    return out;
}

CoalitionStructure
CoalitionStructure::packMatching(const Matching &matching,
                                 std::size_t group_size)
{
    fatalIf(group_size < 2,
            "packMatching: group size must be at least 2");
    const std::size_t n = matching.size();
    const std::size_t machines = (n + group_size - 1) / group_size;
    std::vector<std::vector<AgentId>> slots(machines);

    // Emptiest machine with `need` free slots, or `machines` if none.
    const auto freest = [&](std::size_t need) {
        std::size_t best = machines;
        for (std::size_t m = 0; m < machines; ++m) {
            if (group_size - slots[m].size() < need)
                continue;
            if (best == machines ||
                slots[m].size() < slots[best].size())
                best = m;
        }
        return best;
    };

    std::vector<AgentId> singles;
    for (const auto &[a, b] : matching.pairs()) {
        const std::size_t m = freest(2);
        if (m == machines) {
            singles.push_back(a);
            singles.push_back(b);
            continue;
        }
        slots[m].push_back(a);
        slots[m].push_back(b);
    }
    for (AgentId a = 0; a < n; ++a)
        if (!matching.isMatched(a))
            singles.push_back(a);
    for (const AgentId a : singles) {
        const std::size_t m = freest(1);
        panicIf(m == machines,
                "packMatching: capacity arithmetic violated");
        slots[m].push_back(a);
    }

    CoalitionStructure out(n);
    for (auto &machine : slots)
        if (machine.size() >= 2)
            out.addCoalition(std::move(machine));
    out.canonicalize();
    return out;
}

} // namespace cooper
