/**
 * @file
 * Agent preferences over coalitions, extending PreferenceProfile
 * beyond pairs.
 *
 * Agents only ever observe pairwise (believed) penalties, so the
 * believed cost of a coalition is the additive extension: an agent
 * charges a candidate coalition the sum of its pairwise believed
 * disutilities against every co-member. For a two-member coalition
 * this is exactly the pairwise disutility, so coalition preferences
 * restricted to pairs reproduce the PreferenceProfile ranking the
 * stable matchers consume — the profile is kept and exposed for the
 * G=2 path. The quality of the additive approximation against the
 * model's true groupPenalty is part of what bench_coalition measures.
 */

#ifndef COOPER_COALITION_PREFS_HH
#define COOPER_COALITION_PREFS_HH

#include <span>
#include <vector>

#include "matching/disutility.hh"
#include "matching/preferences.hh"

namespace cooper {

/**
 * Believed-cost oracle over coalitions, built on a pairwise
 * DisutilityTable (which must outlive this object).
 */
class CoalitionPreferences
{
  public:
    /** @param believed Pairwise believed disutilities, n x n. */
    explicit CoalitionPreferences(const DisutilityTable &believed);

    std::size_t agents() const { return believed_->agents(); }

    /** Believed cost to `self` of sharing a CMP with `others`
     *  (zero for an empty set; pairwise entry for one co-member). */
    double believedPenalty(AgentId self,
                           std::span<const AgentId> others) const;

    /** Does `self` strictly prefer coalition co-members `a` over `b`? */
    bool prefers(AgentId self, std::span<const AgentId> a,
                 std::span<const AgentId> b) const
    {
        return believedPenalty(self, a) < believedPenalty(self, b);
    }

    /**
     * `self`'s candidate co-runners ascending by pairwise believed
     * disutility (id breaks exact ties), truncated to `limit` (0 = no
     * truncation). The bounded blocking-coalition scan grows
     * candidate coalitions along this list.
     */
    std::vector<AgentId> rankedCandidates(AgentId self,
                                          std::size_t limit) const;

    /** Pairwise restriction as the matchers' PreferenceProfile. */
    const PreferenceProfile &pairProfile() const;

    /**
     * Sound lower bound on the believed cost of any coalition of up
     * to max_size members containing `self`: the additive sum of
     * k <= max_size - 1 row entries is at least rowMin when rowMin is
     * non-negative, and at least (max_size - 1) * rowMin when noisy
     * measurements pushed it below zero.
     */
    double bestPossiblePenalty(AgentId self, std::size_t max_size) const;

  private:
    const DisutilityTable *believed_;
    mutable PreferenceProfile profile_;
    mutable bool profileBuilt_ = false;
};

} // namespace cooper

#endif // COOPER_COALITION_PREFS_HH
