#include "formation.hh"

#include <algorithm>

#include "coalition/value.hh"
#include "game/shapley.hh"
#include "matching/stable_roommates.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

namespace {

// Substream purposes, disjoint from the online driver's 0xA* and the
// shard layer's 0xD* tags.
constexpr std::uint64_t kSeedStream = 0xC1;
constexpr std::uint64_t kShapleyStream = 0xC2;

/**
 * Greedy capacity fill: unassigned agents, in `order`, spread over up
 * to `machines` CMPs and then join the non-full machine minimizing
 * the additive believed-cost increase (both directions, since joining
 * hurts the incumbents too). Ties break toward the lowest machine.
 */
void
greedyFill(CoalitionStructure &structure,
           const std::vector<AgentId> &order,
           const DisutilityTable &believed, std::size_t group_size,
           std::size_t machines)
{
    // Machines under construction: existing coalitions first, then
    // one per already-alone agent; singles merge by joining them.
    std::vector<std::vector<AgentId>> slots;
    for (const auto &group : structure.coalitions())
        if (!group.empty())
            slots.push_back(group);

    for (AgentId a : order) {
        double best = 0.0;
        std::size_t best_slot = slots.size();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].size() >= group_size)
                continue;
            double delta = 0.0;
            for (AgentId m : slots[s])
                delta += believed(a, m) + believed(m, a);
            if (best_slot == slots.size() || delta < best) {
                best = delta;
                best_slot = s;
            }
        }
        // Open a new machine while capacity allows and nothing
        // cheaper is on offer (an empty machine costs nothing).
        if (slots.size() < machines &&
            (best_slot == slots.size() || best > 0.0)) {
            slots.push_back({a});
            continue;
        }
        panicIf(best_slot == slots.size(),
                "formCoalitions: no machine has a free slot");
        slots[best_slot].push_back(a);
    }

    CoalitionStructure filled(structure.agents());
    for (auto &slot : slots)
        if (slot.size() >= 2)
            filled.addCoalition(std::move(slot));
    filled.canonicalize();
    structure = std::move(filled);
}

/** Agents not yet in any coalition, ascending. */
std::vector<AgentId>
unassignedAgents(const CoalitionStructure &structure)
{
    std::vector<AgentId> out;
    for (AgentId a = 0; a < structure.agents(); ++a)
        if (structure.coalitionOf(a) == kNoCoalition)
            out.push_back(a);
    return out;
}

/** Listed coalitions that still have members. */
std::size_t
occupiedCoalitions(const CoalitionStructure &structure)
{
    std::size_t count = 0;
    for (const auto &group : structure.coalitions())
        if (!group.empty())
            ++count;
    return count;
}

/**
 * Capacity repair after a deviation. A deviation both strands
 * remnants (each of which would occupy a CMP of its own — with
 * non-negative penalties a fully fragmented structure is trivially
 * core-stable) and claims a machine for the new coalition, so the
 * structure can exceed the ceil(n/G) budget. Repair dissolves the
 * smallest coalition (ties toward the lowest first member), never the
 * protected just-deviated one, until the listed coalitions fit the
 * budget, then greedily re-packs every loose agent (ascending, so no
 * RNG and no thread dependence). Total capacity machines*G >= n
 * guarantees the fill succeeds once the coalition count fits.
 */
void
repairCapacity(CoalitionStructure &structure,
               const DisutilityTable &believed, std::size_t group_size,
               std::size_t machines, std::size_t keep)
{
    while (occupiedCoalitions(structure) > machines) {
        const auto &groups = structure.coalitions();
        std::size_t victim = groups.size();
        for (std::size_t c = 0; c < groups.size(); ++c) {
            if (groups[c].empty() || c == keep)
                continue;
            if (victim == groups.size() ||
                groups[c].size() < groups[victim].size() ||
                (groups[c].size() == groups[victim].size() &&
                 groups[c].front() < groups[victim].front()))
                victim = c;
        }
        panicIf(victim == groups.size(),
                "repairCapacity: nothing left to dissolve");
        const std::vector<AgentId> members = groups[victim];
        for (const AgentId m : members)
            structure.removeAgent(m);
    }
    const std::vector<AgentId> loose = unassignedAgents(structure);
    if (!loose.empty())
        greedyFill(structure, loose, believed, group_size, machines);
}

} // namespace

FormationResult
formCoalitions(const std::vector<JobTypeId> &types,
               const DisutilityTable &believed,
               const InterferenceModel &model,
               const FormationConfig &config, const Rng &rng,
               const CoalitionStructure *warm_start)
{
    const TraceSpan span("coalition.formation", "coalition");
    const ScopedTimer timer("coalition.formation_seconds");
    const std::size_t n = types.size();
    const std::size_t G = config.groupSize;
    fatalIf(G < 2 || G > 20,
            "formCoalitions: group size must be in [2, 20], got ", G);
    fatalIf(believed.agents() != n || believed.candidates() != n,
            "formCoalitions: believed table is ", believed.agents(),
            "x", believed.candidates(), ", population is ", n);
    for (JobTypeId t : types)
        fatalIf(t >= model.catalog().size(),
                "formCoalitions: unknown job type ", t);

    const std::size_t machines = n == 0 ? 0 : (n + G - 1) / G;
    const CoalitionPreferences prefs(believed);

    FormationResult result;
    result.structure = CoalitionStructure(n);

    // 1. Seed.
    if (warm_start != nullptr) {
        fatalIf(warm_start->agents() != n,
                "formCoalitions: warm start covers ",
                warm_start->agents(), " agents, population is ", n);
        fatalIf(!warm_start->valid(G),
                "formCoalitions: warm start is not a valid partition "
                "into coalitions of <= ",
                G);
        result.structure = *warm_start;
        result.structure.canonicalize();
    }
    const CoalitionScanConfig scan{G, config.alpha,
                                   config.candidateCap,
                                   config.threads};
    const std::vector<AgentId> unassigned =
        unassignedAgents(result.structure);
    if (unassigned.size() >= 2) {
        if (G == 2 && unassigned.size() == n) {
            // Pairs seed from the adapted stable matcher: a perfectly
            // stable roommates solution has no blocking pair, so the
            // core search below terminates immediately on it.
            const RoommatesResult sr =
                adaptedRoommates(prefs.pairProfile(), believed);
            result.structure =
                CoalitionStructure::fromMatching(sr.matching);
        } else if (unassigned.size() == n) {
            // Cold n-way seed: the better (fewer blocking coalitions)
            // of the shuffled greedy fill and the adapted-roommates
            // pairing packed at equal capacity. Seeding with packed
            // pairs as a candidate makes the formation dominate the
            // packed pairwise baseline by construction — the search
            // below only ever improves on the seed.
            std::vector<AgentId> order = unassigned;
            Rng seed_rng = rng.substream(kSeedStream);
            seed_rng.shuffle(order);
            CoalitionStructure greedy(n);
            greedyFill(greedy, order, believed, G, machines);
            const RoommatesResult sr =
                adaptedRoommates(prefs.pairProfile(), believed);
            CoalitionStructure packed =
                CoalitionStructure::packMatching(sr.matching, G);
            const std::size_t greedy_blocking =
                countBlockingCoalitions(greedy, prefs, scan);
            const std::size_t packed_blocking =
                countBlockingCoalitions(packed, prefs, scan);
            result.structure = packed_blocking <= greedy_blocking
                                   ? std::move(packed)
                                   : std::move(greedy);
        } else {
            std::vector<AgentId> order = unassigned;
            Rng seed_rng = rng.substream(kSeedStream);
            seed_rng.shuffle(order);
            greedyFill(result.structure, order, believed, G, machines);
        }
    }
    // A warm start can arrive over budget — groups formed under a
    // larger population shrink to pairs as jobs depart, leaving more
    // groups than ceil(n/G) machines — or strand agents outside any
    // group (machines() counts those singletons, the occupied-
    // coalition count does not). Repair before scanning: dissolve
    // surplus groups if any, then pack every loose agent.
    if (result.structure.machines() > machines)
        repairCapacity(result.structure, believed, G, machines,
                       result.structure.coalitions().size());

    // 2. Core-seeking search. Each round applies the best myopic
    // deviation and then repairs capacity, so every structure the
    // search visits fits the ceil(n/G) machine budget; because the
    // repack perturbs the remnants' utilities there is no potential
    // function, so the search keeps the best (fewest blocking
    // coalitions) feasible structure seen and returns that.
    result.blockingBefore =
        countBlockingCoalitions(result.structure, prefs, scan);
    CoalitionStructure best_seen = result.structure;
    std::size_t best_left = result.blockingBefore;
    std::size_t left = result.blockingBefore;
    while (left > 0 && result.rounds < config.maxRounds) {
        const auto best =
            bestBlockingCoalition(result.structure, prefs, scan);
        if (!best)
            break;
        result.structure.deviate(best->members);
        repairCapacity(result.structure, believed, G, machines,
                       result.structure.coalitionOf(
                           best->members.front()));
        ++result.rounds;
        left = countBlockingCoalitions(result.structure, prefs, scan);
        if (left < best_left) {
            best_seen = result.structure;
            best_left = left;
        }
    }
    result.structure = std::move(best_seen);
    result.structure.canonicalize();
    result.blockingAfter = best_left;
    result.coreStable = best_left == 0;
    panicIf(result.structure.machines() > machines,
            "formCoalitions: structure exceeds the machine budget"
            " (machines()=", result.structure.machines(),
            " budget=", machines, " occupied=",
            occupiedCoalitions(result.structure), " n=", n,
            " G=", G, ")");

    // 3. Penalties and sampled-Shapley attribution.
    result.believedPenalties.assign(n, 0.0);
    result.truePenalties.assign(n, 0.0);
    if (config.shapleySamples > 0)
        result.shapleyShares.assign(n, 0.0);
    for (const auto &group : result.structure.coalitions()) {
        std::vector<JobTypeId> member_types;
        member_types.reserve(group.size());
        for (AgentId m : group)
            member_types.push_back(types[m]);
        const std::vector<double> true_members =
            coalitionMemberPenalties(model, member_types);
        for (std::size_t i = 0; i < group.size(); ++i) {
            const AgentId m = group[i];
            result.truePenalties[m] = true_members[i];
            result.believedPenalties[m] = prefs.believedPenalty(
                m, result.structure.othersOf(m));
        }
        if (config.shapleySamples > 0) {
            // One substream per coalition, keyed by its anchor: the
            // estimate is independent of every other coalition and of
            // the thread count.
            Rng shapley_rng = rng.substream(kShapleyStream)
                                  .substream(group.front());
            const auto v =
                coalitionCharacteristic(model, member_types);
            const std::vector<double> shares =
                shapleySampled(group.size(), v, config.shapleySamples,
                               shapley_rng, config.threads);
            for (std::size_t i = 0; i < group.size(); ++i)
                result.shapleyShares[group[i]] = shares[i];
        }
    }

    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("coalition.formations").add(1);
        metrics->counter("coalition.deviations").add(result.rounds);
        metrics->gauge("coalition.blocking_after")
            .set(static_cast<double>(result.blockingAfter));
    }
    return result;
}

} // namespace cooper
