#include "blocking_coalition.hh"

#include <algorithm>
#include <iterator>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

namespace {

/** Believed cost each agent pays in its current coalition (zero when
 *  alone). */
std::vector<double>
currentPenalties(const CoalitionStructure &structure,
                 const CoalitionPreferences &prefs, std::size_t threads)
{
    const std::size_t n = structure.agents();
    std::vector<double> current(n, 0.0);
    parallelFor(0, n, threads, [&](std::size_t a) {
        if (structure.coalitionOf(a) != kNoCoalition) {
            const auto others = structure.othersOf(a);
            current[a] = prefs.believedPenalty(a, others);
        }
    });
    return current;
}

/** Does the worst member's gain clear the alpha threshold? */
inline bool
clears(double min_gain, double alpha)
{
    return alpha > 0.0 ? min_gain >= alpha : min_gain > 0.0;
}

void
checkConfig(const CoalitionScanConfig &config)
{
    fatalIf(config.maxSize < 2,
            "blocking-coalition scan: maxSize must be >= 2, got ",
            config.maxSize);
    fatalIf(config.alpha < 0.0,
            "blocking-coalition scan: negative alpha ", config.alpha);
}

/**
 * Enumerate candidate coalitions anchored at `anchor` in preference
 * order and hand each blocking one to `found`; `found` returns true
 * to stop this anchor's enumeration early (first mode). Returns the
 * number of candidate coalitions evaluated.
 */
template <typename Found>
std::size_t
scanAnchor(AgentId anchor, const CoalitionStructure &structure,
           const CoalitionPreferences &prefs,
           const CoalitionScanConfig &config,
           const std::vector<double> &current, Found &&found)
{
    // Anchor dedup: only co-members above the anchor, so every
    // coalition is seen exactly once, from its minimum member.
    std::vector<AgentId> candidates;
    for (AgentId j : prefs.rankedCandidates(anchor, 0)) {
        if (j <= anchor || structure.coalitionOf(j) == kNoCoalition)
            continue;
        candidates.push_back(j);
        if (config.candidateCap != 0 &&
            candidates.size() == config.candidateCap)
            break;
    }

    std::size_t evaluated = 0;
    std::vector<AgentId> chosen;
    std::vector<AgentId> members;
    bool stop = false;

    // Depth-first subset growth along the ranked candidate list; each
    // node is one candidate coalition {anchor} + chosen.
    auto grow = [&](auto &&self, std::size_t next) -> void {
        if (stop)
            return;
        if (!chosen.empty()) {
            ++evaluated;
            members.clear();
            members.push_back(anchor);
            members.insert(members.end(), chosen.begin(),
                           chosen.end());
            std::sort(members.begin(), members.end());

            double min_gain = 0.0;
            bool first = true;
            std::vector<AgentId> others;
            others.reserve(members.size() - 1);
            for (std::size_t i = 0; i < members.size(); ++i) {
                others.clear();
                for (std::size_t j = 0; j < members.size(); ++j)
                    if (j != i)
                        others.push_back(members[j]);
                const double gain =
                    current[members[i]] -
                    prefs.believedPenalty(members[i], others);
                if (first || gain < min_gain)
                    min_gain = gain;
                first = false;
            }
            if (clears(min_gain, config.alpha) &&
                found(BlockingCoalition{members, min_gain})) {
                stop = true;
                return;
            }
        }
        if (chosen.size() + 1 >= config.maxSize)
            return;
        for (std::size_t c = next; c < candidates.size(); ++c) {
            chosen.push_back(candidates[c]);
            self(self, c + 1);
            chosen.pop_back();
            if (stop)
                return;
        }
    };
    grow(grow, 0);
    return evaluated;
}

/** Can any coalition of up to maxSize members make the anchor clear
 *  alpha? The analogue of blocking.cc's TableRowBound. */
inline bool
anchorCanBlock(AgentId anchor, double current_a,
               const CoalitionPreferences &prefs,
               const CoalitionScanConfig &config)
{
    const double best_gain =
        current_a - prefs.bestPossiblePenalty(anchor, config.maxSize);
    return config.alpha > 0.0 ? best_gain >= config.alpha
                              : best_gain > 0.0;
}

void
recordScan(std::size_t candidates, std::size_t found)
{
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("coalition.blocking_scans").add(1);
        metrics->counter("coalition.blocking_candidates").add(candidates);
        metrics->counter("coalition.blocking_found").add(found);
    }
}

constexpr std::size_t kGrain = 8;

} // namespace

std::vector<BlockingCoalition>
collectBlockingCoalitions(const CoalitionStructure &structure,
                          const CoalitionPreferences &prefs,
                          const CoalitionScanConfig &config)
{
    checkConfig(config);
    const TraceSpan span("coalition.blocking_scan", "coalition");
    const ScopedTimer timer("coalition.blocking_seconds");
    const std::size_t n = structure.agents();
    const std::vector<double> current =
        currentPenalties(structure, prefs, config.threads);

    struct Part
    {
        std::vector<BlockingCoalition> found;
        std::size_t evaluated = 0;
    };
    // Anchor chunks concatenated in chunk order: the output matches
    // the serial anchor-ascending scan exactly.
    Part all = parallelReduce(
        std::size_t(0), n, config.threads, kGrain, Part{},
        [&](std::size_t begin, std::size_t end) {
            Part local;
            for (AgentId a = begin; a < end; ++a) {
                if (structure.coalitionOf(a) == kNoCoalition)
                    continue;
                if (!anchorCanBlock(a, current[a], prefs, config))
                    continue;
                local.evaluated += scanAnchor(
                    a, structure, prefs, config, current,
                    [&](BlockingCoalition coalition) {
                        local.found.push_back(std::move(coalition));
                        return false;
                    });
            }
            return local;
        },
        [](Part &acc, Part &&part) {
            acc.evaluated += part.evaluated;
            acc.found.insert(acc.found.end(),
                             std::make_move_iterator(part.found.begin()),
                             std::make_move_iterator(part.found.end()));
        });
    recordScan(all.evaluated, all.found.size());
    return std::move(all.found);
}

std::size_t
countBlockingCoalitions(const CoalitionStructure &structure,
                        const CoalitionPreferences &prefs,
                        const CoalitionScanConfig &config)
{
    checkConfig(config);
    const TraceSpan span("coalition.blocking_scan", "coalition");
    const ScopedTimer timer("coalition.blocking_seconds");
    const std::size_t n = structure.agents();
    const std::vector<double> current =
        currentPenalties(structure, prefs, config.threads);

    struct Part
    {
        std::size_t found = 0;
        std::size_t evaluated = 0;
    };
    Part all = parallelReduce(
        std::size_t(0), n, config.threads, kGrain, Part{},
        [&](std::size_t begin, std::size_t end) {
            Part local;
            for (AgentId a = begin; a < end; ++a) {
                if (structure.coalitionOf(a) == kNoCoalition)
                    continue;
                if (!anchorCanBlock(a, current[a], prefs, config))
                    continue;
                local.evaluated += scanAnchor(
                    a, structure, prefs, config, current,
                    [&](const BlockingCoalition &) {
                        ++local.found;
                        return false;
                    });
            }
            return local;
        },
        [](Part &acc, Part &&part) {
            acc.found += part.found;
            acc.evaluated += part.evaluated;
        });
    recordScan(all.evaluated, all.found);
    return all.found;
}

std::optional<BlockingCoalition>
firstBlockingCoalition(const CoalitionStructure &structure,
                       const CoalitionPreferences &prefs,
                       const CoalitionScanConfig &config)
{
    checkConfig(config);
    const TraceSpan span("coalition.blocking_scan", "coalition");
    const std::size_t n = structure.agents();
    const std::vector<double> current =
        currentPenalties(structure, prefs, /*threads=*/1);

    std::optional<BlockingCoalition> first;
    std::size_t evaluated = 0;
    for (AgentId a = 0; a < n && !first; ++a) {
        if (structure.coalitionOf(a) == kNoCoalition)
            continue;
        if (!anchorCanBlock(a, current[a], prefs, config))
            continue;
        evaluated += scanAnchor(a, structure, prefs, config, current,
                                [&](BlockingCoalition coalition) {
                                    first = std::move(coalition);
                                    return true;
                                });
    }
    recordScan(evaluated, first ? 1 : 0);
    return first;
}

std::optional<BlockingCoalition>
bestBlockingCoalition(const CoalitionStructure &structure,
                      const CoalitionPreferences &prefs,
                      const CoalitionScanConfig &config)
{
    checkConfig(config);
    const TraceSpan span("coalition.blocking_scan", "coalition");
    const ScopedTimer timer("coalition.blocking_seconds");
    const std::size_t n = structure.agents();
    const std::vector<double> current =
        currentPenalties(structure, prefs, config.threads);

    // A flagged value instead of std::optional in the accumulator:
    // gcc 12 reports spurious maybe-uninitialized warnings on moving
    // an optional's payload through parallelReduce's join.
    struct Part
    {
        BlockingCoalition best;
        bool hasBest = false;
        std::size_t evaluated = 0;
        std::size_t found = 0;
    };
    const auto better = [](const BlockingCoalition &a,
                           const BlockingCoalition &b) {
        if (a.minGain != b.minGain)
            return a.minGain > b.minGain;
        return a.members < b.members;
    };
    Part all = parallelReduce(
        std::size_t(0), n, config.threads, kGrain, Part{},
        [&](std::size_t begin, std::size_t end) {
            Part local;
            for (AgentId a = begin; a < end; ++a) {
                if (structure.coalitionOf(a) == kNoCoalition)
                    continue;
                if (!anchorCanBlock(a, current[a], prefs, config))
                    continue;
                local.evaluated += scanAnchor(
                    a, structure, prefs, config, current,
                    [&](BlockingCoalition coalition) {
                        ++local.found;
                        if (!local.hasBest ||
                            better(coalition, local.best)) {
                            local.best = std::move(coalition);
                            local.hasBest = true;
                        }
                        return false;
                    });
            }
            return local;
        },
        [&](Part &acc, Part &&part) {
            acc.evaluated += part.evaluated;
            acc.found += part.found;
            if (part.hasBest &&
                (!acc.hasBest || better(part.best, acc.best))) {
                acc.best = std::move(part.best);
                acc.hasBest = true;
            }
        });
    recordScan(all.evaluated, all.found);
    if (!all.hasBest)
        return std::nullopt;
    return std::move(all.best);
}

} // namespace cooper
