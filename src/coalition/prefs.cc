#include "prefs.hh"

#include <algorithm>

#include "util/error.hh"

namespace cooper {

CoalitionPreferences::CoalitionPreferences(
    const DisutilityTable &believed)
    : believed_(&believed)
{
    fatalIf(believed.agents() != believed.candidates(),
            "CoalitionPreferences: believed table must be square, got ",
            believed.agents(), "x", believed.candidates());
}

double
CoalitionPreferences::believedPenalty(
    AgentId self, std::span<const AgentId> others) const
{
    double total = 0.0;
    for (AgentId other : others)
        total += (*believed_)(self, other);
    return total;
}

std::vector<AgentId>
CoalitionPreferences::rankedCandidates(AgentId self,
                                       std::size_t limit) const
{
    const std::size_t n = agents();
    std::vector<AgentId> order;
    order.reserve(n - 1);
    for (AgentId j = 0; j < n; ++j)
        if (j != self)
            order.push_back(j);
    std::sort(order.begin(), order.end(), [&](AgentId a, AgentId b) {
        const double da = (*believed_)(self, a);
        const double db = (*believed_)(self, b);
        return da != db ? da < db : a < b;
    });
    if (limit != 0 && order.size() > limit)
        order.resize(limit);
    return order;
}

const PreferenceProfile &
CoalitionPreferences::pairProfile() const
{
    if (!profileBuilt_) {
        profile_ =
            PreferenceProfile::fromTable(*believed_, /*exclude_self=*/true);
        profileBuilt_ = true;
    }
    return profile_;
}

double
CoalitionPreferences::bestPossiblePenalty(AgentId self,
                                          std::size_t max_size) const
{
    const double row_min = believed_->rowMin(self);
    if (row_min >= 0.0)
        return row_min;
    return static_cast<double>(max_size - 1) * row_min;
}

} // namespace cooper
