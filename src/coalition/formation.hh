/**
 * @file
 * Deterministic greedy core-seeking coalition formation.
 *
 * Forms capacity-capped coalitions (<= G jobs per CMP) from pairwise
 * believed penalties, then drives the structure toward the core by
 * repeatedly applying the best blocking coalition the bounded scan
 * can find — the agent-based core-membership procedure of
 * Vernon-Bido & Collins, specialized to the colocation game:
 *
 *  1. *Seed.* G = 2 seeds with Cooper's adapted stable roommates, so
 *     wherever Irving finds a perfectly stable matching the seed is
 *     already core-stable and the search is a no-op. G >= 3 takes the
 *     better of two cold seeds: a greedy fill (agents arrive in a
 *     substream-keyed random order, spread over ceil(n/G) machines,
 *     each joining the non-full machine that minimizes the additive
 *     believed-cost increase) and the adapted-roommates pairing
 *     packed at equal capacity — so the result never has more
 *     blocking coalitions than the packed pairwise baseline. A
 *     warm-start structure (the online driver's carried coalitions)
 *     replaces the cold seed; leftovers fill greedily the same way.
 *  2. *Core-seeking search.* Each round applies the
 *     largest-minimum-gain blocking coalition (members abandon their
 *     coalitions and form it) and then repairs capacity: a deviation
 *     both strands remnants and claims a machine, so surplus groups
 *     are dissolved (smallest first, never the deviators) and loose
 *     agents re-packed until the structure fits ceil(n/G) machines
 *     again. Because the repack perturbs bystanders' utilities there
 *     is no potential function; the search runs until the bounded
 *     scan finds no blocking coalition or maxRounds hits, and returns
 *     the feasible structure with the fewest blocking coalitions seen
 *     along the way (never worse than the seed).
 *  3. *Attribution.* Each formed coalition's ground-truth value is
 *     split over its members with the sampled Shapley estimator,
 *     substream-keyed by the coalition's minimum member.
 *
 * Determinism: all randomness comes from Rng::substream splits of the
 * caller's generator (never advanced), scans reduce in chunk order,
 * and ties break lexicographically — results are bit-identical at any
 * thread count.
 */

#ifndef COOPER_COALITION_FORMATION_HH
#define COOPER_COALITION_FORMATION_HH

#include <cstddef>
#include <vector>

#include "coalition/blocking_coalition.hh"
#include "coalition/prefs.hh"
#include "coalition/structure.hh"
#include "matching/disutility.hh"
#include "sim/interference.hh"
#include "util/rng.hh"

namespace cooper {

/** Knobs for one formation run. */
struct FormationConfig
{
    /** Capacity cap G: at most this many jobs share a CMP (2..20). */
    std::size_t groupSize = 2;

    /** Minimum per-member gain a deviation must clear (>= 0). */
    double alpha = 0.0;

    /** Hard cap on core-seeking rounds. */
    std::size_t maxRounds = 64;

    /** Blocking-scan candidate truncation; 0 = exhaustive. */
    std::size_t candidateCap = 0;

    /** Shapley samples per coalition; 0 skips attribution. */
    std::size_t shapleySamples = 128;

    /** Worker threads; 0 = hardware, 1 = serial. */
    std::size_t threads = 1;
};

/** What one formation run produced. */
struct FormationResult
{
    /** Final structure, canonical form. */
    CoalitionStructure structure;

    /** Core-seeking rounds played (deviations applied). */
    std::size_t rounds = 0;

    /** No blocking coalition survived the bounded scan at exit. */
    bool coreStable = false;

    /** Blocking coalitions in the seed / final structure. */
    std::size_t blockingBefore = 0;
    std::size_t blockingAfter = 0;

    /** Per-agent believed cost in the final structure. */
    std::vector<double> believedPenalties;

    /** Per-agent ground-truth penalty (model groupPenalty). */
    std::vector<double> truePenalties;

    /** Per-agent sampled-Shapley share of its coalition's true value
     *  (zero when alone; empty when shapleySamples == 0). */
    std::vector<double> shapleyShares;
};

/**
 * Form coalitions over agents 0..types.size()-1.
 *
 * @param types Catalog type of each agent.
 * @param believed Pairwise believed disutilities, n x n.
 * @param model Ground truth for truePenalties and attribution.
 * @param config Formation knobs.
 * @param rng Caller's generator; only substream()'d, never advanced.
 * @param warm_start Carried structure to repair instead of a cold
 *        seed; must be a valid partition with coalitions <= G.
 */
FormationResult
formCoalitions(const std::vector<JobTypeId> &types,
               const DisutilityTable &believed,
               const InterferenceModel &model,
               const FormationConfig &config, const Rng &rng,
               const CoalitionStructure *warm_start = nullptr);

} // namespace cooper

#endif // COOPER_COALITION_FORMATION_HH
