#include "value.hh"

#include "game/colocation_game.hh"

namespace cooper {

double
coalitionMemberPenalty(const InterferenceModel &model, JobTypeId self,
                       std::span<const JobTypeId> others)
{
    if (others.empty())
        return 0.0;
    return model.groupPenalty(self, others);
}

std::vector<double>
coalitionMemberPenalties(const InterferenceModel &model,
                         std::span<const JobTypeId> members)
{
    std::vector<double> out(members.size(), 0.0);
    if (members.size() < 2)
        return out;
    std::vector<JobTypeId> others;
    others.reserve(members.size() - 1);
    for (std::size_t i = 0; i < members.size(); ++i) {
        others.clear();
        for (std::size_t j = 0; j < members.size(); ++j)
            if (j != i)
                others.push_back(members[j]);
        out[i] = coalitionMemberPenalty(model, members[i], others);
    }
    return out;
}

double
coalitionValue(const InterferenceModel &model,
               std::span<const JobTypeId> members)
{
    double total = 0.0;
    for (double p : coalitionMemberPenalties(model, members))
        total += p;
    return total;
}

CharacteristicFn
coalitionCharacteristic(const InterferenceModel &model,
                        std::vector<JobTypeId> jobs)
{
    // colocationGame already prices masked coalitions through
    // groupPenalty; keep one implementation.
    return colocationGame(model, std::move(jobs));
}

} // namespace cooper
