#include "simd_kernels.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "cf/item_knn.hh"

namespace cooper {

namespace simd {

double
finishSimilarity(Similarity kind, std::size_t min_overlap,
                 std::size_t overlap, double dot, double na, double nb,
                 double sum_a, double sum_b)
{
    if (overlap < min_overlap)
        return 0.0;
    if (kind == Similarity::Pearson) {
        const double n = static_cast<double>(overlap);
        const double cov = dot - sum_a * sum_b / n;
        const double var_a = na - sum_a * sum_a / n;
        const double var_b = nb - sum_b * sum_b / n;
        if (var_a <= 0.0 || var_b <= 0.0)
            return 0.0;
        return cov / std::sqrt(var_a * var_b);
    }
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

double
scalarPackedSimilarity(const double *va, const double *vb,
                       const std::uint64_t *ma, const std::uint64_t *mb,
                       std::size_t words, Similarity kind,
                       std::size_t min_overlap)
{
    double dot = 0.0, na = 0.0, nb = 0.0;
    double sum_a = 0.0, sum_b = 0.0;
    std::size_t overlap = 0;
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = ma[w] & mb[w];
        overlap += static_cast<std::size_t>(std::popcount(bits));
        const std::size_t base = w * 64;
        while (bits) {
            const std::size_t r =
                base + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const double x = va[r];
            const double y = vb[r];
            dot += x * y;
            na += x * x;
            nb += y * y;
            sum_a += x;
            sum_b += y;
        }
    }
    return finishSimilarity(kind, min_overlap, overlap, dot, na, nb,
                            sum_a, sum_b);
}

void
similarityBlockScalar(const PackedColumns &packed, std::size_t a,
                      const std::size_t *bs, std::size_t count,
                      Similarity kind, std::size_t min_overlap,
                      double *out)
{
    const double *va = packed.column(a);
    const std::uint64_t *ma = packed.mask(a);
    for (std::size_t k = 0; k < count; ++k)
        out[k] = scalarPackedSimilarity(va, packed.column(bs[k]), ma,
                                        packed.mask(bs[k]),
                                        packed.words(), kind,
                                        min_overlap);
}

void
knnAccumulateBlockScalar(const double *tri, std::size_t items,
                         const std::size_t *cs, std::size_t count,
                         const std::uint64_t *const *active,
                         std::size_t words, const double *dev,
                         double *num, double *den)
{
    // Exactly predictPass's uncapped gather, one target at a time.
    const auto at = [&](std::size_t a, std::size_t b) {
        if (a > b)
            std::swap(a, b);
        return tri[a * (items - 1) - a * (a - 1) / 2 + (b - a - 1)];
    };
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t c = cs[k];
        const std::uint64_t *mask = active[k];
        double n = 0.0, d = 0.0;
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = mask[w];
            const std::size_t base = w * 64;
            while (bits) {
                const std::size_t c2 =
                    base +
                    static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                const double s = at(c, c2);
                n += s * dev[c2];
                d += s;
            }
        }
        num[k] = n;
        den[k] = d;
    }
}

namespace {

/** Clamp a requested tier to what this binary and CPU can run. */
SimdLevel
usableLevel(SimdLevel level)
{
    return std::min(level, detectedSimdLevel());
}

} // namespace

void
similarityBlock(const PackedColumns &packed, std::size_t a,
                const std::size_t *bs, std::size_t count,
                Similarity kind, std::size_t min_overlap,
                SimdLevel level, double *out)
{
    switch (usableLevel(level)) {
#if defined(COOPER_SIMD_X86)
    case SimdLevel::Avx512:
        similarityBlockAvx512(packed, a, bs, count, kind, min_overlap,
                              out);
        return;
    case SimdLevel::Avx2:
        similarityBlockAvx2(packed, a, bs, count, kind, min_overlap,
                            out);
        return;
#else
    case SimdLevel::Avx512:
    case SimdLevel::Avx2:
#endif
    case SimdLevel::Scalar:
        break;
    }
    similarityBlockScalar(packed, a, bs, count, kind, min_overlap, out);
}

void
knnAccumulateBlock(const double *tri, std::size_t items,
                   const std::size_t *cs, std::size_t count,
                   const std::uint64_t *const *active, std::size_t words,
                   const double *dev, SimdLevel level, double *num,
                   double *den)
{
    switch (usableLevel(level)) {
#if defined(COOPER_SIMD_X86)
    case SimdLevel::Avx512:
        knnAccumulateBlockAvx512(tri, items, cs, count, active, words,
                                 dev, num, den);
        return;
    case SimdLevel::Avx2:
        knnAccumulateBlockAvx2(tri, items, cs, count, active, words,
                               dev, num, den);
        return;
#else
    case SimdLevel::Avx512:
    case SimdLevel::Avx2:
#endif
    case SimdLevel::Scalar:
        break;
    }
    knnAccumulateBlockScalar(tri, items, cs, count, active, words, dev,
                             num, den);
}

} // namespace simd

} // namespace cooper
