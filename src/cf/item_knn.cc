#include "item_knn.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "cf/simd_kernels.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace cooper {

ItemKnnPredictor::ItemKnnPredictor(ItemKnnConfig config)
    : config_(config)
{
    fatalIf(config_.iterations == 0,
            "ItemKnnPredictor: need at least one iteration");
}

std::vector<std::vector<double>>
SimilarityTriangle::toNested() const
{
    std::vector<std::vector<double>> out(
        items_, std::vector<double>(items_, 0.0));
    for (std::size_t a = 0; a < items_; ++a) {
        out[a][a] = 1.0;
        for (std::size_t b = a + 1; b < items_; ++b) {
            const double s = at(a, b);
            out[a][b] = s;
            out[b][a] = s;
        }
    }
    return out;
}

namespace {

// The column-pair similarity kernel lives in cf/simd_kernels.cc now:
// simd::scalarPackedSimilarity is PR 3's packed scan verbatim, and
// simd::similarityBlock dispatches blocks of pairs to the bit-
// identical AVX2/AVX-512 tiers (one pair per vector lane).

std::vector<double>
rowMeans(const SparseMatrix &m)
{
    std::vector<double> means(m.rows(), 0.0);
    const double global = m.knownMean();
    for (std::size_t r = 0; r < m.rows(); ++r)
        means[r] = m.rowMean(r, global);
    return means;
}

SimilarityTriangle
similarityOver(const SparseMatrix &m, const ItemKnnConfig &config)
{
    const ScopedTimer timer("cf.similarity_seconds");
    const std::size_t n = m.cols();
    PackedColumns packed = m.packedColumns();
    if (config.similarity == Similarity::AdjustedCosine)
        packed.subtractRowOffsets(rowMeans(m));

    SimilarityTriangle sim(n);
    const SimdLevel level = activeSimdLevel();

    // Row a owns cells sim(a, b) for b > a — contiguous in the packed
    // triangle, so the block kernel writes row segments in place.
    // Rows are tiled and the b-columns chunked so a tile's worth of
    // a-rows re-reads the same column chunk while it is cache-
    // resident; tile boundaries never change values (lanes are
    // independent pairs), so any tiling is bit-identical to the
    // serial fill.
    constexpr std::size_t kTileRows = 32;
    constexpr std::size_t kTileCols = 128;
    std::vector<std::size_t> ids(n);
    std::iota(ids.begin(), ids.end(), std::size_t(0));
    const std::size_t tiles = (n + kTileRows - 1) / kTileRows;
    parallelFor(0, tiles, config.threads, [&](std::size_t t) {
        const std::size_t a_begin = t * kTileRows;
        const std::size_t a_end = std::min(n, a_begin + kTileRows);
        for (std::size_t b0 = a_begin + 1; b0 < n; b0 += kTileCols) {
            const std::size_t b1 = std::min(n, b0 + kTileCols);
            for (std::size_t a = a_begin; a < a_end; ++a) {
                const std::size_t lo = std::max(b0, a + 1);
                if (lo >= b1)
                    continue;
                simd::similarityBlock(
                    packed, a, ids.data() + lo, b1 - lo,
                    config.similarity, config.minOverlap, level,
                    sim.data() + sim.rowOffset(a) + (lo - a - 1));
            }
        }
    });
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("cf.similarity_fills")
            .add(n > 0 ? n * (n - 1) / 2 : 0);
    return sim;
}

/** True when bit `i` is set in a 64-bit word mask. */
bool
maskBit(const std::vector<std::uint64_t> &mask, std::size_t i)
{
    const std::size_t w = i / 64;
    return w < mask.size() && (mask[w] >> (i % 64) & 1) != 0;
}

/**
 * One prediction pass: fill every unknown cell of `observed` using
 * similarities computed over `basis`.
 *
 * Per-cell work is allocation-free: a row intersects its known-column
 * bitmask with the target column's positive-similarity bitmask, and
 * when the neighbor cap kicks in it walks the column's sorted
 * neighbor list (built once per pass) instead of re-sorting per cell.
 *
 * Accumulation order mirrors the old per-cell scan exactly —
 * ascending column order when every usable neighbor contributes,
 * descending-similarity order when the cap truncates (ties broken
 * toward the lower column id, the canonical order the old
 * partial_sort left unspecified) — so uncapped and tie-free capped
 * predictions are bit-identical to it.
 */
SparseMatrix
predictPass(const SparseMatrix &observed, const SparseMatrix &basis,
            const ItemKnnConfig &config, std::size_t &fallbacks,
            const SimilarityTriangle *seed = nullptr)
{
    const std::size_t rows = observed.rows();
    const std::size_t cols = observed.cols();
    const ScopedTimer timer("cf.predict_pass_seconds");
    const SimilarityTriangle sim =
        seed != nullptr ? *seed : similarityOver(basis, config);
    const double global = observed.knownMean();

    // Item (column) means anchor each prediction; the neighbors then
    // contribute the row's deviation from those anchors. Centering on
    // item means matters here because co-runner columns have very
    // different scales (a contentious co-runner's column sits far
    // above a harmless one's).
    std::vector<double> col_mean(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c)
        col_mean[c] = basis.colMean(c, global);

    // Deviation of every known basis cell from its column mean,
    // row-major; unknown cells stay zero and are masked out below.
    const std::size_t cwords = (cols + 63) / 64;
    const std::vector<std::uint64_t> row_mask = basis.rowMasks();
    std::vector<double> dev(rows * cols, 0.0);
    {
        const double *values = basis.rawValues();
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < cols; ++c)
                if (basis.known(r, c))
                    dev[r * cols + c] = values[r * cols + c] - col_mean[c];
    }

    // Per-column neighbor structure, built once and reused by every
    // row: a bitmask of the columns with positive similarity, plus —
    // only when the neighbor cap is active — the same columns sorted
    // by descending similarity.
    std::vector<std::uint64_t> pos_mask(cols * cwords, 0);
    std::vector<std::vector<std::pair<double, std::uint32_t>>> ranked(
        config.neighbors > 0 ? cols : 0);
    parallelFor(0, cols, config.threads, [&](std::size_t c) {
        std::uint64_t *mask = pos_mask.data() + c * cwords;
        for (std::size_t c2 = 0; c2 < cols; ++c2) {
            if (c2 == c || !(sim.at(c, c2) > 0.0))
                continue;
            mask[c2 / 64] |= std::uint64_t(1) << (c2 % 64);
            if (config.neighbors > 0)
                ranked[c].emplace_back(
                    sim.at(c, c2), static_cast<std::uint32_t>(c2));
        }
        if (config.neighbors > 0)
            std::sort(ranked[c].begin(), ranked[c].end(),
                      [](const auto &x, const auto &y) {
                          return x.first > y.first ||
                                 (x.first == y.first &&
                                  x.second < y.second);
                      });
    });

    // Fallback ingredients, precomputed so the cell loop stays O(1):
    // a cell with no usable neighbor takes its row's observed mean,
    // or the column's (or global) when the row has none.
    std::vector<double> fallback_row(rows, 0.0);
    std::vector<std::uint8_t> row_has_known(rows, 0);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols && !row_has_known[r]; ++c)
            row_has_known[r] = observed.known(r, c);
        fallback_row[r] = observed.rowMean(r, global);
    }
    std::vector<double> fallback_col(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c)
        fallback_col[c] = observed.colMean(c, global);

    // Each cell's prediction is staged into its own slot and applied
    // serially afterwards: SparseMatrix::set maintains a shared
    // known-cell counter, so the parallel phase must not mutate
    // `filled` directly.
    enum : std::uint8_t { kSkip = 0, kPredicted = 1, kFallback = 2 };
    std::vector<double> staged_value(rows * cols, 0.0);
    std::vector<std::uint8_t> staged_kind(rows * cols, kSkip);
    const SimdLevel level = activeSimdLevel();
    parallelFor(0, rows, config.threads, [&](std::size_t r) {
        const std::uint64_t *rmask = row_mask.data() + r * cwords;
        const double *rdev = dev.data() + r * cols;
        const auto stage = [&](std::size_t c, double num, double den) {
            const std::size_t idx = r * cols + c;
            if (den > 0.0) {
                staged_value[idx] = col_mean[c] + num / den;
                staged_kind[idx] = kPredicted;
            } else {
                staged_value[idx] = row_has_known[r] ? fallback_row[r]
                                                     : fallback_col[c];
                staged_kind[idx] = kFallback;
            }
        };
        // Uncapped cells batch into the block kernel (one target
        // column per vector lane, each accumulating in the scalar
        // ascending-column order); capped cells keep the scalar
        // ranked walk, which has no fixed ascending structure.
        std::vector<std::size_t> targets;
        for (std::size_t c = 0; c < cols; ++c) {
            if (observed.known(r, c))
                continue;
            const std::uint64_t *cmask = pos_mask.data() + c * cwords;
            bool truncated = false;
            if (config.neighbors > 0) {
                std::size_t usable = 0;
                for (std::size_t w = 0; w < cwords; ++w)
                    usable += static_cast<std::size_t>(
                        std::popcount(rmask[w] & cmask[w]));
                truncated = usable > config.neighbors;
            }
            if (!truncated) {
                targets.push_back(c);
                continue;
            }
            // Capped cell: strongest neighbors first, exactly the
            // order the old partial_sort accumulated in.
            double num = 0.0, den = 0.0;
            std::size_t taken = 0;
            for (const auto &[s, c2] : ranked[c]) {
                if (!(rmask[c2 / 64] >> (c2 % 64) & 1))
                    continue;
                num += s * rdev[c2];
                den += s;
                if (++taken == config.neighbors)
                    break;
            }
            stage(c, num, den);
        }
        if (targets.empty())
            return;
        // Usable-neighbor masks (row-known AND positive-similarity),
        // materialized per target for the kernel's masked gather.
        std::vector<std::uint64_t> act(targets.size() * cwords);
        std::vector<const std::uint64_t *> act_ptrs(targets.size());
        for (std::size_t k = 0; k < targets.size(); ++k) {
            const std::uint64_t *cmask =
                pos_mask.data() + targets[k] * cwords;
            std::uint64_t *dst = act.data() + k * cwords;
            for (std::size_t w = 0; w < cwords; ++w)
                dst[w] = rmask[w] & cmask[w];
            act_ptrs[k] = dst;
        }
        std::vector<double> nums(targets.size());
        std::vector<double> dens(targets.size());
        simd::knnAccumulateBlock(sim.data(), cols, targets.data(),
                                 targets.size(), act_ptrs.data(), cwords,
                                 rdev, level, nums.data(), dens.data());
        for (std::size_t k = 0; k < targets.size(); ++k)
            stage(targets[k], nums[k], dens[k]);
    });

    SparseMatrix filled = observed;
    std::size_t predicted = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t idx = r * cols + c;
            if (staged_kind[idx] == kSkip)
                continue;
            ++predicted;
            filled.set(r, c, staged_value[idx]);
            if (staged_kind[idx] == kFallback)
                ++fallbacks;
        }
    }
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("cf.predicted_cells").add(predicted);
        // Observed cells short-circuit prediction: served straight
        // from the profile "cache".
        metrics->counter("cf.cache_hits").add(observed.knownCount());
    }
    return filled;
}

} // namespace

SimilarityTriangle
ItemKnnPredictor::similarityTriangle(const SparseMatrix &ratings) const
{
    return similarityOver(ratings, config_);
}

std::size_t
updateSimilarityTriangle(const SparseMatrix &ratings,
                         const ItemKnnConfig &config,
                         SimilarityTriangle &sim,
                         const std::vector<std::uint64_t> &dirty_cols,
                         const std::vector<std::uint64_t> &dirty_rows)
{
    const ScopedTimer timer("cf.similarity_update_seconds");
    const std::size_t n = ratings.cols();
    panicIf(sim.items() != n,
            "updateSimilarityTriangle: triangle/ratings size mismatch");

    PackedColumns packed = ratings.packedColumns();
    if (config.similarity == Similarity::AdjustedCosine)
        packed.subtractRowOffsets(rowMeans(ratings));

    // A dirty row only matters when its mean feeds the centering; the
    // raw cosine and Pearson kernels read cell values alone, and any
    // changed cell already dirties its column.
    const bool centered = config.similarity == Similarity::AdjustedCosine;
    const std::size_t words = packed.words();
    std::vector<std::uint64_t> dirty_row_words(words, 0);
    if (centered)
        for (std::size_t w = 0; w < words && w < dirty_rows.size(); ++w)
            dirty_row_words[w] = dirty_rows[w];

    const SimdLevel level = activeSimdLevel();
    std::vector<std::size_t> recomputed(n, 0);
    parallelFor(0, n, config.threads, [&](std::size_t a) {
        const bool a_dirty = maskBit(dirty_cols, a);
        const std::uint64_t *ma = packed.mask(a);
        // Affected cells batch into one block-kernel call per row;
        // values land exactly where the per-pair scan wrote them.
        std::vector<std::size_t> affected_bs;
        std::vector<double> values;
        for (std::size_t b = a + 1; b < n; ++b) {
            bool affected = a_dirty || maskBit(dirty_cols, b);
            if (!affected && centered) {
                const std::uint64_t *mb = packed.mask(b);
                for (std::size_t w = 0; w < words && !affected; ++w)
                    affected = (ma[w] & mb[w] & dirty_row_words[w]) != 0;
            }
            if (affected)
                affected_bs.push_back(b);
        }
        if (affected_bs.empty())
            return;
        values.resize(affected_bs.size());
        simd::similarityBlock(packed, a, affected_bs.data(),
                              affected_bs.size(), config.similarity,
                              config.minOverlap, level, values.data());
        for (std::size_t k = 0; k < affected_bs.size(); ++k)
            sim.set(a, affected_bs[k], values[k]);
        recomputed[a] = affected_bs.size();
    });
    std::size_t total = 0;
    for (std::size_t count : recomputed)
        total += count;
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("cf.similarity_incremental_fills").add(total);
    return total;
}

std::vector<std::vector<double>>
ItemKnnPredictor::similarityMatrix(const SparseMatrix &ratings) const
{
    return similarityTriangle(ratings).toNested();
}

namespace {

/** Transpose a sparse matrix, preserving the known mask. */
SparseMatrix
transposeOf(const SparseMatrix &m)
{
    SparseMatrix t(m.cols(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (m.known(r, c))
                t.set(c, r, m.at(r, c));
    return t;
}

} // namespace

Prediction
ItemKnnPredictor::predict(const SparseMatrix &ratings) const
{
    return predictSeeded(ratings, nullptr, nullptr);
}

Prediction
ItemKnnPredictor::predictSeeded(
    const SparseMatrix &ratings, const SimilarityTriangle *pass1,
    const SimilarityTriangle *pass1_transpose) const
{
    const TraceSpan span("cf.predict", "cf");
    Prediction out = predictOneView(ratings, pass1);
    if (!config_.bidirectional || ratings.rows() != ratings.cols())
        return out;

    // Average with the transpose view; observed cells are identical
    // in both, so only predictions blend.
    ItemKnnConfig transposed_config = config_;
    transposed_config.bidirectional = false;
    const Prediction other =
        ItemKnnPredictor(transposed_config)
            .predictSeeded(transposeOf(ratings), pass1_transpose,
                           nullptr);
    for (std::size_t r = 0; r < ratings.rows(); ++r)
        for (std::size_t c = 0; c < ratings.cols(); ++c)
            out.dense[r][c] =
                0.5 * (out.dense[r][c] + other.dense[c][r]);
    out.fallbackCells += other.fallbackCells;
    return out;
}

Prediction
ItemKnnPredictor::predictOneView(const SparseMatrix &ratings,
                                 const SimilarityTriangle *pass1) const
{
    fatalIf(ratings.knownCount() == 0,
            "ItemKnnPredictor: no observations to learn from");

    Prediction out;
    std::size_t fallbacks = 0;

    // Iteration 1 uses only observed cells as the similarity basis;
    // subsequent iterations use the previous fill, which lets sparse
    // rows borrow structure discovered elsewhere in the matrix.
    SparseMatrix basis = ratings;
    SparseMatrix filled = ratings;
    for (std::size_t it = 0; it < config_.iterations; ++it) {
        fallbacks = 0;
        filled = predictPass(ratings, basis, config_, fallbacks,
                             it == 0 ? pass1 : nullptr);
        ++out.iterations;
        basis = filled;
        // All cells are known after the first pass; later passes only
        // refine values, so stop early if nothing was unknown at all.
        if (ratings.knownCount() == ratings.rows() * ratings.cols())
            break;
    }
    out.fallbackCells = fallbacks;
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("cf.fallback_cells").add(fallbacks);

    out.dense.assign(ratings.rows(),
                     std::vector<double>(ratings.cols(), 0.0));
    for (std::size_t r = 0; r < ratings.rows(); ++r)
        for (std::size_t c = 0; c < ratings.cols(); ++c)
            out.dense[r][c] = filled.at(r, c);
    return out;
}

std::vector<std::size_t>
preferenceOrder(const std::vector<double> &penalties, std::size_t self)
{
    std::vector<std::size_t> order;
    order.reserve(penalties.size() ? penalties.size() - 1 : 0);
    for (std::size_t i = 0; i < penalties.size(); ++i)
        if (i != self)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return penalties[a] < penalties[b];
                     });
    return order;
}

} // namespace cooper
