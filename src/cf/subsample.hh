/**
 * @file
 * Symmetric subsampling of a dense ratings matrix, used by the
 * prediction-accuracy study (Figure 12): the profiler's full measured
 * matrix is the "true list" and the predictor sees only a sampled
 * subset of its cells.
 */

#ifndef COOPER_CF_SUBSAMPLE_HH
#define COOPER_CF_SUBSAMPLE_HH

#include "cf/sparse_matrix.hh"
#include "util/rng.hh"

namespace cooper {

/**
 * Keep a random subset of a fully known square matrix.
 *
 * Colocation cells come in symmetric pairs — running jobs i and j
 * together measures both (i, j) and (j, i) — so cells are sampled as
 * unordered pairs. Every row retains at least `min_per_row` cells.
 *
 * @param full Fully known square matrix.
 * @param ratio Fraction of cells to keep (0, 1].
 * @param min_per_row Minimum retained cells per row.
 * @param rng Random stream.
 */
SparseMatrix subsampleSymmetric(const SparseMatrix &full, double ratio,
                                std::size_t min_per_row, Rng &rng);

} // namespace cooper

#endif // COOPER_CF_SUBSAMPLE_HH
