/**
 * @file
 * AVX2 tier of the CF kernels: 4 double lanes, each owning one whole
 * work item (a column pair, or a kNN target column).
 *
 * Compiled with -mavx2 -ffp-contract=off and WITHOUT -mfma (see
 * src/cf/CMakeLists.txt): the scalar reference is built at the x86-64
 * baseline where mul+add cannot fuse, so this unit must not fuse
 * either. Inactive lanes accumulate zero-masked values, which is a
 * bitwise no-op (simd_kernels.hh states the -0.0 argument).
 */

#if defined(COOPER_SIMD_X86)

#include <algorithm>
#include <bit>
#include <immintrin.h>

#include "cf/item_knn.hh"
#include "cf/simd_kernels.hh"

namespace cooper {

namespace simd {

namespace {

constexpr std::size_t kLanes = 4;

/** All-ones where the lane's mask word holds `bitv`'s row bit. */
inline __m256d
laneMask(__m256i mvec, __m256i bitv)
{
    return _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(mvec, bitv), bitv));
}

/** Row offset of the packed upper triangle (see SimilarityTriangle). */
inline std::size_t
triRowOffset(std::size_t a, std::size_t items)
{
    return a * (items - 1) - a * (a - 1) / 2;
}

} // namespace

void
similarityBlockAvx2(const PackedColumns &packed, std::size_t a,
                    const std::size_t *bs, std::size_t count,
                    Similarity kind, std::size_t min_overlap,
                    double *out)
{
    const double *va = packed.column(a);
    const std::uint64_t *ma = packed.mask(a);
    const std::size_t words = packed.words();

    for (std::size_t k0 = 0; k0 < count; k0 += kLanes) {
        const std::size_t lanes = std::min(kLanes, count - k0);

        // Pad short blocks with the first column; the padded lanes'
        // masks are forced to zero, so they only ever add +0.0 and
        // their outputs are never read.
        const double *vb[kLanes];
        const std::uint64_t *mb[kLanes];
        std::uint64_t keep[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
            const std::size_t b = bs[k0 + (l < lanes ? l : 0)];
            vb[l] = packed.column(b);
            mb[l] = packed.mask(b);
            keep[l] = l < lanes ? ~std::uint64_t(0) : 0;
        }

        __m256d dot = _mm256_setzero_pd();
        __m256d na = _mm256_setzero_pd();
        __m256d nb = _mm256_setzero_pd();
        __m256d sum_a = _mm256_setzero_pd();
        __m256d sum_b = _mm256_setzero_pd();
        std::size_t overlap[kLanes] = {0, 0, 0, 0};

        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t aw = ma[w];
            if (aw == 0)
                continue;
            const std::uint64_t m0 = aw & mb[0][w] & keep[0];
            const std::uint64_t m1 = aw & mb[1][w] & keep[1];
            const std::uint64_t m2 = aw & mb[2][w] & keep[2];
            const std::uint64_t m3 = aw & mb[3][w] & keep[3];
            std::uint64_t uni = m0 | m1 | m2 | m3;
            if (uni == 0)
                continue;
            overlap[0] += static_cast<std::size_t>(std::popcount(m0));
            overlap[1] += static_cast<std::size_t>(std::popcount(m1));
            overlap[2] += static_cast<std::size_t>(std::popcount(m2));
            overlap[3] += static_cast<std::size_t>(std::popcount(m3));
            const std::size_t base = w * 64;

            if (m0 == uni && m1 == uni && m2 == uni && m3 == uni) {
                // Every lane co-rates every union row (the dense case,
                // e.g. pass-2 fills): no masking needed.
                while (uni) {
                    const std::size_t r =
                        base + static_cast<std::size_t>(
                                   std::countr_zero(uni));
                    uni &= uni - 1;
                    const __m256d x = _mm256_set1_pd(va[r]);
                    const __m256d y = _mm256_set_pd(vb[3][r], vb[2][r],
                                                    vb[1][r], vb[0][r]);
                    dot = _mm256_add_pd(dot, _mm256_mul_pd(x, y));
                    na = _mm256_add_pd(na, _mm256_mul_pd(x, x));
                    nb = _mm256_add_pd(nb, _mm256_mul_pd(y, y));
                    sum_a = _mm256_add_pd(sum_a, x);
                    sum_b = _mm256_add_pd(sum_b, y);
                }
                continue;
            }

            const __m256i mvec = _mm256_set_epi64x(
                static_cast<long long>(m3), static_cast<long long>(m2),
                static_cast<long long>(m1), static_cast<long long>(m0));
            while (uni) {
                const int bit = std::countr_zero(uni);
                uni &= uni - 1;
                const std::size_t r =
                    base + static_cast<std::size_t>(bit);
                const __m256i bitv = _mm256_set1_epi64x(
                    static_cast<long long>(std::uint64_t(1) << bit));
                const __m256d lane = laneMask(mvec, bitv);
                const __m256d x =
                    _mm256_and_pd(_mm256_set1_pd(va[r]), lane);
                const __m256d y = _mm256_and_pd(
                    _mm256_set_pd(vb[3][r], vb[2][r], vb[1][r],
                                  vb[0][r]),
                    lane);
                dot = _mm256_add_pd(dot, _mm256_mul_pd(x, y));
                na = _mm256_add_pd(na, _mm256_mul_pd(x, x));
                nb = _mm256_add_pd(nb, _mm256_mul_pd(y, y));
                sum_a = _mm256_add_pd(sum_a, x);
                sum_b = _mm256_add_pd(sum_b, y);
            }
        }

        double dotv[kLanes], nav[kLanes], nbv[kLanes];
        double sav[kLanes], sbv[kLanes];
        _mm256_storeu_pd(dotv, dot);
        _mm256_storeu_pd(nav, na);
        _mm256_storeu_pd(nbv, nb);
        _mm256_storeu_pd(sav, sum_a);
        _mm256_storeu_pd(sbv, sum_b);
        for (std::size_t l = 0; l < lanes; ++l)
            out[k0 + l] =
                finishSimilarity(kind, min_overlap, overlap[l], dotv[l],
                                 nav[l], nbv[l], sav[l], sbv[l]);
    }
}

void
knnAccumulateBlockAvx2(const double *tri, std::size_t items,
                       const std::size_t *cs, std::size_t count,
                       const std::uint64_t *const *active,
                       std::size_t words, const double *dev, double *num,
                       double *den)
{
    for (std::size_t k0 = 0; k0 < count; k0 += kLanes) {
        const std::size_t lanes = std::min(kLanes, count - k0);

        std::size_t c[kLanes];
        const std::uint64_t *mask[kLanes];
        std::uint64_t keep[kLanes];
        // base[l] + c2 is the flat index of sim(c[l], c2) when
        // c2 > c[l]; the c2 < c[l] side shares a per-row base instead.
        std::size_t base[kLanes];
        std::size_t cmin = items, cmax = 0;
        for (std::size_t l = 0; l < kLanes; ++l) {
            c[l] = cs[k0 + (l < lanes ? l : 0)];
            mask[l] = active[k0 + (l < lanes ? l : 0)];
            keep[l] = l < lanes ? ~std::uint64_t(0) : 0;
            base[l] = triRowOffset(c[l], items) - c[l] - 1;
            cmin = std::min(cmin, c[l]);
            cmax = std::max(cmax, c[l]);
        }

        __m256d vnum = _mm256_setzero_pd();
        __m256d vden = _mm256_setzero_pd();

        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t m0 = mask[0][w] & keep[0];
            const std::uint64_t m1 = mask[1][w] & keep[1];
            const std::uint64_t m2 = mask[2][w] & keep[2];
            const std::uint64_t m3 = mask[3][w] & keep[3];
            std::uint64_t uni = m0 | m1 | m2 | m3;
            if (uni == 0)
                continue;
            const __m256i mvec = _mm256_set_epi64x(
                static_cast<long long>(m3), static_cast<long long>(m2),
                static_cast<long long>(m1), static_cast<long long>(m0));
            const std::size_t wbase = w * 64;
            while (uni) {
                const int bit = std::countr_zero(uni);
                uni &= uni - 1;
                const std::size_t c2 =
                    wbase + static_cast<std::size_t>(bit);

                // Gather sim(c[l], c2) per lane. Neighbors entirely
                // above or below the whole target block share simple
                // address forms; targets interleaved with c2 (rare)
                // take the general per-lane path, with self cells
                // loading a harmless 0 (their lanes are inactive —
                // active masks never contain the target itself).
                __m256d s;
                if (c2 > cmax) {
                    s = _mm256_set_pd(
                        tri[base[3] + c2], tri[base[2] + c2],
                        tri[base[1] + c2], tri[base[0] + c2]);
                } else if (c2 < cmin) {
                    const std::size_t row =
                        triRowOffset(c2, items) - c2 - 1;
                    s = _mm256_set_pd(tri[row + c[3]], tri[row + c[2]],
                                      tri[row + c[1]], tri[row + c[0]]);
                } else {
                    const std::size_t row =
                        triRowOffset(c2, items) - c2 - 1;
                    double sv[kLanes];
                    for (std::size_t l = 0; l < kLanes; ++l) {
                        if (c2 == c[l])
                            sv[l] = 0.0;
                        else
                            sv[l] = c2 > c[l] ? tri[base[l] + c2]
                                              : tri[row + c[l]];
                    }
                    s = _mm256_set_pd(sv[3], sv[2], sv[1], sv[0]);
                }

                const __m256i bitv = _mm256_set1_epi64x(
                    static_cast<long long>(std::uint64_t(1) << bit));
                s = _mm256_and_pd(s, laneMask(mvec, bitv));
                vnum = _mm256_add_pd(
                    vnum, _mm256_mul_pd(s, _mm256_set1_pd(dev[c2])));
                vden = _mm256_add_pd(vden, s);
            }
        }

        double numv[kLanes], denv[kLanes];
        _mm256_storeu_pd(numv, vnum);
        _mm256_storeu_pd(denv, vden);
        for (std::size_t l = 0; l < lanes; ++l) {
            num[k0 + l] = numv[l];
            den[k0 + l] = denv[l];
        }
    }
}

} // namespace simd

} // namespace cooper

#endif // COOPER_SIMD_X86
