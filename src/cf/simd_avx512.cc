/**
 * @file
 * AVX-512 tier of the CF kernels: 8 double lanes, one work item per
 * lane, native merge-masking (_mm512_mask_add_pd) instead of AVX2's
 * zero-masked adds — an inactive lane's accumulator is left untouched
 * bit-for-bit.
 *
 * Compiled with -mavx512f -ffp-contract=off and WITHOUT
 * -mfma (see src/cf/CMakeLists.txt), matching the scalar reference's
 * unfused mul+add.
 */

#if defined(COOPER_SIMD_X86)

#include <algorithm>
#include <bit>
#include <immintrin.h>

#include "cf/item_knn.hh"
#include "cf/simd_kernels.hh"

namespace cooper {

namespace simd {

namespace {

constexpr std::size_t kLanes = 8;

inline std::size_t
triRowOffset(std::size_t a, std::size_t items)
{
    return a * (items - 1) - a * (a - 1) / 2;
}

} // namespace

void
similarityBlockAvx512(const PackedColumns &packed, std::size_t a,
                      const std::size_t *bs, std::size_t count,
                      Similarity kind, std::size_t min_overlap,
                      double *out)
{
    const double *va = packed.column(a);
    const std::uint64_t *ma = packed.mask(a);
    const std::size_t words = packed.words();
    // Columns are slices of one contiguous buffer, so a lane's value
    // vb[l][r] sits at values_base[off[l] + r] and the per-row loads
    // below collapse into a single 8-lane gather.
    const double *values_base = packed.column(0);

    for (std::size_t k0 = 0; k0 < count; k0 += kLanes) {
        const std::size_t lanes = std::min(kLanes, count - k0);

        const double *vb[kLanes];
        const std::uint64_t *mb[kLanes];
        std::uint64_t keep[kLanes];
        long long off[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
            const std::size_t b = bs[k0 + (l < lanes ? l : 0)];
            vb[l] = packed.column(b);
            mb[l] = packed.mask(b);
            keep[l] = l < lanes ? ~std::uint64_t(0) : 0;
            off[l] = static_cast<long long>(vb[l] - values_base);
        }
        const __m512i offv =
            _mm512_set_epi64(off[7], off[6], off[5], off[4], off[3],
                             off[2], off[1], off[0]);

        __m512d dot = _mm512_setzero_pd();
        __m512d na = _mm512_setzero_pd();
        __m512d nb = _mm512_setzero_pd();
        __m512d sum_a = _mm512_setzero_pd();
        __m512d sum_b = _mm512_setzero_pd();
        std::size_t overlap[kLanes] = {};

        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t aw = ma[w];
            if (aw == 0)
                continue;
            std::uint64_t m[kLanes];
            std::uint64_t uni = 0;
            for (std::size_t l = 0; l < kLanes; ++l) {
                m[l] = aw & mb[l][w] & keep[l];
                uni |= m[l];
            }
            if (uni == 0)
                continue;
            bool allDense = true;
            for (std::size_t l = 0; l < kLanes; ++l) {
                overlap[l] +=
                    static_cast<std::size_t>(std::popcount(m[l]));
                allDense = allDense && m[l] == uni;
            }
            const std::size_t base = w * 64;

            if (allDense) {
                while (uni) {
                    const std::size_t r =
                        base + static_cast<std::size_t>(
                                   std::countr_zero(uni));
                    uni &= uni - 1;
                    const __m512d x = _mm512_set1_pd(va[r]);
                    const __m512d y = _mm512_i64gather_pd(
                        _mm512_add_epi64(
                            offv, _mm512_set1_epi64(
                                      static_cast<long long>(r))),
                        values_base, 8);
                    dot = _mm512_add_pd(dot, _mm512_mul_pd(x, y));
                    na = _mm512_add_pd(na, _mm512_mul_pd(x, x));
                    nb = _mm512_add_pd(nb, _mm512_mul_pd(y, y));
                    sum_a = _mm512_add_pd(sum_a, x);
                    sum_b = _mm512_add_pd(sum_b, y);
                }
                continue;
            }

            const __m512i mvec = _mm512_set_epi64(
                static_cast<long long>(m[7]),
                static_cast<long long>(m[6]),
                static_cast<long long>(m[5]),
                static_cast<long long>(m[4]),
                static_cast<long long>(m[3]),
                static_cast<long long>(m[2]),
                static_cast<long long>(m[1]),
                static_cast<long long>(m[0]));
            while (uni) {
                const int bit = std::countr_zero(uni);
                uni &= uni - 1;
                const std::size_t r =
                    base + static_cast<std::size_t>(bit);
                const __m512i bitv = _mm512_set1_epi64(
                    static_cast<long long>(std::uint64_t(1) << bit));
                const __mmask8 lane =
                    _mm512_test_epi64_mask(mvec, bitv);
                const __m512d x = _mm512_set1_pd(va[r]);
                const __m512d y = _mm512_i64gather_pd(
                    _mm512_add_epi64(
                        offv,
                        _mm512_set1_epi64(static_cast<long long>(r))),
                    values_base, 8);
                dot = _mm512_mask_add_pd(dot, lane, dot,
                                         _mm512_mul_pd(x, y));
                na = _mm512_mask_add_pd(na, lane, na,
                                        _mm512_mul_pd(x, x));
                nb = _mm512_mask_add_pd(nb, lane, nb,
                                        _mm512_mul_pd(y, y));
                sum_a = _mm512_mask_add_pd(sum_a, lane, sum_a, x);
                sum_b = _mm512_mask_add_pd(sum_b, lane, sum_b, y);
            }
        }

        double dotv[kLanes], nav[kLanes], nbv[kLanes];
        double sav[kLanes], sbv[kLanes];
        _mm512_storeu_pd(dotv, dot);
        _mm512_storeu_pd(nav, na);
        _mm512_storeu_pd(nbv, nb);
        _mm512_storeu_pd(sav, sum_a);
        _mm512_storeu_pd(sbv, sum_b);
        for (std::size_t l = 0; l < lanes; ++l)
            out[k0 + l] =
                finishSimilarity(kind, min_overlap, overlap[l], dotv[l],
                                 nav[l], nbv[l], sav[l], sbv[l]);
    }
}

void
knnAccumulateBlockAvx512(const double *tri, std::size_t items,
                         const std::size_t *cs, std::size_t count,
                         const std::uint64_t *const *active,
                         std::size_t words, const double *dev,
                         double *num, double *den)
{
    for (std::size_t k0 = 0; k0 < count; k0 += kLanes) {
        const std::size_t lanes = std::min(kLanes, count - k0);

        std::size_t c[kLanes];
        const std::uint64_t *mask[kLanes];
        std::uint64_t keep[kLanes];
        std::size_t base[kLanes];
        std::size_t cmin = items, cmax = 0;
        for (std::size_t l = 0; l < kLanes; ++l) {
            c[l] = cs[k0 + (l < lanes ? l : 0)];
            mask[l] = active[k0 + (l < lanes ? l : 0)];
            keep[l] = l < lanes ? ~std::uint64_t(0) : 0;
            base[l] = triRowOffset(c[l], items) - c[l] - 1;
            cmin = std::min(cmin, c[l]);
            cmax = std::max(cmax, c[l]);
        }

        __m512d vnum = _mm512_setzero_pd();
        __m512d vden = _mm512_setzero_pd();

        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t m[kLanes];
            std::uint64_t uni = 0;
            for (std::size_t l = 0; l < kLanes; ++l) {
                m[l] = mask[l][w] & keep[l];
                uni |= m[l];
            }
            if (uni == 0)
                continue;
            const __m512i mvec = _mm512_set_epi64(
                static_cast<long long>(m[7]),
                static_cast<long long>(m[6]),
                static_cast<long long>(m[5]),
                static_cast<long long>(m[4]),
                static_cast<long long>(m[3]),
                static_cast<long long>(m[2]),
                static_cast<long long>(m[1]),
                static_cast<long long>(m[0]));
            const std::size_t wbase = w * 64;
            while (uni) {
                const int bit = std::countr_zero(uni);
                uni &= uni - 1;
                const std::size_t c2 =
                    wbase + static_cast<std::size_t>(bit);

                double sv[kLanes];
                if (c2 > cmax) {
                    for (std::size_t l = 0; l < kLanes; ++l)
                        sv[l] = tri[base[l] + c2];
                } else if (c2 < cmin) {
                    const std::size_t row =
                        triRowOffset(c2, items) - c2 - 1;
                    for (std::size_t l = 0; l < kLanes; ++l)
                        sv[l] = tri[row + c[l]];
                } else {
                    const std::size_t row =
                        triRowOffset(c2, items) - c2 - 1;
                    for (std::size_t l = 0; l < kLanes; ++l) {
                        if (c2 == c[l])
                            sv[l] = 0.0;
                        else
                            sv[l] = c2 > c[l] ? tri[base[l] + c2]
                                              : tri[row + c[l]];
                    }
                }
                const __m512d s =
                    _mm512_set_pd(sv[7], sv[6], sv[5], sv[4], sv[3],
                                  sv[2], sv[1], sv[0]);

                const __m512i bitv = _mm512_set1_epi64(
                    static_cast<long long>(std::uint64_t(1) << bit));
                const __mmask8 lane =
                    _mm512_test_epi64_mask(mvec, bitv);
                vnum = _mm512_mask_add_pd(
                    vnum, lane, vnum,
                    _mm512_mul_pd(s, _mm512_set1_pd(dev[c2])));
                vden = _mm512_mask_add_pd(vden, lane, vden, s);
            }
        }

        double numv[kLanes], denv[kLanes];
        _mm512_storeu_pd(numv, vnum);
        _mm512_storeu_pd(denv, vden);
        for (std::size_t l = 0; l < lanes; ++l) {
            num[k0 + l] = numv[l];
            den[k0 + l] = denv[l];
        }
    }
}

} // namespace simd

} // namespace cooper

#endif // COOPER_SIMD_X86
