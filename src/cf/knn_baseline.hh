/**
 * @file
 * The pre-optimization item-kNN kernels, verbatim.
 *
 * These are the seed implementations the packed/bitmask kernels in
 * item_knn.cc replaced: a row-major branchy column-pair similarity
 * scan and a per-cell gather + partial_sort prediction loop. They are
 * kept (unused by production code) for two reasons:
 *
 *  - the kernel-equivalence property tests prove the optimized paths
 *    produce bit-identical similarities and predictions against them;
 *  - bench_regression times old vs. new on the same workload so the
 *    speedup is measured, not asserted.
 *
 * Baselines record no metrics and emit no trace spans, so comparisons
 * measure kernel cost only.
 */

#ifndef COOPER_CF_KNN_BASELINE_HH
#define COOPER_CF_KNN_BASELINE_HH

#include "cf/item_knn.hh"
#include "cf/sparse_matrix.hh"

namespace cooper {

/** Seed similarity fill: nested-vector square, row-major scans. */
std::vector<std::vector<double>>
baselineSimilarityMatrix(const SparseMatrix &ratings,
                         const ItemKnnConfig &config);

/** Seed predictor: per-cell rescans, fresh scratch per cell. */
Prediction baselinePredict(const SparseMatrix &ratings,
                           const ItemKnnConfig &config);

} // namespace cooper

#endif // COOPER_CF_KNN_BASELINE_HH
