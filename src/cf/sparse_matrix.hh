/**
 * @file
 * Sparse ratings matrix used by the preference predictor.
 *
 * Cooper's profiler samples only a fraction of all pairwise
 * colocations (e.g., 25% of a 20x20 job matrix); SparseMatrix records
 * which penalties are known and their measured values.
 */

#ifndef COOPER_CF_SPARSE_MATRIX_HH
#define COOPER_CF_SPARSE_MATRIX_HH

#include <cstdint>
#include <vector>

namespace cooper {

/**
 * Dense-backed matrix with a known/unknown mask.
 *
 * Dense backing is the right trade-off here: the matrices are at most
 * a few thousand square and the predictor touches most cells anyway.
 */
class SparseMatrix
{
  public:
    /** An unknown cell, for iteration APIs. */
    struct Entry
    {
        std::size_t row = 0;
        std::size_t col = 0;
        double value = 0.0;
    };

    SparseMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Record a measurement. */
    void set(std::size_t r, std::size_t c, double value);

    /** Forget a measurement (used by accuracy experiments). */
    void clear(std::size_t r, std::size_t c);

    bool known(std::size_t r, std::size_t c) const
    {
        return mask_[r * cols_ + c] != 0;
    }

    /** Value of a known cell; fatal if the cell is unknown. */
    double at(std::size_t r, std::size_t c) const;

    /** Value of a cell, or `fallback` when unknown. */
    double valueOr(std::size_t r, std::size_t c, double fallback) const
    {
        return known(r, c) ? values_[r * cols_ + c] : fallback;
    }

    /** Number of known cells. */
    std::size_t knownCount() const { return knownCount_; }

    /** Fraction of known cells. */
    double density() const;

    /** All known entries in row-major order. */
    std::vector<Entry> entries() const;

    /** Mean of known values; zero when nothing is known. */
    double knownMean() const;

    /** Mean of known values in a row; fallback when the row is empty. */
    double rowMean(std::size_t r, double fallback) const;

    /** Mean of known values in a column; fallback when empty. */
    double colMean(std::size_t c, double fallback) const;

  private:
    void checkBounds(std::size_t r, std::size_t c) const;

    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> values_;
    std::vector<std::uint8_t> mask_;
    std::size_t knownCount_ = 0;
};

} // namespace cooper

#endif // COOPER_CF_SPARSE_MATRIX_HH
