/**
 * @file
 * Sparse ratings matrix used by the preference predictor.
 *
 * Cooper's profiler samples only a fraction of all pairwise
 * colocations (e.g., 25% of a 20x20 job matrix); SparseMatrix records
 * which penalties are known and their measured values.
 */

#ifndef COOPER_CF_SPARSE_MATRIX_HH
#define COOPER_CF_SPARSE_MATRIX_HH

#include <cstdint>
#include <vector>

namespace cooper {

class SparseMatrix;

/**
 * Column-major packed snapshot of a SparseMatrix.
 *
 * Each column is a contiguous run of values (zero where unknown) plus
 * a known-row bitmask, so column-pair kernels can intersect two
 * columns with word-wide ANDs and touch only co-rated rows — the
 * similarity fill's inner loop — instead of probing the row-major
 * mask cell by cell. The view is a snapshot: mutating the source
 * matrix does not update it; rebuild after set()/clear().
 */
class PackedColumns
{
  public:
    explicit PackedColumns(const SparseMatrix &m);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** 64-bit mask words per column. */
    std::size_t words() const { return words_; }

    /** Column c's values, indexed by row; zero where unknown. */
    const double *column(std::size_t c) const
    {
        return values_.data() + c * rows_;
    }

    /** Column c's known-row bitmask (words() words, LSB = row 0). */
    const std::uint64_t *mask(std::size_t c) const
    {
        return masks_.data() + c * words_;
    }

    /**
     * Subtract per-row offsets from every known value (used to center
     * on row means for the adjusted-cosine similarity).
     */
    void subtractRowOffsets(const std::vector<double> &offsets);

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::size_t words_;
    std::vector<double> values_;
    std::vector<std::uint64_t> masks_;
};

/**
 * Dense-backed matrix with a known/unknown mask.
 *
 * Dense backing is the right trade-off here: the matrices are at most
 * a few thousand square and the predictor touches most cells anyway.
 */
class SparseMatrix
{
  public:
    /** An unknown cell, for iteration APIs. */
    struct Entry
    {
        std::size_t row = 0;
        std::size_t col = 0;
        double value = 0.0;
    };

    SparseMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Record a measurement. */
    void set(std::size_t r, std::size_t c, double value);

    /** Forget a measurement (used by accuracy experiments). */
    void clear(std::size_t r, std::size_t c);

    bool known(std::size_t r, std::size_t c) const
    {
        return mask_[r * cols_ + c] != 0;
    }

    /** Value of a known cell; fatal if the cell is unknown. */
    double at(std::size_t r, std::size_t c) const;

    /** Value of a cell, or `fallback` when unknown. */
    double valueOr(std::size_t r, std::size_t c, double fallback) const
    {
        return known(r, c) ? values_[r * cols_ + c] : fallback;
    }

    /** Number of known cells. */
    std::size_t knownCount() const { return knownCount_; }

    /** Fraction of known cells. */
    double density() const;

    /** All known entries in row-major order. */
    std::vector<Entry> entries() const;

    /** Mean of known values; zero when nothing is known. */
    double knownMean() const;

    /** Mean of known values in a row; fallback when the row is empty. */
    double rowMean(std::size_t r, double fallback) const;

    /** Mean of known values in a column; fallback when empty. */
    double colMean(std::size_t c, double fallback) const;

    /** Column-major packed snapshot (see PackedColumns). */
    PackedColumns packedColumns() const { return PackedColumns(*this); }

    /**
     * Known-cell bitmasks, one row per `words` 64-bit words (LSB of
     * word 0 = column 0). Row r's mask starts at r * words where
     * words = (cols() + 63) / 64. The row-major complement of
     * packedColumns(), used by the predictor to intersect "columns
     * known in this row" with per-column neighbor sets.
     */
    std::vector<std::uint64_t> rowMasks() const;

    /** Raw row-major values (zero where unknown); row r starts at
     *  r * cols(). */
    const double *rawValues() const { return values_.data(); }

  private:
    void checkBounds(std::size_t r, std::size_t c) const;

    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> values_;
    std::vector<std::uint8_t> mask_;
    std::size_t knownCount_ = 0;
};

} // namespace cooper

#endif // COOPER_CF_SPARSE_MATRIX_HH
