#include "sparse_matrix.hh"

#include "util/error.hh"

namespace cooper {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), values_(rows * cols, 0.0),
      mask_(rows * cols, 0)
{
    fatalIf(rows == 0 || cols == 0, "SparseMatrix: empty shape ", rows,
            "x", cols);
}

void
SparseMatrix::checkBounds(std::size_t r, std::size_t c) const
{
    fatalIf(r >= rows_ || c >= cols_, "SparseMatrix: (", r, ", ", c,
            ") outside ", rows_, "x", cols_);
}

void
SparseMatrix::set(std::size_t r, std::size_t c, double value)
{
    checkBounds(r, c);
    const std::size_t idx = r * cols_ + c;
    if (!mask_[idx]) {
        mask_[idx] = 1;
        ++knownCount_;
    }
    values_[idx] = value;
}

void
SparseMatrix::clear(std::size_t r, std::size_t c)
{
    checkBounds(r, c);
    const std::size_t idx = r * cols_ + c;
    if (mask_[idx]) {
        mask_[idx] = 0;
        values_[idx] = 0.0;
        --knownCount_;
    }
}

double
SparseMatrix::at(std::size_t r, std::size_t c) const
{
    checkBounds(r, c);
    fatalIf(!known(r, c), "SparseMatrix: cell (", r, ", ", c,
            ") is unknown");
    return values_[r * cols_ + c];
}

double
SparseMatrix::density() const
{
    return static_cast<double>(knownCount_) /
           static_cast<double>(rows_ * cols_);
}

std::vector<SparseMatrix::Entry>
SparseMatrix::entries() const
{
    std::vector<Entry> out;
    out.reserve(knownCount_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            if (known(r, c))
                out.push_back(Entry{r, c, values_[r * cols_ + c]});
    return out;
}

double
SparseMatrix::knownMean() const
{
    if (knownCount_ == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
        if (mask_[i])
            acc += values_[i];
    return acc / static_cast<double>(knownCount_);
}

double
SparseMatrix::rowMean(std::size_t r, double fallback) const
{
    checkBounds(r, 0);
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
        if (known(r, c)) {
            acc += values_[r * cols_ + c];
            ++count;
        }
    }
    return count ? acc / static_cast<double>(count) : fallback;
}

PackedColumns::PackedColumns(const SparseMatrix &m)
    : rows_(m.rows()), cols_(m.cols()), words_((m.rows() + 63) / 64),
      values_(m.rows() * m.cols(), 0.0), masks_(m.cols() * words_, 0)
{
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            if (!m.known(r, c))
                continue;
            values_[c * rows_ + r] = m.valueOr(r, c, 0.0);
            masks_[c * words_ + r / 64] |= std::uint64_t(1) << (r % 64);
        }
    }
}

void
PackedColumns::subtractRowOffsets(const std::vector<double> &offsets)
{
    fatalIf(offsets.size() != rows_,
            "PackedColumns: ", offsets.size(), " offsets for ", rows_,
            " rows");
    for (std::size_t c = 0; c < cols_; ++c) {
        double *column = values_.data() + c * rows_;
        const std::uint64_t *mask = masks_.data() + c * words_;
        for (std::size_t r = 0; r < rows_; ++r)
            if (mask[r / 64] >> (r % 64) & 1)
                column[r] -= offsets[r];
    }
}

std::vector<std::uint64_t>
SparseMatrix::rowMasks() const
{
    const std::size_t words = (cols_ + 63) / 64;
    std::vector<std::uint64_t> out(rows_ * words, 0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            if (mask_[r * cols_ + c])
                out[r * words + c / 64] |= std::uint64_t(1) << (c % 64);
    return out;
}

double
SparseMatrix::colMean(std::size_t c, double fallback) const
{
    checkBounds(0, c);
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        if (known(r, c)) {
            acc += values_[r * cols_ + c];
            ++count;
        }
    }
    return count ? acc / static_cast<double>(count) : fallback;
}

} // namespace cooper
