/**
 * @file
 * Preference-prediction accuracy, Equation 2 of the paper.
 *
 * The rank coefficient tau compares each agent's predicted preference
 * list against its true list, counting pairwise inversions:
 *
 *   tau = 1 - [ sum_a sum_{i<j in C_a} K_ij ] / [ n * C(n-1, 2) ]
 *
 * where K_ij = 1 when agent a's preference between candidates i and j
 * differs across the true and predicted matrices.
 */

#ifndef COOPER_CF_ACCURACY_HH
#define COOPER_CF_ACCURACY_HH

#include <vector>

namespace cooper {

/**
 * Fraction of correctly ordered preference pairs across all agents.
 *
 * @param truth Dense true penalty matrix (rows: agents, cols:
 *        candidate co-runners).
 * @param predicted Dense predicted penalty matrix of the same shape.
 * @return Value in [0, 1]; 1 means every pairwise preference matches.
 */
double preferenceAccuracy(
    const std::vector<std::vector<double>> &truth,
    const std::vector<std::vector<double>> &predicted);

} // namespace cooper

#endif // COOPER_CF_ACCURACY_HH
