#include "knn_baseline.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

namespace {

/** Column-pair similarity over rows where both cells are known. */
double
columnSimilarity(const SparseMatrix &m, std::size_t a, std::size_t b,
                 Similarity kind, std::size_t min_overlap,
                 const std::vector<double> &row_means)
{
    double dot = 0.0, na = 0.0, nb = 0.0;
    double sum_a = 0.0, sum_b = 0.0;
    std::size_t overlap = 0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
        if (!m.known(r, a) || !m.known(r, b))
            continue;
        double va = m.at(r, a);
        double vb = m.at(r, b);
        if (kind == Similarity::AdjustedCosine) {
            va -= row_means[r];
            vb -= row_means[r];
        }
        dot += va * vb;
        na += va * va;
        nb += vb * vb;
        sum_a += va;
        sum_b += vb;
        ++overlap;
    }
    if (overlap < min_overlap)
        return 0.0;
    if (kind == Similarity::Pearson) {
        const double n = static_cast<double>(overlap);
        const double cov = dot - sum_a * sum_b / n;
        const double var_a = na - sum_a * sum_a / n;
        const double var_b = nb - sum_b * sum_b / n;
        if (var_a <= 0.0 || var_b <= 0.0)
            return 0.0;
        return cov / std::sqrt(var_a * var_b);
    }
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

std::vector<double>
rowMeans(const SparseMatrix &m)
{
    std::vector<double> means(m.rows(), 0.0);
    const double global = m.knownMean();
    for (std::size_t r = 0; r < m.rows(); ++r)
        means[r] = m.rowMean(r, global);
    return means;
}

std::vector<std::vector<double>>
similarityOver(const SparseMatrix &m, const ItemKnnConfig &config)
{
    const std::size_t n = m.cols();
    const auto means = rowMeans(m);
    std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
    parallelFor(0, n, config.threads, [&](std::size_t a) {
        sim[a][a] = 1.0;
        for (std::size_t b = a + 1; b < n; ++b) {
            const double s = columnSimilarity(m, a, b, config.similarity,
                                              config.minOverlap, means);
            sim[a][b] = s;
            sim[b][a] = s;
        }
    });
    return sim;
}

/** One seed prediction pass over `observed` with basis `basis`. */
SparseMatrix
predictPass(const SparseMatrix &observed, const SparseMatrix &basis,
            const ItemKnnConfig &config, std::size_t &fallbacks)
{
    const std::size_t rows = observed.rows();
    const std::size_t cols = observed.cols();
    const auto sim = similarityOver(basis, config);
    const double global = observed.knownMean();

    std::vector<double> col_mean(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c)
        col_mean[c] = basis.colMean(c, global);

    struct StagedCell
    {
        std::size_t col;
        double value;
        bool fallback;
    };
    std::vector<std::vector<StagedCell>> staged(rows);
    parallelFor(0, rows, config.threads, [&](std::size_t r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (observed.known(r, c))
                continue;
            std::vector<std::pair<double, double>> sims_and_devs;
            for (std::size_t c2 = 0; c2 < cols; ++c2) {
                if (c2 == c || !basis.known(r, c2))
                    continue;
                const double s = sim[c][c2];
                if (s > 0.0)
                    sims_and_devs.emplace_back(
                        s, basis.at(r, c2) - col_mean[c2]);
            }
            if (config.neighbors > 0 &&
                sims_and_devs.size() > config.neighbors) {
                std::partial_sort(
                    sims_and_devs.begin(),
                    sims_and_devs.begin() +
                        static_cast<std::ptrdiff_t>(config.neighbors),
                    sims_and_devs.end(),
                    [](const auto &x, const auto &y) {
                        return x.first > y.first;
                    });
                sims_and_devs.resize(config.neighbors);
            }
            double num = 0.0, den = 0.0;
            for (const auto &[s, dev] : sims_and_devs) {
                num += s * dev;
                den += s;
            }
            if (den > 0.0) {
                staged[r].push_back(
                    StagedCell{c, col_mean[c] + num / den, false});
            } else {
                staged[r].push_back(StagedCell{
                    c,
                    observed.rowMean(r, observed.colMean(c, global)),
                    true});
            }
        }
    });

    SparseMatrix filled = observed;
    for (std::size_t r = 0; r < rows; ++r) {
        for (const StagedCell &cell : staged[r]) {
            filled.set(r, cell.col, cell.value);
            if (cell.fallback)
                ++fallbacks;
        }
    }
    return filled;
}

/** Transpose a sparse matrix, preserving the known mask. */
SparseMatrix
transposeOf(const SparseMatrix &m)
{
    SparseMatrix t(m.cols(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (m.known(r, c))
                t.set(c, r, m.at(r, c));
    return t;
}

Prediction
predictOneView(const SparseMatrix &ratings, const ItemKnnConfig &config)
{
    fatalIf(ratings.knownCount() == 0,
            "baselinePredict: no observations to learn from");

    Prediction out;
    std::size_t fallbacks = 0;
    SparseMatrix basis = ratings;
    SparseMatrix filled = ratings;
    for (std::size_t it = 0; it < config.iterations; ++it) {
        fallbacks = 0;
        filled = predictPass(ratings, basis, config, fallbacks);
        ++out.iterations;
        basis = filled;
        if (ratings.knownCount() == ratings.rows() * ratings.cols())
            break;
    }
    out.fallbackCells = fallbacks;

    out.dense.assign(ratings.rows(),
                     std::vector<double>(ratings.cols(), 0.0));
    for (std::size_t r = 0; r < ratings.rows(); ++r)
        for (std::size_t c = 0; c < ratings.cols(); ++c)
            out.dense[r][c] = filled.at(r, c);
    return out;
}

} // namespace

std::vector<std::vector<double>>
baselineSimilarityMatrix(const SparseMatrix &ratings,
                         const ItemKnnConfig &config)
{
    return similarityOver(ratings, config);
}

Prediction
baselinePredict(const SparseMatrix &ratings, const ItemKnnConfig &config)
{
    fatalIf(config.iterations == 0,
            "baselinePredict: need at least one iteration");
    Prediction out = predictOneView(ratings, config);
    if (!config.bidirectional || ratings.rows() != ratings.cols())
        return out;

    ItemKnnConfig transposed_config = config;
    transposed_config.bidirectional = false;
    const Prediction other =
        predictOneView(transposeOf(ratings), transposed_config);
    for (std::size_t r = 0; r < ratings.rows(); ++r)
        for (std::size_t c = 0; c < ratings.cols(); ++c)
            out.dense[r][c] =
                0.5 * (out.dense[r][c] + other.dense[c][r]);
    out.fallbackCells += other.fallbackCells;
    return out;
}

} // namespace cooper
