#include "subsample.hh"

#include <cmath>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace cooper {

SparseMatrix
subsampleSymmetric(const SparseMatrix &full, double ratio,
                   std::size_t min_per_row, Rng &rng)
{
    fatalIf(full.rows() != full.cols(),
            "subsampleSymmetric: matrix must be square");
    fatalIf(ratio <= 0.0 || ratio > 1.0,
            "subsampleSymmetric: ratio ", ratio, " outside (0, 1]");
    const std::size_t n = full.rows();
    fatalIf(full.knownCount() != n * n,
            "subsampleSymmetric: matrix must be fully known");

    SparseMatrix sparse(n, n);
    const auto target = static_cast<std::size_t>(
        std::ceil(ratio * static_cast<double>(n * n)));

    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    pairs.reserve(n * (n + 1) / 2);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            pairs.emplace_back(i, j);
    rng.shuffle(pairs);

    auto keep = [&](std::size_t i, std::size_t j) {
        sparse.set(i, j, full.at(i, j));
        if (i != j)
            sparse.set(j, i, full.at(j, i));
    };

    for (const auto &[i, j] : pairs) {
        if (sparse.knownCount() >= target)
            break;
        keep(i, j);
    }

    for (std::size_t r = 0; r < n; ++r) {
        std::size_t have = 0;
        for (std::size_t c = 0; c < n; ++c)
            if (sparse.known(r, c))
                ++have;
        while (have < std::min(min_per_row, n)) {
            const auto j = rng.uniformInt(static_cast<std::uint64_t>(n));
            if (!sparse.known(r, j)) {
                keep(r, j);
                ++have;
            }
        }
    }
    return sparse;
}

} // namespace cooper
