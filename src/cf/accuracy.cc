#include "accuracy.hh"

#include "util/error.hh"

namespace cooper {

double
preferenceAccuracy(const std::vector<std::vector<double>> &truth,
                   const std::vector<std::vector<double>> &predicted)
{
    fatalIf(truth.empty(), "preferenceAccuracy: empty matrix");
    fatalIf(truth.size() != predicted.size(),
            "preferenceAccuracy: row count mismatch");
    const std::size_t n = truth.size();

    long long incorrect = 0;
    long long pairs = 0;
    for (std::size_t a = 0; a < n; ++a) {
        fatalIf(truth[a].size() != n || predicted[a].size() != n,
                "preferenceAccuracy: matrices must be square");
        // Candidates are every co-runner except the agent itself.
        for (std::size_t i = 0; i < n; ++i) {
            if (i == a)
                continue;
            for (std::size_t j = i + 1; j < n; ++j) {
                if (j == a)
                    continue;
                ++pairs;
                const bool true_prefers_i = truth[a][i] < truth[a][j];
                const bool pred_prefers_i =
                    predicted[a][i] < predicted[a][j];
                if (true_prefers_i != pred_prefers_i)
                    ++incorrect;
            }
        }
    }
    if (pairs == 0)
        return 1.0;
    return 1.0 - static_cast<double>(incorrect) /
                     static_cast<double>(pairs);
}

} // namespace cooper
