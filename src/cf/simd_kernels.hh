/**
 * @file
 * SIMD-dispatched CF kernels: packed-column similarity and the kNN
 * deviation accumulation.
 *
 * Bit-identity contract. The scalar similarity kernel (PR 3's packed
 * rewrite, kept verbatim as scalarPackedSimilarity) is the reference;
 * goldens, the incremental predictor, and the online summaries all
 * pin its exact floating-point results. The vector tiers therefore do
 * NOT vectorize a single pair's reduction — reassociating the adds
 * would change the rounding. Instead each vector lane owns one whole
 * work item (one (a,b) column pair, or one target column of a kNN
 * row) and performs its own accumulation in the scalar order:
 *
 *  - Rows are visited in ascending index order, walking the set bits
 *    of the union of the lanes' co-rated masks.
 *  - A lane whose mask lacks the row contributes exactly +0.0 to each
 *    of its accumulators (values are zero-masked before the add).
 *    This is bitwise a no-op: an IEEE-754 accumulator that starts at
 *    +0.0 and only ever adds values can never become -0.0 under
 *    round-to-nearest, and x + (+0.0) == x for every x != -0.0.
 *  - The vector translation units are compiled with -ffp-contract=off
 *    and without -mfma, so the scalar mul+add pairs are never fused.
 *
 * Every entry point takes an explicit SimdLevel; a level above what
 * the binary or CPU provides falls back tier by tier (the dispatchers
 * re-check availability), so callers can pass activeSimdLevel()
 * unconditionally and tests can force any tier.
 */

#ifndef COOPER_CF_SIMD_KERNELS_HH
#define COOPER_CF_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "cf/sparse_matrix.hh"
#include "util/simd.hh"

namespace cooper {

enum class Similarity; // cf/item_knn.hh

namespace simd {

/** Widest lane count any tier uses (AVX-512: 8 doubles). */
constexpr std::size_t kMaxLanes = 8;

/** Column pairs (or kNN targets) the given tier packs per block. */
constexpr std::size_t
laneCount(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Avx512:
        return 8;
    case SimdLevel::Avx2:
        return 4;
    case SimdLevel::Scalar:
        break;
    }
    return 1;
}

/**
 * PR 3's scalar packed-column similarity, verbatim: the reference
 * every vector tier must reproduce bit-for-bit.
 */
double scalarPackedSimilarity(const double *va, const double *vb,
                              const std::uint64_t *ma,
                              const std::uint64_t *mb, std::size_t words,
                              Similarity kind, std::size_t min_overlap);

/**
 * Shared epilogue: one pair's accumulators to the similarity value.
 * Exactly the scalar kernel's tail, factored so every tier finishes
 * identically.
 */
double finishSimilarity(Similarity kind, std::size_t min_overlap,
                        std::size_t overlap, double dot, double na,
                        double nb, double sum_a, double sum_b);

/**
 * Similarity of column `a` against `count` columns `bs[0..count)`:
 * out[k] = sim(a, bs[k]), each bit-identical to the scalar kernel.
 * `count` may exceed one vector block; the tiers loop internally.
 */
void similarityBlock(const PackedColumns &packed, std::size_t a,
                     const std::size_t *bs, std::size_t count,
                     Similarity kind, std::size_t min_overlap,
                     SimdLevel level, double *out);

/**
 * Uncapped kNN accumulation for `count` target columns of one row.
 * `tri` is SimilarityTriangle's packed upper-triangle storage over
 * `items` columns (flat index a*(items-1) - a*(a-1)/2 + (b-a-1) for
 * a < b). For each target c = cs[k], over neighbor columns c2 with
 * bit c2 set in active[k] (ascending c2, c2 == c never set),
 * accumulate
 *   num[k] += sim(c, c2) * dev[c2];  den[k] += sim(c, c2);
 * bit-identical to the scalar per-cell gather in predictPass.
 *
 * @param active Per-target masks of usable neighbors (`words` 64-bit
 *        words each): row-known AND positive-similarity.
 * @param dev The row's deviation vector (rdev in predictPass).
 */
void knnAccumulateBlock(const double *tri, std::size_t items,
                        const std::size_t *cs, std::size_t count,
                        const std::uint64_t *const *active,
                        std::size_t words, const double *dev,
                        SimdLevel level, double *num, double *den);

// Per-tier entry points, used by the dispatchers above and directly
// by the differential tests. The AVX2/AVX-512 symbols exist only when
// the vector translation units are compiled in (COOPER_SIMD_X86).

void similarityBlockScalar(const PackedColumns &packed, std::size_t a,
                           const std::size_t *bs, std::size_t count,
                           Similarity kind, std::size_t min_overlap,
                           double *out);
void knnAccumulateBlockScalar(const double *tri, std::size_t items,
                              const std::size_t *cs, std::size_t count,
                              const std::uint64_t *const *active,
                              std::size_t words, const double *dev,
                              double *num, double *den);

#if defined(COOPER_SIMD_X86)
void similarityBlockAvx2(const PackedColumns &packed, std::size_t a,
                         const std::size_t *bs, std::size_t count,
                         Similarity kind, std::size_t min_overlap,
                         double *out);
void knnAccumulateBlockAvx2(const double *tri, std::size_t items,
                            const std::size_t *cs, std::size_t count,
                            const std::uint64_t *const *active,
                            std::size_t words, const double *dev,
                            double *num, double *den);
void similarityBlockAvx512(const PackedColumns &packed, std::size_t a,
                           const std::size_t *bs, std::size_t count,
                           Similarity kind, std::size_t min_overlap,
                           double *out);
void knnAccumulateBlockAvx512(const double *tri, std::size_t items,
                              const std::size_t *cs, std::size_t count,
                              const std::uint64_t *const *active,
                              std::size_t words, const double *dev,
                              double *num, double *den);
#endif

} // namespace simd

} // namespace cooper

#endif // COOPER_CF_SIMD_KERNELS_HH
