/**
 * @file
 * Item-based collaborative filtering, the paper's preference
 * predictor (implemented there with R's recommenderlab; reimplemented
 * here from scratch).
 *
 * Jobs play the role of consumers, candidate co-runners the role of
 * products, and measured penalties the role of ratings. Item-item
 * similarity captures that a co-runner which degrades one job tends to
 * degrade similar jobs, so a job's unknown penalty with co-runner y is
 * predicted from its known penalties with co-runners similar to y.
 */

#ifndef COOPER_CF_ITEM_KNN_HH
#define COOPER_CF_ITEM_KNN_HH

#include <cstddef>
#include <vector>

#include "cf/sparse_matrix.hh"

namespace cooper {

/** Item-item similarity measure. */
enum class Similarity
{
    Cosine,         //!< raw cosine over co-rated rows
    AdjustedCosine, //!< cosine after subtracting each row's mean
    Pearson,        //!< Pearson over co-rated rows
};

/** Predictor configuration. */
struct ItemKnnConfig
{
    Similarity similarity = Similarity::AdjustedCosine;

    /** Neighbors per prediction; 0 means use all items. */
    std::size_t neighbors = 0;

    /** Minimum co-rated rows for a similarity to count. */
    std::size_t minOverlap = 2;

    /**
     * Refinement iterations. Iteration 1 predicts unknowns from
     * observed cells only; later iterations recompute similarities on
     * the filled matrix and re-predict the originally unknown cells
     * (the paper reports one to three iterations suffice).
     */
    std::size_t iterations = 2;

    /**
     * Blend the item-based prediction with the same predictor run on
     * the transposed matrix. A colocation measurement is naturally
     * bidirectional — M[x][y] and M[y][x] come from the same run —
     * so the transpose view ("which victims does co-runner y hurt")
     * carries complementary structure and the blend is markedly more
     * accurate. Requires a square matrix; ignored otherwise.
     */
    bool bidirectional = true;

    /**
     * Worker threads for the similarity and prediction fills; 0 uses
     * the hardware, 1 runs serially. Every cell is computed
     * independently, so the filled matrix is identical for any value.
     */
    std::size_t threads = 1;
};

/**
 * Symmetric item-item similarity matrix in a flat upper-triangular
 * buffer: n*(n-1)/2 doubles for the pairs a < b, unit diagonal
 * implicit. Half the memory of the old nested-vector square and one
 * contiguous allocation, so the similarity fill writes (and the
 * predictor reads) without pointer chasing.
 */
class SimilarityTriangle
{
  public:
    explicit SimilarityTriangle(std::size_t items)
        : items_(items),
          data_(items > 1 ? items * (items - 1) / 2 : 0, 0.0)
    {}

    std::size_t items() const { return items_; }

    /** sim(a, b); 1 on the diagonal. */
    double at(std::size_t a, std::size_t b) const
    {
        return a == b ? 1.0 : data_[index(a, b)];
    }

    void set(std::size_t a, std::size_t b, double value)
    {
        data_[index(a, b)] = value;
    }

    /** Expand to the nested-vector square (tests, accuracy study). */
    std::vector<std::vector<double>> toNested() const;

    /** Packed upper-triangle storage: row a's cells (a, b) for b > a
     *  sit contiguously at rowOffset(a) (the SIMD kernels read and
     *  fill it directly). */
    const double *data() const { return data_.data(); }
    double *data() { return data_.data(); }

    /** Flat offset of cell (a, a + 1). */
    std::size_t rowOffset(std::size_t a) const
    {
        return a * (items_ - 1) - a * (a - 1) / 2;
    }

  private:
    /** Offset of the unordered pair {a, b}, a != b. */
    std::size_t index(std::size_t a, std::size_t b) const
    {
        if (a > b)
            std::swap(a, b);
        // Pairs ordered by (a, b): row a starts after the
        // sum_{i<a} (n-1-i) pairs of earlier rows.
        return a * (items_ - 1) - a * (a - 1) / 2 + (b - a - 1);
    }

    std::size_t items_;
    std::vector<double> data_;
};

/** Dense prediction result. */
struct Prediction
{
    /** Filled matrix: observed cells preserved, unknowns predicted. */
    std::vector<std::vector<double>> dense;

    /** Iterations actually performed. */
    std::size_t iterations = 0;

    /** Cells that had to fall back to row/column/global means. */
    std::size_t fallbackCells = 0;
};

/**
 * Item-based k-nearest-neighbor predictor.
 */
class ItemKnnPredictor
{
  public:
    explicit ItemKnnPredictor(ItemKnnConfig config = {});

    /**
     * Fill a sparse ratings matrix.
     *
     * @param ratings Sparse penalty observations (rows: jobs, columns:
     *        co-runners).
     * @return Dense matrix plus diagnostics.
     */
    Prediction predict(const SparseMatrix &ratings) const;

    /**
     * predict() with warm-started first-pass similarities.
     *
     * `pass1` (and, for the bidirectional blend, `pass1_transpose`)
     * replace the similarity triangle the first prediction pass would
     * otherwise compute from `ratings` (resp. its transpose). Both are
     * optional; passing nullptr recomputes as usual. Callers such as
     * the online IncrementalPredictor maintain these triangles across
     * sparse profile updates; a seed must be bit-identical to what
     * similarityTriangle(ratings) would return, in which case the
     * result is bit-identical to predict().
     */
    Prediction
    predictSeeded(const SparseMatrix &ratings,
                  const SimilarityTriangle *pass1,
                  const SimilarityTriangle *pass1_transpose) const;

    /**
     * Item-item similarity matrix over the known cells (exposed for
     * tests and the accuracy study). Nested-vector convenience view
     * of similarityTriangle().
     */
    std::vector<std::vector<double>>
    similarityMatrix(const SparseMatrix &ratings) const;

    /** The similarity matrix in its native flat triangular form. */
    SimilarityTriangle
    similarityTriangle(const SparseMatrix &ratings) const;

  private:
    /** Item-based prediction of one orientation (no blending). */
    Prediction predictOneView(const SparseMatrix &ratings,
                              const SimilarityTriangle *pass1) const;

    ItemKnnConfig config_;
};

/**
 * Recompute, in place, the entries of `sim` that a batch of ratings
 * edits may have changed, leaving every provably unaffected pair
 * untouched.
 *
 * `dirty_cols` / `dirty_rows` are 64-bit bitmasks (LSB of word 0 =
 * index 0) over the columns / rows of `ratings` that gained, lost, or
 * changed a cell since `sim` was last consistent with it. A pair
 * (a, b) is recomputed when either column is dirty, or — for the
 * adjusted-cosine measure, which centers on row means — when the two
 * columns are co-rated on a dirty row. The recomputation reuses the
 * exact packed kernel of the full fill, so after the call `sim` is
 * bit-identical to ItemKnnPredictor(config).similarityTriangle(
 * ratings).
 *
 * @return Number of pairs recomputed.
 */
std::size_t
updateSimilarityTriangle(const SparseMatrix &ratings,
                         const ItemKnnConfig &config,
                         SimilarityTriangle &sim,
                         const std::vector<std::uint64_t> &dirty_cols,
                         const std::vector<std::uint64_t> &dirty_rows);

/**
 * Extract a preference order from one row of a dense penalty matrix:
 * candidate co-runners sorted by increasing penalty (most preferred
 * first), excluding `self`.
 *
 * @param penalties Dense penalty row for one job.
 * @param self Index to exclude (a job does not co-run with itself).
 */
std::vector<std::size_t>
preferenceOrder(const std::vector<double> &penalties, std::size_t self);

} // namespace cooper

#endif // COOPER_CF_ITEM_KNN_HH
