/**
 * @file
 * Item-based collaborative filtering, the paper's preference
 * predictor (implemented there with R's recommenderlab; reimplemented
 * here from scratch).
 *
 * Jobs play the role of consumers, candidate co-runners the role of
 * products, and measured penalties the role of ratings. Item-item
 * similarity captures that a co-runner which degrades one job tends to
 * degrade similar jobs, so a job's unknown penalty with co-runner y is
 * predicted from its known penalties with co-runners similar to y.
 */

#ifndef COOPER_CF_ITEM_KNN_HH
#define COOPER_CF_ITEM_KNN_HH

#include <cstddef>
#include <vector>

#include "cf/sparse_matrix.hh"

namespace cooper {

/** Item-item similarity measure. */
enum class Similarity
{
    Cosine,         //!< raw cosine over co-rated rows
    AdjustedCosine, //!< cosine after subtracting each row's mean
    Pearson,        //!< Pearson over co-rated rows
};

/** Predictor configuration. */
struct ItemKnnConfig
{
    Similarity similarity = Similarity::AdjustedCosine;

    /** Neighbors per prediction; 0 means use all items. */
    std::size_t neighbors = 0;

    /** Minimum co-rated rows for a similarity to count. */
    std::size_t minOverlap = 2;

    /**
     * Refinement iterations. Iteration 1 predicts unknowns from
     * observed cells only; later iterations recompute similarities on
     * the filled matrix and re-predict the originally unknown cells
     * (the paper reports one to three iterations suffice).
     */
    std::size_t iterations = 2;

    /**
     * Blend the item-based prediction with the same predictor run on
     * the transposed matrix. A colocation measurement is naturally
     * bidirectional — M[x][y] and M[y][x] come from the same run —
     * so the transpose view ("which victims does co-runner y hurt")
     * carries complementary structure and the blend is markedly more
     * accurate. Requires a square matrix; ignored otherwise.
     */
    bool bidirectional = true;

    /**
     * Worker threads for the similarity and prediction fills; 0 uses
     * the hardware, 1 runs serially. Every cell is computed
     * independently, so the filled matrix is identical for any value.
     */
    std::size_t threads = 1;
};

/**
 * Symmetric item-item similarity matrix in a flat upper-triangular
 * buffer: n*(n-1)/2 doubles for the pairs a < b, unit diagonal
 * implicit. Half the memory of the old nested-vector square and one
 * contiguous allocation, so the similarity fill writes (and the
 * predictor reads) without pointer chasing.
 */
class SimilarityTriangle
{
  public:
    explicit SimilarityTriangle(std::size_t items)
        : items_(items),
          data_(items > 1 ? items * (items - 1) / 2 : 0, 0.0)
    {}

    std::size_t items() const { return items_; }

    /** sim(a, b); 1 on the diagonal. */
    double at(std::size_t a, std::size_t b) const
    {
        return a == b ? 1.0 : data_[index(a, b)];
    }

    void set(std::size_t a, std::size_t b, double value)
    {
        data_[index(a, b)] = value;
    }

    /** Expand to the nested-vector square (tests, accuracy study). */
    std::vector<std::vector<double>> toNested() const;

  private:
    /** Offset of the unordered pair {a, b}, a != b. */
    std::size_t index(std::size_t a, std::size_t b) const
    {
        if (a > b)
            std::swap(a, b);
        // Pairs ordered by (a, b): row a starts after the
        // sum_{i<a} (n-1-i) pairs of earlier rows.
        return a * (items_ - 1) - a * (a - 1) / 2 + (b - a - 1);
    }

    std::size_t items_;
    std::vector<double> data_;
};

/** Dense prediction result. */
struct Prediction
{
    /** Filled matrix: observed cells preserved, unknowns predicted. */
    std::vector<std::vector<double>> dense;

    /** Iterations actually performed. */
    std::size_t iterations = 0;

    /** Cells that had to fall back to row/column/global means. */
    std::size_t fallbackCells = 0;
};

/**
 * Item-based k-nearest-neighbor predictor.
 */
class ItemKnnPredictor
{
  public:
    explicit ItemKnnPredictor(ItemKnnConfig config = {});

    /**
     * Fill a sparse ratings matrix.
     *
     * @param ratings Sparse penalty observations (rows: jobs, columns:
     *        co-runners).
     * @return Dense matrix plus diagnostics.
     */
    Prediction predict(const SparseMatrix &ratings) const;

    /**
     * Item-item similarity matrix over the known cells (exposed for
     * tests and the accuracy study). Nested-vector convenience view
     * of similarityTriangle().
     */
    std::vector<std::vector<double>>
    similarityMatrix(const SparseMatrix &ratings) const;

    /** The similarity matrix in its native flat triangular form. */
    SimilarityTriangle
    similarityTriangle(const SparseMatrix &ratings) const;

  private:
    /** Item-based prediction of one orientation (no blending). */
    Prediction predictOneView(const SparseMatrix &ratings) const;

    ItemKnnConfig config_;
};

/**
 * Extract a preference order from one row of a dense penalty matrix:
 * candidate co-runners sorted by increasing penalty (most preferred
 * first), excluding `self`.
 *
 * @param penalties Dense penalty row for one job.
 * @param self Index to exclude (a job does not co-run with itself).
 */
std::vector<std::size_t>
preferenceOrder(const std::vector<double> &penalties, std::size_t self);

} // namespace cooper

#endif // COOPER_CF_ITEM_KNN_HH
