/**
 * @file
 * Observability knobs threaded through the framework and CLI.
 *
 * Kept dependency-free so configuration structs anywhere in the tree
 * (ExecutionConfig, FrameworkConfig, the CLI) can embed an ObsConfig
 * without pulling in the metrics or tracing machinery.
 */

#ifndef COOPER_OBS_CONFIG_HH
#define COOPER_OBS_CONFIG_HH

#include <string>

namespace cooper {

/**
 * What the observability layer records and where it lands.
 *
 * Both collectors are off by default: with neither enabled no session
 * is installed and every instrumentation site reduces to one untaken
 * branch on a null pointer (the "no-op sink"), so production runs pay
 * nothing. Enabling them never perturbs results — instrumentation
 * reads clocks and bumps counters but touches no RNG stream and no
 * floating-point value that flows into an output
 * (tests/test_determinism.cc asserts this bit-for-bit).
 */
struct ObsConfig
{
    /** Collect counters, gauges, and phase histograms. */
    bool metrics = false;

    /** Collect Chrome-trace phase spans. */
    bool tracing = false;

    /** Write the metrics JSON here when non-empty (implies metrics). */
    std::string metricsOut;

    /** Write the Chrome-trace JSON here when non-empty (implies
     *  tracing). */
    std::string traceOut;

    /** True when any collector is requested. */
    bool
    enabled() const
    {
        return metrics || tracing || !metricsOut.empty() ||
               !traceOut.empty();
    }

    /** Metrics requested, via the flag or an output path. */
    bool
    metricsEnabled() const
    {
        return metrics || !metricsOut.empty();
    }

    /** Tracing requested, via the flag or an output path. */
    bool
    tracingEnabled() const
    {
        return tracing || !traceOut.empty();
    }
};

} // namespace cooper

#endif // COOPER_OBS_CONFIG_HH
