/**
 * @file
 * Minimal JSON reader for validating the observability outputs.
 *
 * The repo deliberately has no external JSON dependency; this parser
 * exists so the golden-trace tests and the `cooper_trace_check` CMake
 * step can verify that emitted metrics/trace files are well-formed
 * JSON with the expected shape, without shipping a Python validator.
 * It supports the full JSON value grammar the emitters produce
 * (objects, arrays, strings with basic escapes, numbers, booleans,
 * null) and rejects trailing garbage.
 */

#ifndef COOPER_OBS_JSON_HH
#define COOPER_OBS_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cooper {

/** Parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;                //!< Array
    std::map<std::string, JsonValue> members;    //!< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member, or nullptr when absent / not an object. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse a complete JSON document; raises FatalError on malformed
 *  input (with a byte offset in the message). */
JsonValue parseJson(const std::string &text);

/** Parse the JSON document in the file at `path`; raises FatalError
 *  on I/O failure or malformed input. */
JsonValue parseJsonFile(const std::string &path);

} // namespace cooper

#endif // COOPER_OBS_JSON_HH
