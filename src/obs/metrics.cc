#include "metrics.hh"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/error.hh"
#include "util/table.hh"

namespace cooper {

namespace {

/** Histogram ids are process-unique so thread-local shard caches can
 *  never confuse a dead histogram with a new one at the same address. */
std::atomic<std::uint64_t> next_histogram_id{1};

/** JSON string escaping for metric names (quotes, backslash,
 *  control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Round-trippable JSON number; non-finite values become null. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

// --------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------

/**
 * One recording thread's slice of a histogram. Written by exactly one
 * thread; read only at snapshot time, after recorders have quiesced.
 */
struct Histogram::Shard
{
    OnlineStats stats;

    /** Exact sum of quantize(value) over the shard's observations.
     *  128 bits so even nanosecond-scale values cannot overflow. */
    __int128 scaledSum = 0;

    std::vector<std::uint64_t> buckets;
};

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      id_(next_histogram_id.fetch_add(1, std::memory_order_relaxed))
{
    fatalIf(edges_.empty(), "Histogram: need at least one bucket edge");
    for (std::size_t i = 1; i < edges_.size(); ++i)
        fatalIf(edges_[i] <= edges_[i - 1],
                "Histogram: bucket edges must be strictly increasing (",
                edges_[i - 1], " then ", edges_[i], ")");
}

Histogram::~Histogram() = default;

std::int64_t
Histogram::quantize(double value)
{
    const double scaled = value * scale();
    // Saturate outside the int64 range; the comparison is also false
    // for NaN, which quantizes to zero.
    constexpr double kLimit = 9.2e18;
    if (!(scaled > -kLimit && scaled < kLimit)) {
        if (scaled > 0.0)
            return std::numeric_limits<std::int64_t>::max();
        if (scaled < 0.0)
            return std::numeric_limits<std::int64_t>::min();
        return 0;
    }
    return std::llround(scaled);
}

Histogram::Shard &
Histogram::localShard()
{
    // Keyed by process-unique id: a stale entry for a destroyed
    // histogram is never hit again, so the dangling pointer it holds
    // is never dereferenced.
    thread_local std::unordered_map<std::uint64_t, Shard *> cache;
    const auto it = cache.find(id_);
    if (it != cache.end())
        return *it->second;

    std::lock_guard<std::mutex> lock(shardMutex_);
    shards_.push_back(std::make_unique<Shard>());
    Shard *shard = shards_.back().get();
    shard->buckets.assign(edges_.size() + 1, 0);
    cache.emplace(id_, shard);
    return *shard;
}

void
Histogram::observe(double value)
{
    Shard &shard = localShard();
    shard.stats.add(value);
    shard.scaledSum += quantize(value);
    // First bucket whose upper edge admits the value; everything
    // above the last edge lands in the overflow slot.
    const auto bucket = static_cast<std::size_t>(
        std::lower_bound(edges_.begin(), edges_.end(), value) -
        edges_.begin());
    ++shard.buckets[bucket];
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(shardMutex_);

    HistogramSnapshot out;
    out.edges = edges_;
    out.buckets.assign(edges_.size() + 1, 0);

    OnlineStats folded;
    __int128 total = 0;
    // Shard order is registration order; every field below except the
    // merged stddev is order-independent anyway (integers, min/max,
    // and an exact fixed-point sum).
    for (const auto &shard : shards_) {
        folded.merge(shard->stats);
        total += shard->scaledSum;
        for (std::size_t b = 0; b < out.buckets.size(); ++b)
            out.buckets[b] += shard->buckets[b];
    }

    out.count = folded.count();
    if (out.count > 0) {
        out.sum = static_cast<double>(total) / scale();
        out.mean = out.sum / static_cast<double>(out.count);
        out.min = folded.min();
        out.max = folded.max();
        out.stddev = folded.stddev();
    }
    return out;
}

// --------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------

struct MetricsRegistry::Entry
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    Kind kind;
    std::unique_ptr<class Counter> counter;
    std::unique_ptr<class Gauge> gauge;
    std::unique_ptr<class Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = entries_[name];
    if (!slot) {
        slot = std::make_unique<Entry>();
        slot->kind = Entry::Kind::Counter;
        slot->counter = std::make_unique<Counter>();
    }
    fatalIf(slot->kind != Entry::Kind::Counter,
            "MetricsRegistry: metric '", name, "' is not a counter");
    return *slot->counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = entries_[name];
    if (!slot) {
        slot = std::make_unique<Entry>();
        slot->kind = Entry::Kind::Gauge;
        slot->gauge = std::make_unique<Gauge>();
    }
    fatalIf(slot->kind != Entry::Kind::Gauge,
            "MetricsRegistry: metric '", name, "' is not a gauge");
    return *slot->gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = entries_[name];
    if (!slot) {
        slot = std::make_unique<Entry>();
        slot->kind = Entry::Kind::Histogram;
        slot->histogram = std::make_unique<Histogram>(
            edges.empty() ? defaultLatencyEdges() : std::move(edges));
        return *slot->histogram;
    }
    fatalIf(slot->kind != Entry::Kind::Histogram,
            "MetricsRegistry: metric '", name, "' is not a histogram");
    fatalIf(!edges.empty() && edges != slot->histogram->edges(),
            "MetricsRegistry: histogram '", name,
            "' re-registered with different bucket edges");
    return *slot->histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    // entries_ is a std::map, so iteration (and therefore every
    // rendered report) is name-sorted and deterministic.
    for (const auto &[name, entry] : entries_) {
        switch (entry->kind) {
          case Entry::Kind::Counter:
            out.counters.emplace_back(name, entry->counter->value());
            break;
          case Entry::Kind::Gauge:
            out.gauges.emplace_back(name, entry->gauge->value());
            break;
          case Entry::Kind::Histogram:
            out.histograms.emplace_back(name,
                                        entry->histogram->snapshot());
            break;
        }
    }
    return out;
}

Table
MetricsRegistry::toTable() const
{
    const MetricsSnapshot snap = snapshot();
    Table table({"metric", "kind", "count", "value", "min", "max",
                 "stddev"});
    for (const auto &[name, value] : snap.counters)
        table.addRow({name, "counter",
                      Table::num(static_cast<long long>(value)),
                      Table::num(static_cast<long long>(value)), "-",
                      "-", "-"});
    for (const auto &[name, value] : snap.gauges)
        table.addRow({name, "gauge", "-", Table::num(value, 6), "-",
                      "-", "-"});
    for (const auto &[name, h] : snap.histograms)
        table.addRow({name, "histogram",
                      Table::num(static_cast<long long>(h.count)),
                      Table::num(h.mean, 6), Table::num(h.min, 6),
                      Table::num(h.max, 6), Table::num(h.stddev, 6)});
    return table;
}

std::string
MetricsRegistry::toJson() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i)
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(snap.counters[i].first)
           << "\": " << snap.counters[i].second;
    os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i)
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(snap.gauges[i].first)
           << "\": " << jsonNumber(snap.gauges[i].second);
    os << (snap.gauges.empty() ? "" : "\n  ")
       << "},\n  \"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto &[name, h] = snap.histograms[i];
        os << (i ? "," : "") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count
           << ", \"sum\": " << jsonNumber(h.sum)
           << ", \"mean\": " << jsonNumber(h.mean)
           << ", \"min\": " << jsonNumber(h.min)
           << ", \"max\": " << jsonNumber(h.max)
           << ", \"stddev\": " << jsonNumber(h.stddev)
           << ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            const std::string le = b < h.edges.size()
                                       ? jsonNumber(h.edges[b])
                                       : std::string("\"inf\"");
            os << (b ? ", " : "") << "{\"le\": " << le
               << ", \"count\": " << h.buckets[b] << "}";
        }
        os << "]}";
    }
    os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "MetricsRegistry: cannot open '", path,
            "' for writing");
    out << toJson();
    fatalIf(!out, "MetricsRegistry: write to '", path, "' failed");
}

std::vector<double>
MetricsRegistry::defaultLatencyEdges()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
}

} // namespace cooper
