#include "json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hh"

namespace cooper {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent parser over an in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text)
        : text_(text)
    {}

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipSpace();
        fail(pos_ != text_.size(), "trailing characters");
        return value;
    }

  private:
    void
    fail(bool condition, const char *what) const
    {
        fatalIf(condition, "parseJson: ", what, " at offset ", pos_);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        fail(pos_ >= text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        fail(peek() != c, "unexpected character");
        ++pos_;
    }

    bool
    consumeKeyword(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue out;
        out.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            out.members.emplace(std::move(key.text), parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return out;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue out;
        out.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        while (true) {
            out.items.push_back(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return out;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue out;
        out.kind = JsonValue::Kind::String;
        while (true) {
            fail(pos_ >= text_.size(), "unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.text += c;
                continue;
            }
            fail(pos_ >= text_.size(), "unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.text += esc;
                break;
              case 'n':
                out.text += '\n';
                break;
              case 't':
                out.text += '\t';
                break;
              case 'r':
                out.text += '\r';
                break;
              case 'b':
                out.text += '\b';
                break;
              case 'f':
                out.text += '\f';
                break;
              case 'u': {
                fail(pos_ + 4 > text_.size(), "truncated \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                fail(end != hex.c_str() + 4, "malformed \\u escape");
                pos_ += 4;
                // The emitters only escape control characters; decode
                // the Latin-1 range and substitute elsewhere.
                out.text += code < 0x100
                                ? static_cast<char>(code)
                                : '?';
                break;
              }
              default:
                fail(true, "unknown escape");
            }
        }
    }

    JsonValue
    parseBool()
    {
        skipSpace();
        JsonValue out;
        out.kind = JsonValue::Kind::Bool;
        if (consumeKeyword("true")) {
            out.boolean = true;
            return out;
        }
        if (consumeKeyword("false")) {
            out.boolean = false;
            return out;
        }
        fail(true, "expected boolean");
        return out; // unreachable
    }

    JsonValue
    parseNull()
    {
        skipSpace();
        fail(!consumeKeyword("null"), "expected null");
        JsonValue out;
        out.kind = JsonValue::Kind::Null;
        return out;
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                c == '-' || c == '+' || c == '.' || c == 'e' ||
                c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        fail(pos_ == start, "expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        fail(end != token.c_str() + token.size(), "malformed number");
        JsonValue out;
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    Parser parser(text);
    return parser.document();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "parseJsonFile: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalIf(in.bad(), "parseJsonFile: read failure on '", path, "'");
    const std::string text = buffer.str();
    fatalIf(text.find_first_not_of(" \t\r\n") == std::string::npos,
            "parseJsonFile: '", path, "' is empty");
    return parseJson(text);
}

} // namespace cooper
