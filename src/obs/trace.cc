#include "trace.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "util/error.hh"

namespace cooper {

namespace {

std::string
traceNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Escape a span name for embedding in a JSON string. */
std::string
traceEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

} // namespace

Tracer::Tracer()
    : start_(std::chrono::steady_clock::now())
{}

double
Tracer::nowMicros() const
{
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
}

int
Tracer::threadIdLocked()
{
    const std::uint64_t self = std::hash<std::thread::id>{}(
        std::this_thread::get_id());
    for (const auto &[hash, id] : threadIds_)
        if (hash == self)
            return id;
    const int id = static_cast<int>(threadIds_.size());
    threadIds_.emplace_back(self, id);
    return id;
}

void
Tracer::complete(std::string name, std::string category,
                 double ts_micros, double dur_micros, int depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event;
    event.name = std::move(name);
    event.category = std::move(category);
    event.tsMicros = ts_micros;
    event.durMicros = dur_micros;
    event.tid = threadIdLocked();
    event.depth = depth;
    events_.push_back(std::move(event));
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::string
Tracer::toJson() const
{
    const auto events = this->events();
    std::ostringstream os;
    os << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        os << (i ? ",\n" : "\n") << "  {\"name\": \""
           << traceEscape(e.name) << "\", \"cat\": \""
           << traceEscape(e.category) << "\", \"ph\": \"X\", \"ts\": "
           << traceNumber(e.tsMicros)
           << ", \"dur\": " << traceNumber(e.durMicros)
           << ", \"pid\": 1, \"tid\": " << e.tid
           << ", \"args\": {\"depth\": " << e.depth << "}}";
    }
    os << (events.empty() ? "" : "\n")
       << "], \"displayTimeUnit\": \"ms\"}\n";
    return os.str();
}

void
Tracer::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "Tracer: cannot open '", path, "' for writing");
    out << toJson();
    fatalIf(!out, "Tracer: write to '", path, "' failed");
}

} // namespace cooper
