/**
 * @file
 * The observability session: wiring between instrumentation sites and
 * the metrics/tracing collectors.
 *
 * Instrumented code never owns a collector. It asks for the process's
 * installed session through obsMetrics()/obsTracer(), which return
 * nullptr when observability is off — the entire cost of a disabled
 * site is one null check, and RAII helpers (TraceSpan, ScopedTimer)
 * fold that check into their constructors so call sites stay
 * one-liners. A session is installed for a scope with ObsScope,
 * typically by the CLI or a bench harness; library code (for example
 * CooperFramework::runEpoch, honoring ExecutionConfig::obs) installs
 * one only when none is active, so an outer scope always wins and
 * nested components feed the same collectors.
 *
 * Recording is thread-safe (see metrics.hh for the shard discipline);
 * installing/uninstalling sessions is not meant to race with recording
 * and follows the repo's phase structure: install, run, fold, write.
 */

#ifndef COOPER_OBS_OBS_HH
#define COOPER_OBS_OBS_HH

#include <memory>
#include <optional>
#include <string>

#include "obs/config.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace cooper {

/**
 * One observability run: the collectors requested by an ObsConfig.
 */
class ObsSession
{
  public:
    explicit ObsSession(ObsConfig config);

    const ObsConfig &config() const { return config_; }

    /** The session's registry, or nullptr when metrics are off. */
    MetricsRegistry *metrics();

    /** The session's tracer, or nullptr when tracing is off. */
    Tracer *tracer();

    /** Write metricsOut / traceOut if configured. */
    void writeOutputs() const;

  private:
    ObsConfig config_;
    std::optional<MetricsRegistry> metrics_;
    std::optional<Tracer> tracer_;
};

/** The installed session's registry; nullptr when observability is
 *  off (the no-op sink). */
MetricsRegistry *obsMetrics();

/** The installed session's tracer; nullptr when observability is
 *  off. */
Tracer *obsTracer();

/**
 * RAII installation of an ObsSession for the current scope.
 *
 * A scope built from a disabled config, or while another session is
 * already installed, is passive: it installs nothing, owns nothing,
 * and session() reports the active session (if any) so callers can
 * still render tables. An active scope uninstalls on destruction
 * after writing the configured outputs.
 */
class ObsScope
{
  public:
    explicit ObsScope(const ObsConfig &config);
    ~ObsScope();

    ObsScope(const ObsScope &) = delete;
    ObsScope &operator=(const ObsScope &) = delete;

    /** The session observable inside this scope; may be an outer
     *  scope's, or nullptr when observability is off everywhere. */
    ObsSession *session() const;

    /** True when this scope owns the installed session. */
    bool active() const { return owned_ != nullptr; }

  private:
    std::unique_ptr<ObsSession> owned_;
};

/**
 * RAII Chrome-trace span. No-op (no clock read) when tracing is off.
 *
 * Spans on one thread nest: each records its depth so the emitted
 * trace preserves the call structure.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, const char *category = "cooper");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Tracer *tracer_ = nullptr;
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    double beginMicros_ = 0.0;
    int depth_ = 0;
};

/**
 * RAII phase timer feeding `<metric>` as a duration histogram (in
 * seconds, defaultLatencyEdges buckets). No-op when metrics are off.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *metric);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    MetricsRegistry *registry_ = nullptr;
    const char *metric_ = nullptr;
    std::chrono::steady_clock::time_point begin_;
};

} // namespace cooper

#endif // COOPER_OBS_OBS_HH
