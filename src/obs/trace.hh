/**
 * @file
 * Phase tracing in Chrome trace format.
 *
 * The tracer collects complete ("ph": "X") events — one per finished
 * span — and renders the standard {"traceEvents": [...]} JSON object
 * that chrome://tracing and Perfetto load directly. Events carry the
 * span's nesting depth (args.depth) so tests can assert structural
 * properties without depending on wall-clock values, which are the one
 * deliberately nondeterministic output in the repo.
 */

#ifndef COOPER_OBS_TRACE_HH
#define COOPER_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cooper {

/** One finished span. */
struct TraceEvent
{
    std::string name;
    std::string category;
    double tsMicros = 0.0;  //!< start, microseconds since session start
    double durMicros = 0.0; //!< duration in microseconds
    int tid = 0;            //!< tracer-assigned small thread id
    int depth = 0;          //!< 1 = outermost span on its thread
};

/**
 * Thread-safe collector of trace events.
 *
 * Recording appends under a mutex; spans are phase-grained (dozens per
 * epoch, not per-iteration), so contention is irrelevant. Thread ids
 * are assigned densely in first-record order.
 */
class Tracer
{
  public:
    Tracer();

    /** Microseconds elapsed since the tracer was constructed. */
    double nowMicros() const;

    /** Record a finished span. */
    void complete(std::string name, std::string category,
                  double ts_micros, double dur_micros, int depth);

    /** Events recorded so far, in completion order. */
    std::vector<TraceEvent> events() const;

    /** Chrome trace format: {"traceEvents": [...],
     *  "displayTimeUnit": "ms"}. */
    std::string toJson() const;

    /** Write toJson() to `path`; raises FatalError on I/O failure. */
    void writeJson(const std::string &path) const;

  private:
    /** Dense id for the calling thread; callers hold `mutex_`. */
    int threadIdLocked();

    const std::chrono::steady_clock::time_point start_;

    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::vector<std::pair<std::uint64_t, int>> threadIds_;
};

} // namespace cooper

#endif // COOPER_OBS_TRACE_HH
