#include "obs.hh"

#include <atomic>

namespace cooper {

namespace {

/** The process's installed session; nullptr = observability off. */
std::atomic<ObsSession *> g_session{nullptr};

/** Per-thread span nesting depth (one session at a time, so a single
 *  counter per thread suffices). */
thread_local int tl_span_depth = 0;

} // namespace

ObsSession::ObsSession(ObsConfig config)
    : config_(std::move(config))
{
    if (config_.metricsEnabled())
        metrics_.emplace();
    if (config_.tracingEnabled())
        tracer_.emplace();
}

MetricsRegistry *
ObsSession::metrics()
{
    return metrics_ ? &*metrics_ : nullptr;
}

Tracer *
ObsSession::tracer()
{
    return tracer_ ? &*tracer_ : nullptr;
}

void
ObsSession::writeOutputs() const
{
    if (!config_.metricsOut.empty() && metrics_)
        metrics_->writeJson(config_.metricsOut);
    if (!config_.traceOut.empty() && tracer_)
        tracer_->writeJson(config_.traceOut);
}

MetricsRegistry *
obsMetrics()
{
    ObsSession *session = g_session.load(std::memory_order_acquire);
    return session ? session->metrics() : nullptr;
}

Tracer *
obsTracer()
{
    ObsSession *session = g_session.load(std::memory_order_acquire);
    return session ? session->tracer() : nullptr;
}

ObsScope::ObsScope(const ObsConfig &config)
{
    if (!config.enabled())
        return;
    // An outer scope wins: nested components feed its collectors
    // rather than shadowing them with a second session.
    if (g_session.load(std::memory_order_acquire) != nullptr)
        return;
    owned_ = std::make_unique<ObsSession>(config);
    g_session.store(owned_.get(), std::memory_order_release);
}

ObsScope::~ObsScope()
{
    if (!owned_)
        return;
    owned_->writeOutputs();
    g_session.store(nullptr, std::memory_order_release);
}

ObsSession *
ObsScope::session() const
{
    return g_session.load(std::memory_order_acquire);
}

TraceSpan::TraceSpan(const char *name, const char *category)
{
    Tracer *tracer = obsTracer();
    if (tracer == nullptr)
        return;
    tracer_ = tracer;
    name_ = name;
    category_ = category;
    depth_ = ++tl_span_depth;
    beginMicros_ = tracer->nowMicros();
}

TraceSpan::~TraceSpan()
{
    if (tracer_ == nullptr)
        return;
    const double end = tracer_->nowMicros();
    tracer_->complete(name_, category_, beginMicros_,
                      end - beginMicros_, depth_);
    --tl_span_depth;
}

ScopedTimer::ScopedTimer(const char *metric)
{
    MetricsRegistry *registry = obsMetrics();
    if (registry == nullptr)
        return;
    registry_ = registry;
    metric_ = metric;
    begin_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (registry_ == nullptr)
        return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin_;
    registry_->histogram(metric_).observe(elapsed.count());
}

} // namespace cooper
