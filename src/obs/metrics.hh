/**
 * @file
 * Thread-safe metrics registry: counters, gauges, and fixed-bucket
 * histograms with deterministically folded per-thread shards.
 *
 * The registry extends the repo's parallelism contract — "scheduling
 * freedom, arithmetic rigidity" (util/thread_pool.hh) — to
 * observation. Any thread may record into any metric without locking
 * the hot path, yet a snapshot of the same multiset of observations is
 * bit-identical no matter how many threads recorded it or how the work
 * was interleaved:
 *
 *  - Counters are single relaxed atomics; integer addition is exact
 *    and commutative.
 *  - Histograms shard per recording thread. A shard is written by
 *    exactly one thread (no locks, no false sharing with other
 *    recorders) and the fold walks shards in registration order.
 *    Every folded field is order-independent by construction: bucket
 *    tallies and counts are integers, min/max commute, and the value
 *    sum is accumulated in 2^-21 fixed point (quantize once per
 *    observation, then exact integer addition), so the reported sum
 *    and mean round identically for every thread count. Only the
 *    folded stddev — merged through stats/online.hh — carries the
 *    usual last-bit sensitivity to partitioning.
 *
 * Snapshots require quiescence: take them after the parallel region
 * that recorded (ThreadPool::run joins before returning, which
 * establishes the necessary happens-before). Recording concurrently
 * with snapshot() is a race, the same rule as every other reduction in
 * the repo.
 */

#ifndef COOPER_OBS_METRICS_HH
#define COOPER_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/online.hh"

namespace cooper {

class Table;

/** Monotonic event count; exact under any concurrency. */
class Counter
{
  public:
    /** Add `delta` events (relaxed; ordering comes from the caller's
     *  region join). */
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value (population size, density, ...). */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Folded view of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;  //!< fixed-point-exact over quantized values
    double mean = 0.0; //!< sum / count; bit-deterministic
    double min = 0.0;  //!< 0 when count == 0
    double max = 0.0;  //!< 0 when count == 0
    double stddev = 0.0; //!< via OnlineStats merges; last-bit advisory

    /** Upper bucket edges; buckets[i] counts values <= edges[i].
     *  buckets.back() (one slot past the last edge) is the overflow
     *  bucket. */
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;
};

/**
 * Fixed-bucket histogram with lock-free per-thread shards.
 *
 * observe() touches only the calling thread's shard (acquired once
 * and cached thread-locally), so concurrent recorders never contend.
 * snapshot() folds shards in registration order; see the file comment
 * for which fields are bit-deterministic.
 */
class Histogram
{
  public:
    /** @param edges Strictly increasing upper bucket edges; at least
     *         one. Values above the last edge land in the overflow
     *         bucket. */
    explicit Histogram(std::vector<double> edges);

    ~Histogram();

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one observation into the calling thread's shard. */
    void observe(double value);

    /** Fold all shards; callers must be quiesced (see file comment). */
    HistogramSnapshot snapshot() const;

    const std::vector<double> &edges() const { return edges_; }

    /**
     * Fixed-point quantization applied to each observation before the
     * exact integer sum: round-to-nearest at 2^-21 (about 5e-7)
     * resolution. Exposed so tests can assert the exact contract.
     */
    static std::int64_t quantize(double value);

    /** Inverse scale of quantize(). */
    static double scale() { return 2097152.0; } // 2^21

  private:
    struct Shard;

    /** The calling thread's shard, registering one on first use. */
    Shard &localShard();

    const std::vector<double> edges_;

    /** Distinguishes this histogram in thread-local shard caches even
     *  after address reuse. */
    const std::uint64_t id_;

    /** Guards shard registration and snapshot, never observe(). */
    mutable std::mutex shardMutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** Point-in-time view of every metric, ordered by name. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/**
 * Named metric registry.
 *
 * Lookup is a mutex-guarded map access — hoist the returned reference
 * out of hot loops — and the returned references stay valid for the
 * registry's lifetime. Metric kinds share a namespace: registering
 * "x" as a counter and again as a gauge is a user error.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The counter named `name`, created on first use. */
    Counter &counter(const std::string &name);

    /** The gauge named `name`, created on first use. */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram named `name`, created on first use with `edges`
     * (defaultLatencyEdges() when omitted). Later calls return the
     * existing histogram; passing different non-empty edges for an
     * existing name is fatal.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges = {});

    /** Snapshot every metric, each kind sorted by name. */
    MetricsSnapshot snapshot() const;

    /** Flat metrics table (metric, kind, count, value, min, max,
     *  stddev) for terminal reporting. */
    Table toTable() const;

    /** JSON object {"counters": {...}, "gauges": {...},
     *  "histograms": {...}}. */
    std::string toJson() const;

    /** Write toJson() to `path`; raises FatalError on I/O failure. */
    void writeJson(const std::string &path) const;

    /**
     * Log-spaced duration edges in seconds (1 us .. 10 s), the default
     * for phase-timing histograms.
     */
    static std::vector<double> defaultLatencyEdges();

  private:
    struct Entry;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Entry>> entries_;
};

} // namespace cooper

#endif // COOPER_OBS_METRICS_HH
