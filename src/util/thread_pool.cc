#include "thread_pool.hh"

#include "error.hh"

namespace cooper {

namespace {

/** Set while the current thread executes a region task. */
thread_local bool tl_in_task = false;

/** RAII guard for tl_in_task (exception-safe restore). */
struct InTaskGuard
{
    InTaskGuard() { tl_in_task = true; }
    ~InTaskGuard() { tl_in_task = false; }
};

std::size_t
defaultWidth()
{
    // Floor of two: even single-core machines get one real worker, so
    // the concurrent code paths (and their TSan coverage) are always
    // exercised. Results are thread-count independent by design, so
    // the mild oversubscription is pure scheduling.
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(2, hw);
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t width = threads == 0 ? defaultWidth() : threads;
    workers_.reserve(width > 0 ? width - 1 : 0);
    for (std::size_t i = 0; i + 1 < width; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::inTask()
{
    return tl_in_task;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        if (task_ == nullptr || entered_ >= participants_)
            continue;
        ++entered_;
        ++working_;
        const auto *task = task_;
        const std::size_t count = taskCount_;
        lock.unlock();

        std::exception_ptr err;
        {
            InTaskGuard guard;
            for (;;) {
                const std::size_t i =
                    nextTask_.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    break;
                try {
                    (*task)(i);
                } catch (...) {
                    err = std::current_exception();
                    break;
                }
            }
        }

        lock.lock();
        if (err) {
            if (!error_)
                error_ = err;
            // Cancel indices nobody has claimed yet.
            nextTask_.store(count, std::memory_order_relaxed);
        }
        if (--working_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::run(std::size_t tasks, std::size_t threads,
                const std::function<void(std::size_t)> &task)
{
    if (tasks == 0)
        return;

    // Inline execution: explicit serial request, no workers to help,
    // or a nested call from inside a task (waiting on the pool from a
    // pool thread would deadlock it).
    if (threads <= 1 || workers_.empty() || tl_in_task) {
        for (std::size_t i = 0; i < tasks; ++i)
            task(i);
        return;
    }

    std::lock_guard<std::mutex> region(runMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        taskCount_ = tasks;
        nextTask_.store(0, std::memory_order_relaxed);
        participants_ = std::min(threads - 1, workers_.size());
        entered_ = 0;
        error_ = nullptr;
        ++generation_;
    }
    wake_.notify_all();

    // The calling thread participates alongside the workers.
    std::exception_ptr err;
    {
        InTaskGuard guard;
        for (;;) {
            const std::size_t i =
                nextTask_.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks)
                break;
            try {
                task(i);
            } catch (...) {
                err = std::current_exception();
                break;
            }
        }
    }

    std::unique_lock<std::mutex> lock(mutex_);
    if (err) {
        if (!error_)
            error_ = err;
        nextTask_.store(tasks, std::memory_order_relaxed);
    }
    done_.wait(lock, [&] { return working_ == 0; });
    task_ = nullptr;
    taskCount_ = 0;
    const std::exception_ptr first = error_;
    error_ = nullptr;
    lock.unlock();

    if (first)
        std::rethrow_exception(first);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

std::size_t
resolveThreads(std::size_t threads)
{
    return threads == 0 ? ThreadPool::global().threadCount() : threads;
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t threads,
            const std::function<void(std::size_t)> &body)
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    const std::size_t width = resolveThreads(threads);
    if (width <= 1 || n == 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    // Iterations are independent, so chunking here is purely a
    // dispatch-overhead knob: a few chunks per thread balances load
    // without an atomic increment per index.
    const std::size_t grain =
        std::max<std::size_t>(1, n / (width * 8));
    const std::size_t chunks = (n + grain - 1) / grain;
    ThreadPool::global().run(chunks, width, [&](std::size_t c) {
        const std::size_t b = begin + c * grain;
        const std::size_t e = std::min(end, b + grain);
        for (std::size_t i = b; i < e; ++i)
            body(i);
    });
}

} // namespace cooper
