#include "rng.hh"

#include <cmath>
#include <numeric>

#include "error.hh"

namespace cooper {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // splitmix64 expansion guarantees a non-zero xoshiro state for any
    // seed, including zero.
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

Rng
Rng::split()
{
    // Mixing two successive outputs gives child streams that do not
    // overlap the parent's sequence in practice.
    std::uint64_t s = next() ^ rotl(next(), 17);
    return Rng(s);
}

Rng
Rng::substream(std::uint64_t stream) const
{
    // Hash the full current state together with the stream id through
    // splitmix64. The parent is not advanced, so substream(i) is a
    // pure function of (state, i): reproducible across calls and
    // independent of which thread asks.
    std::uint64_t acc = stream ^ 0x2545f4914f6cdd1dULL;
    std::uint64_t mixed = splitmix64(acc);
    for (std::uint64_t word : state_) {
        acc ^= word;
        mixed ^= splitmix64(acc);
    }
    return Rng(mixed);
}

Rng
Rng::fromState(const std::array<std::uint64_t, 4> &state)
{
    fatalIf(state[0] == 0 && state[1] == 0 && state[2] == 0 &&
                state[3] == 0,
            "Rng::fromState: all-zero state is invalid for xoshiro256**");
    Rng rng(0);
    rng.state_ = state;
    return rng;
}

Rng::result_type
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    fatalIf(!(lo <= hi), "uniform: invalid range [", lo, ", ", hi, ")");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    fatalIf(n == 0, "uniformInt: n must be positive");
    // Rejection sampling removes modulo bias.
    const std::uint64_t threshold = (~n + 1) % n; // (2^64 - n) mod n
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    fatalIf(lo > hi, "uniformInt: invalid range [", lo, ", ", hi, "]");
    std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    haveSpare_ = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::gamma(double shape)
{
    fatalIf(shape <= 0.0, "gamma: shape must be positive, got ", shape);
    if (shape < 1.0) {
        // Boost to shape >= 1 (Marsaglia-Tsang appendix trick).
        double u = uniform();
        while (u == 0.0)
            u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = gaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

double
Rng::beta(double a, double b)
{
    const double x = gamma(a);
    const double y = gamma(b);
    return x / (x + y);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    fatalIf(weights.empty(), "discrete: empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        fatalIf(w < 0.0, "discrete: negative weight ", w);
        total += w;
    }
    fatalIf(total <= 0.0, "discrete: all weights are zero");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1; // floating-point slack
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t(0));
    shuffle(perm);
    return perm;
}

} // namespace cooper
