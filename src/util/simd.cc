#include "simd.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/error.hh"

namespace cooper {

namespace {

// Which tiers this binary carries. The vector translation units are
// only compiled on x86-64 toolchains that accept the target flags
// (see src/cf/CMakeLists.txt); everywhere else the dispatchers fall
// through to scalar and detection must agree.
constexpr bool kHasVectorTiers =
#if defined(COOPER_SIMD_X86)
    true;
#else
    false;
#endif

SimdLevel
probeCpu()
{
    if (!kHasVectorTiers)
        return SimdLevel::Scalar;
#if defined(COOPER_SIMD_X86)
    if (__builtin_cpu_supports("avx512f"))
        return SimdLevel::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

SimdLevel
resolveActive()
{
    const SimdLevel detected = detectedSimdLevel();
    const char *env = std::getenv("COOPER_SIMD");
    if (env == nullptr || *env == '\0')
        return detected;
    const auto requested = parseSimdLevel(env);
    fatalIf(!requested.has_value(),
            "COOPER_SIMD=", env,
            " is not a tier (expected scalar, avx2, or avx512)");
    return std::min(detected, *requested);
}

// -1 = unresolved, otherwise a SimdLevel. The resolve is idempotent,
// so a racing first call is harmless.
std::atomic<int> g_active{-1};

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::optional<SimdLevel>
parseSimdLevel(const std::string &name)
{
    if (name == "scalar")
        return SimdLevel::Scalar;
    if (name == "avx2")
        return SimdLevel::Avx2;
    if (name == "avx512")
        return SimdLevel::Avx512;
    return std::nullopt;
}

SimdLevel
detectedSimdLevel()
{
    static const SimdLevel detected = probeCpu();
    return detected;
}

SimdLevel
activeSimdLevel()
{
    int cached = g_active.load(std::memory_order_relaxed);
    if (cached < 0) {
        cached = static_cast<int>(resolveActive());
        g_active.store(cached, std::memory_order_relaxed);
    }
    return static_cast<SimdLevel>(cached);
}

void
setSimdOverrideForTesting(std::optional<SimdLevel> level)
{
    if (!level.has_value()) {
        g_active.store(-1, std::memory_order_relaxed);
        return;
    }
    const SimdLevel clamped = std::min(detectedSimdLevel(), *level);
    g_active.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

} // namespace cooper
