#include "chart.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "error.hh"

namespace cooper {

std::string
renderBarChart(const std::string &title, const std::vector<Bar> &bars,
               std::size_t width)
{
    std::ostringstream os;
    os << title << "\n";
    if (bars.empty())
        return os.str();

    double max_value = 0.0;
    std::size_t label_width = 0;
    for (const auto &bar : bars) {
        max_value = std::max(max_value, bar.value);
        label_width = std::max(label_width, bar.label.size());
    }
    if (max_value <= 0.0)
        max_value = 1.0;

    for (const auto &bar : bars) {
        const double clipped = std::max(0.0, bar.value);
        const auto fill = static_cast<std::size_t>(
            std::lround(clipped / max_value * static_cast<double>(width)));
        os << "  " << std::left
           << std::setw(static_cast<int>(label_width)) << bar.label << " |"
           << std::string(fill, '#') << std::string(width - fill, ' ')
           << "| " << std::setprecision(4) << bar.value << "\n";
    }
    return os.str();
}

std::string
renderBoxplots(const std::string &title,
               const std::vector<std::string> &labels,
               const std::vector<BoxStats> &series, std::size_t width)
{
    fatalIf(labels.size() != series.size(),
            "renderBoxplots: ", labels.size(), " labels vs ",
            series.size(), " series");
    std::ostringstream os;
    os << title << "\n";
    if (series.empty())
        return os.str();

    double lo = series.front().whiskerLow;
    double hi = series.front().whiskerHigh;
    std::size_t label_width = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        lo = std::min(lo, series[i].whiskerLow);
        hi = std::max(hi, series[i].whiskerHigh);
        label_width = std::max(label_width, labels[i].size());
    }
    if (hi <= lo)
        hi = lo + 1.0;

    auto column = [&](double v) {
        double frac = (v - lo) / (hi - lo);
        frac = std::clamp(frac, 0.0, 1.0);
        return static_cast<std::size_t>(
            std::lround(frac * static_cast<double>(width - 1)));
    };

    for (std::size_t i = 0; i < series.size(); ++i) {
        std::string line(width, ' ');
        const BoxStats &b = series[i];
        const std::size_t wl = column(b.whiskerLow);
        const std::size_t q1 = column(b.q1);
        const std::size_t md = column(b.median);
        const std::size_t q3 = column(b.q3);
        const std::size_t wh = column(b.whiskerHigh);
        for (std::size_t c = wl; c <= wh && c < width; ++c)
            line[c] = '-';
        for (std::size_t c = q1; c <= q3 && c < width; ++c)
            line[c] = '=';
        line[wl] = '|';
        line[wh] = '|';
        line[md] = 'M';
        os << "  " << std::left
           << std::setw(static_cast<int>(label_width)) << labels[i] << " "
           << line << "  med=" << std::setprecision(4) << b.median << "\n";
    }
    std::ostringstream axis;
    axis << std::setprecision(4) << lo;
    std::ostringstream hi_txt;
    hi_txt << std::setprecision(4) << hi;
    std::string axis_line = axis.str();
    if (axis_line.size() + hi_txt.str().size() + 1 < width) {
        axis_line += std::string(
            width - axis_line.size() - hi_txt.str().size(), ' ');
        axis_line += hi_txt.str();
    }
    os << "  " << std::string(label_width, ' ') << " " << axis_line << "\n";
    return os.str();
}

} // namespace cooper
