/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments.
 *
 * Cooper's evaluation repeats experiments over many sampled agent
 * populations; all sampling flows through Rng so a (seed, stream) pair
 * fully determines an experiment. The generator is xoshiro256**
 * seeded via splitmix64, both implemented here so results do not depend
 * on standard-library distribution details.
 */

#ifndef COOPER_UTIL_RNG_HH
#define COOPER_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cooper {

/** splitmix64 step, used for seeding and cheap hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** generator with explicit distribution helpers.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed standard
 * algorithms such as std::shuffle, but the helpers below are preferred
 * because their output is platform-independent.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Derive an independent child stream (for per-trial generators). */
    Rng split();

    /**
     * Derive an independent sub-stream keyed by a task id, without
     * advancing this generator.
     *
     * Substreams are the parallelism primitive: a loop that previously
     * drew from one shared generator instead gives iteration i the
     * generator `substream(i)`, so results are bit-identical no matter
     * how iterations are partitioned across threads or reordered.
     * `substream(i)` called twice on the same generator state returns
     * the same stream; distinct ids yield streams that do not overlap
     * in practice.
     */
    Rng substream(std::uint64_t stream) const;

    /**
     * Full generator state, for serialization. The cached second
     * gaussian variate is deliberately excluded: restore points sit
     * between complete variates, which keeps the state format a plain
     * four-word seed.
     */
    std::array<std::uint64_t, 4> state() const { return state_; }

    /** Rebuild a generator from a saved state (round-trips state()). */
    static Rng fromState(const std::array<std::uint64_t, 4> &state);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be positive. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Marsaglia polar method. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Gamma(shape, 1) via Marsaglia-Tsang; shape must be positive. */
    double gamma(double shape);

    /** Beta(a, b) variate in (0, 1). */
    double beta(double a, double b);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index according to non-negative weights.
     *
     * @param weights Relative weights; at least one must be positive.
     * @return Index in [0, weights.size()).
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an arbitrary sequence. */
    template <typename Seq>
    void
    shuffle(Seq &seq)
    {
        if (seq.size() < 2)
            return;
        for (std::size_t i = seq.size() - 1; i > 0; --i) {
            std::size_t j = uniformInt(i + 1);
            using std::swap;
            swap(seq[i], seq[j]);
        }
    }

    /** A uniformly random permutation of [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

  private:
    result_type next();

    std::array<std::uint64_t, 4> state_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace cooper

#endif // COOPER_UTIL_RNG_HH
