#include "table.hh"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "error.hh"

namespace cooper {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    fatalIf(row.size() != headers_.size(),
            "Table: row has ", row.size(), " cells, expected ",
            headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::num(long long value)
{
    return std::to_string(value);
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    emit(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-')
           << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << csvEscape(cells[c])
               << (c + 1 == cells.size() ? "\n" : ",");
        }
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << toText();
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "Table: cannot open '", path, "' for writing");
    out << toCsv();
    fatalIf(!out, "Table: write to '", path, "' failed");
}

} // namespace cooper
