/**
 * @file
 * ASCII chart rendering so benchmark binaries can show the *shape* of
 * each reproduced figure directly in the terminal.
 */

#ifndef COOPER_UTIL_CHART_HH
#define COOPER_UTIL_CHART_HH

#include <string>
#include <vector>

namespace cooper {

/** One labeled value in a bar chart. */
struct Bar
{
    std::string label;
    double value = 0.0;
};

/**
 * Render labeled horizontal bars scaled to a common maximum.
 *
 * @param title Chart caption.
 * @param bars Labeled values; negative values render as empty bars.
 * @param width Maximum bar width in characters.
 */
std::string renderBarChart(const std::string &title,
                           const std::vector<Bar> &bars,
                           std::size_t width = 50);

/** Five-number summary plus whisker bounds for boxplot rendering. */
struct BoxStats
{
    double whiskerLow = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double whiskerHigh = 0.0;
};

/**
 * Render labeled horizontal boxplots on a shared axis.
 *
 * @param title Chart caption.
 * @param labels Per-series labels.
 * @param series Per-series box statistics.
 * @param width Plot width in characters.
 */
std::string renderBoxplots(const std::string &title,
                           const std::vector<std::string> &labels,
                           const std::vector<BoxStats> &series,
                           std::size_t width = 60);

} // namespace cooper

#endif // COOPER_UTIL_CHART_HH
