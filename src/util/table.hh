/**
 * @file
 * Formatted table output used by the benchmark harnesses.
 *
 * Every experiment binary prints the paper's rows/series as aligned
 * text (for the terminal) and can also emit CSV (for plotting).
 */

#ifndef COOPER_UTIL_TABLE_HH
#define COOPER_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace cooper {

/**
 * A simple column-aligned text/CSV table builder.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formatted row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Format an integer. */
    static std::string num(long long value);

    /** Render as aligned text. */
    std::string toText() const;

    /** Render as CSV. */
    std::string toCsv() const;

    /** Write the aligned-text rendering to a stream. */
    void print(std::ostream &os) const;

    /** Write CSV to the given path; raises FatalError on I/O failure. */
    void writeCsv(const std::string &path) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cooper

#endif // COOPER_UTIL_TABLE_HH
