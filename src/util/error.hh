/**
 * @file
 * Error-handling helpers shared by all Cooper modules.
 *
 * Follows the gem5 fatal/panic distinction: fatal errors are the user's
 * fault (bad configuration, invalid arguments) and raise FatalError;
 * panics indicate internal invariant violations and raise LogicError.
 */

#ifndef COOPER_UTIL_ERROR_HH
#define COOPER_UTIL_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace cooper {

/** Raised when the library cannot continue due to a user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Raised when an internal invariant is violated (a Cooper bug). */
class LogicError : public std::logic_error
{
  public:
    explicit LogicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, T &&first, Rest &&...rest)
{
    os << std::forward<T>(first);
    formatInto(os, std::forward<Rest>(rest)...);
}

} // namespace detail

/**
 * Concatenate arbitrary streamable arguments into a message string.
 */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    detail::formatInto(os, std::forward<Args>(args)...);
    return os.str();
}

/**
 * Abort the current operation because of a user-level error.
 *
 * @param args Streamable message fragments.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(formatMessage(std::forward<Args>(args)...));
}

/**
 * Abort the current operation because of an internal bug.
 *
 * @param args Streamable message fragments.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw LogicError(formatMessage(std::forward<Args>(args)...));
}

/** Check a user-facing precondition; raise FatalError on failure. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

/** Check an internal invariant; raise LogicError on failure. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

} // namespace cooper

#endif // COOPER_UTIL_ERROR_HH
