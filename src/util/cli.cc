#include "cli.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "error.hh"

namespace cooper {

void
CliFlags::declare(const std::string &name, const std::string &default_value,
                  const std::string &help)
{
    fatalIf(flags_.count(name) != 0, "CliFlags: duplicate flag --", name);
    flags_[name] = Flag{default_value, help};
    order_.push_back(name);
}

bool
CliFlags::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage(argv[0]);
            return false;
        }
        fatalIf(arg.rfind("--", 0) != 0,
                "CliFlags: expected --flag, got '", arg, "'");
        arg = arg.substr(2);

        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            auto it = flags_.find(name);
            fatalIf(it == flags_.end(), "CliFlags: unknown flag --", name);
            // A boolean flag may appear bare; otherwise consume the next
            // argument as the value.
            const bool is_bool = it->second.value == "true" ||
                                 it->second.value == "false";
            if (is_bool) {
                value = "true";
            } else {
                fatalIf(i + 1 >= argc,
                        "CliFlags: flag --", name, " needs a value");
                value = argv[++i];
            }
        }
        auto it = flags_.find(name);
        fatalIf(it == flags_.end(), "CliFlags: unknown flag --", name);
        it->second.value = value;
    }
    return true;
}

const CliFlags::Flag &
CliFlags::lookup(const std::string &name) const
{
    auto it = flags_.find(name);
    fatalIf(it == flags_.end(), "CliFlags: flag --", name,
            " was never declared");
    return it->second;
}

std::string
CliFlags::get(const std::string &name) const
{
    return lookup(name).value;
}

std::int64_t
CliFlags::getInt(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    char *end = nullptr;
    long long out = std::strtoll(v.c_str(), &end, 10);
    fatalIf(end == v.c_str() || *end != '\0',
            "CliFlags: --", name, "='", v, "' is not an integer");
    return out;
}

double
CliFlags::getDouble(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    char *end = nullptr;
    double out = std::strtod(v.c_str(), &end);
    fatalIf(end == v.c_str() || *end != '\0',
            "CliFlags: --", name, "='", v, "' is not a number");
    return out;
}

bool
CliFlags::getBool(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    if (v == "true" || v == "1")
        return true;
    if (v == "false" || v == "0")
        return false;
    fatal("CliFlags: --", name, "='", v, "' is not a boolean");
}

std::string
CliFlags::usage(const std::string &program) const
{
    std::ostringstream os;
    os << "Usage: " << program << " [flags]\n";
    for (const auto &name : order_) {
        const Flag &f = flags_.at(name);
        os << "  --" << name << " (default: " << f.value << ")\n      "
           << f.help << "\n";
    }
    return os.str();
}

void
CliCommands::declare(const std::string &name, Handler handler)
{
    fatalIf(handlers_.count(name) != 0,
            "CliCommands: duplicate subcommand '", name, "'");
    handlers_[name] = std::move(handler);
    order_.push_back(name);
}

void
CliCommands::routeBareFlagsTo(const std::string &name)
{
    fatalIf(handlers_.count(name) == 0,
            "CliCommands: bare-flag target '", name,
            "' was never declared");
    bareFlagTarget_ = name;
}

int
CliCommands::run(int argc, const char *const *argv,
                 std::ostream &out, std::ostream &err) const
{
    if (argc < 2) {
        out << usage_;
        return 2;
    }

    const std::string first = argv[1];
    std::string name;
    int sub_argc = 0;
    const char *const *sub_argv = nullptr;
    if (first.rfind("--", 0) == 0 && !bareFlagTarget_.empty()) {
        // Bare flags keep argv intact so the handler's CliFlags sees
        // them all.
        name = bareFlagTarget_;
        sub_argc = argc;
        sub_argv = argv;
    } else {
        name = first;
        sub_argc = argc - 1;
        sub_argv = argv + 1;
    }

    const auto it = handlers_.find(name);
    if (it == handlers_.end()) {
        err << program_ << ": unknown subcommand '" << name << "'\n"
            << usage_;
        return 2;
    }
    try {
        return it->second(sub_argc, sub_argv);
    } catch (const std::exception &e) {
        err << program_ << " " << name << ": " << e.what() << "\n"
            << "Run '" << program_ << " " << name
            << " --help' to list its flags.\n";
        return 2;
    }
}

int
CliCommands::run(int argc, const char *const *argv) const
{
    return run(argc, argv, std::cout, std::cerr);
}

} // namespace cooper
