/**
 * @file
 * Minimal command-line flag parsing for the bench and example binaries.
 *
 * Flags take the form --name=value or --name value; bare --name sets a
 * boolean flag. Unknown flags are fatal so typos do not silently change
 * an experiment.
 */

#ifndef COOPER_UTIL_CLI_HH
#define COOPER_UTIL_CLI_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace cooper {

/**
 * Declared-flag command-line parser.
 */
class CliFlags
{
  public:
    /** Declare a flag with a default value and help text. */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Parse argv; raises FatalError on unknown or malformed flags.
     * Recognizes --help by printing usage and returning false.
     *
     * @return true if execution should continue.
     */
    bool parse(int argc, const char *const *argv);

    std::string get(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Usage text generated from declarations. */
    std::string usage(const std::string &program) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
    };

    const Flag &lookup(const std::string &name) const;

    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

/**
 * Subcommand dispatcher for the multi-tool binaries (cooper_cli).
 *
 * Routes argv[1] to a declared handler; an unrecognized subcommand is
 * a hard failure that names the offender and prints the usage text
 * (exit 2) instead of being silently ignored, and a FatalError thrown
 * by a handler (CliFlags rejects unknown flags the same way) is
 * reported with a per-subcommand --help hint. Streams are injectable
 * so tests can assert on the exact messages.
 */
class CliCommands
{
  public:
    using Handler = std::function<int(int, const char *const *)>;

    explicit CliCommands(std::string program)
        : program_(std::move(program))
    {}

    /** Register a subcommand; duplicate names are fatal. */
    void declare(const std::string &name, Handler handler);

    /** Route bare flags (argv[1] starting with --) to this declared
     *  subcommand, keeping argv intact for its parser. */
    void routeBareFlagsTo(const std::string &name);

    /** Usage block printed on dispatch failures and empty argv. */
    void setUsageText(std::string text) { usage_ = std::move(text); }

    /**
     * Dispatch. Returns the handler's exit code; 2 on a missing or
     * unknown subcommand (usage goes to `err`, or `out` when invoked
     * with no arguments at all) and on a FatalError escaping the
     * handler.
     */
    int run(int argc, const char *const *argv,
            std::ostream &out, std::ostream &err) const;

    /** Convenience overload on std::cout / std::cerr. */
    int run(int argc, const char *const *argv) const;

  private:
    std::string program_;
    std::string usage_;
    std::string bareFlagTarget_;
    std::map<std::string, Handler> handlers_;
    std::vector<std::string> order_;
};

} // namespace cooper

#endif // COOPER_UTIL_CLI_HH
