/**
 * @file
 * Minimal command-line flag parsing for the bench and example binaries.
 *
 * Flags take the form --name=value or --name value; bare --name sets a
 * boolean flag. Unknown flags are fatal so typos do not silently change
 * an experiment.
 */

#ifndef COOPER_UTIL_CLI_HH
#define COOPER_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cooper {

/**
 * Declared-flag command-line parser.
 */
class CliFlags
{
  public:
    /** Declare a flag with a default value and help text. */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Parse argv; raises FatalError on unknown or malformed flags.
     * Recognizes --help by printing usage and returning false.
     *
     * @return true if execution should continue.
     */
    bool parse(int argc, const char *const *argv);

    std::string get(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Usage text generated from declarations. */
    std::string usage(const std::string &program) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
    };

    const Flag &lookup(const std::string &name) const;

    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace cooper

#endif // COOPER_UTIL_CLI_HH
