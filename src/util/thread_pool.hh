/**
 * @file
 * Fixed-size worker pool with deterministic parallel loops.
 *
 * Cooper's hot paths are embarrassingly parallel per-index kernels
 * (sampled Shapley permutations, item-kNN similarity rows, blocking
 * pair scans, experiment replications). This pool runs them with two
 * guarantees the rest of the repo builds on:
 *
 *  1. *Scheduling freedom, arithmetic rigidity.* parallelReduce splits
 *     an index range into chunks whose boundaries depend only on the
 *     range and the grain — never on the thread count or on which
 *     worker claims which chunk — and combines chunk partials in chunk
 *     order on the calling thread. Floating-point results are
 *     therefore bit-identical for any `threads`, including 1.
 *  2. *No hidden state.* Workers are plain threads draining an atomic
 *     index counter; there is no work stealing and no per-thread
 *     caching, so a region leaves nothing behind that could perturb
 *     the next one.
 *
 * Randomized kernels get determinism by pairing the pool with
 * Rng::substream: iteration i draws from substream(i) instead of a
 * shared generator, making results independent of execution order.
 */

#ifndef COOPER_UTIL_THREAD_POOL_HH
#define COOPER_UTIL_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cooper {

/**
 * Fixed-size pool of worker threads executing indexed task regions.
 *
 * A region is a batch of `tasks` indices; workers and the calling
 * thread claim indices from a shared atomic counter until the batch is
 * drained. run() blocks until every claimed index has finished. The
 * first exception thrown by any task cancels the remaining indices and
 * is rethrown on the calling thread.
 *
 * Calling run() from inside a task executes the nested region inline
 * on the current thread (serially); nesting therefore cannot deadlock
 * the pool.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total execution width including the calling
     *        thread; 0 means hardware_concurrency (with a floor of
     *        two, so parallel paths are exercised even on single-core
     *        machines). A pool of width w owns w - 1 workers.
     */
    explicit ThreadPool(std::size_t threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution width: owned workers plus the calling thread. */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Invoke task(i) for every i in [0, tasks), using at most
     * `threads` threads (calling thread included; values of 0 or 1, an
     * empty pool, and calls from inside a task all run inline).
     *
     * @param tasks Number of task indices.
     * @param threads Maximum execution width for this region.
     * @param task Callable invoked once per index; must be safe to
     *        call concurrently from different threads.
     */
    void run(std::size_t tasks, std::size_t threads,
             const std::function<void(std::size_t)> &task);

    /**
     * Process-wide pool sized to the hardware, created on first use.
     * All parallel kernels share it so the process never oversubscribes
     * the machine with nested pools.
     */
    static ThreadPool &global();

    /** True while the current thread is executing a pool task. */
    static bool inTask();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;

    /** Serializes whole regions from concurrent run() callers. */
    std::mutex runMutex_;

    /** Guards the region fields below. */
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;

    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t taskCount_ = 0;
    std::atomic<std::size_t> nextTask_{0};
    std::size_t participants_ = 0; //!< workers allowed into the region
    std::size_t entered_ = 0;      //!< workers that joined the region
    std::size_t working_ = 0;      //!< workers currently executing
    std::uint64_t generation_ = 0; //!< bumped when a region is posted
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * Resolve a user-facing `threads` knob: 0 means "use the hardware"
 * (the global pool's width), anything else passes through.
 */
std::size_t resolveThreads(std::size_t threads);

/**
 * Run body(i) for every i in [begin, end) on up to `threads` threads.
 *
 * Iterations must be independent (each writes only its own slots);
 * under that contract the result is identical to the serial loop for
 * any thread count. threads <= 1 runs the plain serial loop.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t threads,
                 const std::function<void(std::size_t)> &body);

/**
 * Deterministic chunked reduction over [begin, end).
 *
 * The range is cut into ceil(n / grain) chunks; `chunk(b, e)` computes
 * the partial result for [b, e) and `join(acc, partial)` folds the
 * partials into `init` in ascending chunk order on the calling thread.
 * Because the chunk boundaries depend only on (begin, end, grain) and
 * the fold order is fixed, the result — including floating-point
 * rounding — is bit-identical for every `threads` value. Pick the
 * grain per call site and keep it constant; changing it changes the
 * (still deterministic) rounding.
 *
 * @param threads Execution width; 0 = hardware, 1 = this thread only.
 * @param grain Indices per chunk (>= 1).
 */
template <typename T, typename ChunkFn, typename JoinFn>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t threads,
               std::size_t grain, T init, ChunkFn &&chunk, JoinFn &&join)
{
    if (end <= begin)
        return init;
    if (grain == 0)
        grain = 1;
    const std::size_t n = end - begin;
    const std::size_t chunks = (n + grain - 1) / grain;

    std::vector<T> partials(chunks, init);
    ThreadPool::global().run(
        chunks, resolveThreads(threads), [&](std::size_t c) {
            const std::size_t b = begin + c * grain;
            const std::size_t e = std::min(end, b + grain);
            partials[c] = chunk(b, e);
        });

    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c)
        join(acc, std::move(partials[c]));
    return acc;
}

} // namespace cooper

#endif // COOPER_UTIL_THREAD_POOL_HH
