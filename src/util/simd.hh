/**
 * @file
 * Runtime SIMD level detection and selection.
 *
 * Kernels that carry a vectorized variant take an explicit SimdLevel
 * so tests can force every tier; production call sites pass
 * activeSimdLevel(), which is the highest tier this binary compiled
 * in AND this CPU supports, optionally lowered by the COOPER_SIMD
 * environment override (`scalar`, `avx2`, or `avx512`).
 *
 * Contract: every tier of every dispatched kernel is bit-identical to
 * the scalar tier — vector lanes hold independent work items, each
 * accumulated in the scalar order (see DESIGN.md "SIMD dispatch &
 * incremental blocking bounds"). Selecting a tier is therefore purely
 * a performance decision; overrides can never change results.
 */

#ifndef COOPER_UTIL_SIMD_HH
#define COOPER_UTIL_SIMD_HH

#include <optional>
#include <string>

namespace cooper {

/** Vector instruction tiers, ordered by capability. */
enum class SimdLevel
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Human-readable tier name ("scalar", "avx2", "avx512"). */
const char *simdLevelName(SimdLevel level);

/** Parse a tier name; nullopt for anything unrecognized. */
std::optional<SimdLevel> parseSimdLevel(const std::string &name);

/** Highest tier both compiled into this binary and supported by the
 *  running CPU. Detected once, then cached. */
SimdLevel detectedSimdLevel();

/**
 * The tier production call sites should use: detectedSimdLevel(),
 * lowered to the COOPER_SIMD override when one is set. An override
 * above the detected tier clamps down to it (so COOPER_SIMD=avx2 is
 * safe on any machine); an unrecognized value is fatal (a CI leg with
 * a typo must not silently run the wrong tier). Read once, then
 * cached; setSimdOverrideForTesting replaces the cache.
 */
SimdLevel activeSimdLevel();

/**
 * Test hook: force activeSimdLevel() to min(level, detected), or
 * restore the COOPER_SIMD/default behavior with nullopt. Not
 * thread-safe against concurrent activeSimdLevel() callers; call it
 * only between parallel regions (tests do).
 */
void setSimdOverrideForTesting(std::optional<SimdLevel> level);

} // namespace cooper

#endif // COOPER_UTIL_SIMD_HH
