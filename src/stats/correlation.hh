/**
 * @file
 * Correlation measures for the fairness analysis.
 *
 * Cooper argues colocations are fair when penalty rank tracks
 * bandwidth-demand rank (Figure 8); Spearman and Kendall coefficients
 * quantify exactly that relationship, and Pearson supports the
 * scalability analysis (Figure 13).
 */

#ifndef COOPER_STATS_CORRELATION_HH
#define COOPER_STATS_CORRELATION_HH

#include <span>

namespace cooper {

/** Pearson product-moment correlation; zero when either side is flat. */
double pearson(std::span<const double> xs, std::span<const double> ys);

/** Spearman rank correlation (Pearson on average ranks). */
double spearman(std::span<const double> xs, std::span<const double> ys);

/**
 * Kendall tau-b rank correlation with tie correction.
 */
double kendallTau(std::span<const double> xs, std::span<const double> ys);

} // namespace cooper

#endif // COOPER_STATS_CORRELATION_HH
