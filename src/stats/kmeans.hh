/**
 * @file
 * Small k-means clustering, the substrate for the paper's proposed
 * "classify applications into types and then match types" heuristic
 * (Section VIII).
 */

#ifndef COOPER_STATS_KMEANS_HH
#define COOPER_STATS_KMEANS_HH

#include <vector>

#include "util/rng.hh"

namespace cooper {

/** k-means result. */
struct KMeansResult
{
    /** Cluster index per input point. */
    std::vector<std::size_t> assignment;

    /** Cluster centers. */
    std::vector<std::vector<double>> centers;

    /** Sum of squared distances to assigned centers. */
    double inertia = 0.0;

    /** Lloyd iterations executed. */
    std::size_t iterations = 0;
};

/**
 * Lloyd's algorithm with k-means++ seeding.
 *
 * @param points Input vectors; all must share one dimension.
 * @param k Number of clusters (1 <= k <= points).
 * @param rng Random stream for seeding.
 * @param max_iterations Iteration cap.
 */
KMeansResult kmeans(const std::vector<std::vector<double>> &points,
                    std::size_t k, Rng &rng,
                    std::size_t max_iterations = 100);

/**
 * Rescale each feature to [0, 1] across points (constant features
 * map to 0), so distances weight features comparably.
 */
std::vector<std::vector<double>>
normalizeFeatures(const std::vector<std::vector<double>> &points);

} // namespace cooper

#endif // COOPER_STATS_KMEANS_HH
