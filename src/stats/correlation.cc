#include "correlation.hh"

#include <cmath>

#include "descriptive.hh"
#include "util/error.hh"

namespace cooper {

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    fatalIf(xs.size() != ys.size(),
            "pearson: size mismatch ", xs.size(), " vs ", ys.size());
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
spearman(std::span<const double> xs, std::span<const double> ys)
{
    fatalIf(xs.size() != ys.size(),
            "spearman: size mismatch ", xs.size(), " vs ", ys.size());
    const auto rx = ranks(xs);
    const auto ry = ranks(ys);
    return pearson(rx, ry);
}

double
kendallTau(std::span<const double> xs, std::span<const double> ys)
{
    fatalIf(xs.size() != ys.size(),
            "kendallTau: size mismatch ", xs.size(), " vs ", ys.size());
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    // O(n^2) pair walk; evaluation sizes (<= a few thousand) keep this
    // comfortably fast and it handles ties exactly (tau-b).
    long long concordant = 0, discordant = 0;
    long long ties_x = 0, ties_y = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double dx = xs[i] - xs[j];
            const double dy = ys[i] - ys[j];
            if (dx == 0.0 && dy == 0.0)
                continue;
            if (dx == 0.0) {
                ++ties_x;
            } else if (dy == 0.0) {
                ++ties_y;
            } else if ((dx > 0.0) == (dy > 0.0)) {
                ++concordant;
            } else {
                ++discordant;
            }
        }
    }
    const double n0 = concordant + discordant;
    const double denom = std::sqrt((n0 + ties_x) * (n0 + ties_y));
    if (denom == 0.0)
        return 0.0;
    return (static_cast<double>(concordant) -
            static_cast<double>(discordant)) / denom;
}

} // namespace cooper
