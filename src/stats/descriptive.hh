/**
 * @file
 * Descriptive statistics used throughout the evaluation harnesses:
 * means, variances, quantiles, and boxplot summaries (Figures 10, 11,
 * and 13 present boxplot distributions).
 */

#ifndef COOPER_STATS_DESCRIPTIVE_HH
#define COOPER_STATS_DESCRIPTIVE_HH

#include <span>
#include <vector>

#include "util/chart.hh"

namespace cooper {

/** Arithmetic mean; zero for an empty sample. */
double mean(std::span<const double> xs);

/** Unbiased sample variance; zero for fewer than two points. */
double variance(std::span<const double> xs);

/** Sample standard deviation. */
double stddev(std::span<const double> xs);

/** Smallest element; fatal on an empty sample. */
double minOf(std::span<const double> xs);

/** Largest element; fatal on an empty sample. */
double maxOf(std::span<const double> xs);

/**
 * Quantile with linear interpolation between order statistics
 * (type-7, the R default, which recommenderlab-era analyses used).
 *
 * @param xs Sample (need not be sorted).
 * @param q Quantile in [0, 1].
 */
double quantile(std::span<const double> xs, double q);

/** Median (quantile 0.5). */
double median(std::span<const double> xs);

/**
 * Boxplot summary.
 *
 * The paper draws whiskers at `whisker_iqr` times the inter-quartile
 * range beyond the quartiles (3x in Figure 11's description, 1.5x is
 * the common default), clipped to the observed data range.
 */
BoxStats boxStats(std::span<const double> xs, double whisker_iqr = 1.5);

/**
 * Average ranks (1-based) with ties sharing their mean rank.
 */
std::vector<double> ranks(std::span<const double> xs);

/** Fixed-width histogram counts over [lo, hi]. */
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

} // namespace cooper

#endif // COOPER_STATS_DESCRIPTIVE_HH
