#include "descriptive.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hh"

namespace cooper {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
variance(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

double
minOf(std::span<const double> xs)
{
    fatalIf(xs.empty(), "minOf: empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(std::span<const double> xs)
{
    fatalIf(xs.empty(), "maxOf: empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
quantile(std::span<const double> xs, double q)
{
    fatalIf(xs.empty(), "quantile: empty sample");
    fatalIf(q < 0.0 || q > 1.0, "quantile: q=", q, " outside [0, 1]");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double h = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
median(std::span<const double> xs)
{
    return quantile(xs, 0.5);
}

BoxStats
boxStats(std::span<const double> xs, double whisker_iqr)
{
    fatalIf(xs.empty(), "boxStats: empty sample");
    BoxStats b;
    b.q1 = quantile(xs, 0.25);
    b.median = quantile(xs, 0.5);
    b.q3 = quantile(xs, 0.75);
    const double iqr = b.q3 - b.q1;
    const double lo_fence = b.q1 - whisker_iqr * iqr;
    const double hi_fence = b.q3 + whisker_iqr * iqr;
    // Whiskers reach the most extreme points inside the fences.
    b.whiskerLow = b.q1;
    b.whiskerHigh = b.q3;
    for (double x : xs) {
        if (x >= lo_fence)
            b.whiskerLow = std::min(b.whiskerLow, x);
        if (x <= hi_fence)
            b.whiskerHigh = std::max(b.whiskerHigh, x);
    }
    return b;
}

std::vector<double>
ranks(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Tied block [i, j] shares the average of its 1-based ranks.
        const double avg =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            out[order[k]] = avg;
        i = j + 1;
    }
    return out;
}

std::vector<std::size_t>
histogram(std::span<const double> xs, double lo, double hi,
          std::size_t bins)
{
    fatalIf(bins == 0, "histogram: need at least one bin");
    fatalIf(!(lo < hi), "histogram: invalid range [", lo, ", ", hi, "]");
    std::vector<std::size_t> counts(bins, 0);
    for (double x : xs) {
        if (x < lo || x > hi)
            continue;
        auto b = static_cast<std::size_t>((x - lo) / (hi - lo) *
                                          static_cast<double>(bins));
        if (b == bins)
            b = bins - 1;
        ++counts[b];
    }
    return counts;
}

} // namespace cooper
