#include "kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hh"

namespace cooper {

namespace {

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    double acc = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d)
        acc += (a[d] - b[d]) * (a[d] - b[d]);
    return acc;
}

} // namespace

std::vector<std::vector<double>>
normalizeFeatures(const std::vector<std::vector<double>> &points)
{
    if (points.empty())
        return {};
    const std::size_t dims = points.front().size();
    std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
    for (const auto &p : points) {
        fatalIf(p.size() != dims, "normalizeFeatures: ragged points");
        for (std::size_t d = 0; d < dims; ++d) {
            lo[d] = std::min(lo[d], p[d]);
            hi[d] = std::max(hi[d], p[d]);
        }
    }
    std::vector<std::vector<double>> out(points.size(),
                                         std::vector<double>(dims, 0.0));
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t d = 0; d < dims; ++d)
            if (hi[d] > lo[d])
                out[i][d] = (points[i][d] - lo[d]) / (hi[d] - lo[d]);
    return out;
}

KMeansResult
kmeans(const std::vector<std::vector<double>> &points, std::size_t k,
       Rng &rng, std::size_t max_iterations)
{
    fatalIf(points.empty(), "kmeans: no points");
    fatalIf(k == 0 || k > points.size(),
            "kmeans: k=", k, " invalid for ", points.size(), " points");
    const std::size_t n = points.size();
    const std::size_t dims = points.front().size();
    for (const auto &p : points)
        fatalIf(p.size() != dims, "kmeans: ragged points");

    KMeansResult result;

    // k-means++ seeding: each next center is drawn with probability
    // proportional to squared distance from the chosen set.
    result.centers.push_back(points[rng.uniformInt(std::uint64_t(n))]);
    std::vector<double> dist2(n, 0.0);
    while (result.centers.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = squaredDistance(points[i],
                                          result.centers.front());
            for (std::size_t c = 1; c < result.centers.size(); ++c)
                best = std::min(best, squaredDistance(points[i],
                                                      result.centers[c]));
            dist2[i] = best;
            total += best;
        }
        if (total <= 0.0) {
            // All remaining points coincide with chosen centers.
            result.centers.push_back(
                points[rng.uniformInt(std::uint64_t(n))]);
            continue;
        }
        result.centers.push_back(points[rng.discrete(dist2)]);
    }

    // Nearest-center assignment of every point under the current
    // centers; true when any point moved.
    const auto assignPoints = [&]() {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best_c = 0;
            double best = squaredDistance(points[i], result.centers[0]);
            for (std::size_t c = 1; c < k; ++c) {
                const double d2 =
                    squaredDistance(points[i], result.centers[c]);
                if (d2 < best) {
                    best = d2;
                    best_c = c;
                }
            }
            if (result.assignment[i] != best_c) {
                result.assignment[i] = best_c;
                changed = true;
            }
        }
        return changed;
    };

    result.assignment.assign(n, 0);
    // Always assign at least once: with max_iterations == 0 the loop
    // below never runs, and the all-zero placeholder (every point in
    // cluster 0) must not leak out as a real assignment.
    assignPoints();
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        ++result.iterations;
        const bool changed = assignPoints();
        if (!changed && iter > 0)
            break;
        // Update step; empty clusters keep their previous center.
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dims, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t d = 0; d < dims; ++d)
                sums[result.assignment[i]][d] += points[i][d];
            ++counts[result.assignment[i]];
        }
        for (std::size_t c = 0; c < k; ++c)
            if (counts[c] > 0)
                for (std::size_t d = 0; d < dims; ++d)
                    result.centers[c][d] =
                        sums[c][d] / static_cast<double>(counts[c]);
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        result.inertia += squaredDistance(
            points[i], result.centers[result.assignment[i]]);
    return result;
}

} // namespace cooper
