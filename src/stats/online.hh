/**
 * @file
 * Welford-style online accumulator for streaming means and variances,
 * used when experiments aggregate over many trial populations without
 * materializing every sample.
 */

#ifndef COOPER_STATS_ONLINE_HH
#define COOPER_STATS_ONLINE_HH

#include <cmath>
#include <cstddef>
#include <limits>

namespace cooper {

/**
 * Numerically stable running mean / variance / extrema.
 */
class OnlineStats
{
  public:
    /** Fold one observation into the accumulator. */
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Merge another accumulator (Chan et al. parallel update). */
    void
    merge(const OnlineStats &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double na = static_cast<double>(count_);
        const double nb = static_cast<double>(other.count_);
        const double delta = other.mean_ - mean_;
        mean_ += delta * nb / (na + nb);
        m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
        count_ += other.count_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace cooper

#endif // COOPER_STATS_ONLINE_HH
