/**
 * @file
 * Cluster dispatch simulation.
 *
 * The paper's job dispatcher sends colocated pairs to machines; when
 * the system has fewer multiprocessors than pairs, jobs dispatch in
 * batches and queue. This module simulates that dispatch loop: each
 * CMP runs one pair at a time, the shorter job is repeated until the
 * longer completes (the paper's multiprogrammed-benchmarking method),
 * and the machine frees when the longer job finishes.
 */

#ifndef COOPER_SIM_CLUSTER_HH
#define COOPER_SIM_CLUSTER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/interference.hh"

namespace cooper {

/** One colocated pair to dispatch, identified by catalog types. */
struct PairAssignment
{
    JobTypeId first = 0;
    JobTypeId second = 0;
};

/** Completion record for one dispatched pair. */
struct PairCompletion
{
    PairAssignment pair;
    std::size_t machine = 0;
    double startSec = 0.0;
    double endSec = 0.0;
    double penaltyFirst = 0.0;
    double penaltySecond = 0.0;
};

/** Aggregate outcome of a dispatch run. */
struct DispatchReport
{
    std::vector<PairCompletion> completions;
    double makespanSec = 0.0;

    /** Busy machine-seconds divided by machines * makespan. */
    double utilization = 0.0;

    /** Mean throughput penalty across all dispatched jobs. */
    double meanPenalty = 0.0;
};

/**
 * Fixed pool of chip multiprocessors executing colocated pairs.
 */
class Cluster
{
  public:
    /**
     * @param model Interference model supplying colocated runtimes.
     * @param machines Number of CMPs available per batch.
     */
    Cluster(const InterferenceModel &model, std::size_t machines);

    std::size_t machines() const { return machineCount_; }

    /**
     * Dispatch pairs in order; a pair waits until a machine frees.
     *
     * @param pairs Colocation assignments (queue order).
     */
    DispatchReport dispatch(const std::vector<PairAssignment> &pairs) const;

  private:
    const InterferenceModel *model_;
    std::size_t machineCount_;
};

} // namespace cooper

#endif // COOPER_SIM_CLUSTER_HH
