#include "profiler.hh"

#include <algorithm>
#include <cmath>

#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

void
ProfileDatabase::record(JobTypeId self, JobTypeId other, double penalty)
{
    Cell &cell = samples_[{self, other}];
    cell.sum += penalty;
    ++cell.count;
    ++total_;
}

std::optional<double>
ProfileDatabase::query(JobTypeId self, JobTypeId other) const
{
    auto it = samples_.find({self, other});
    if (it == samples_.end())
        return std::nullopt;
    return it->second.sum / static_cast<double>(it->second.count);
}

SystemProfiler::SystemProfiler(const InterferenceModel &model,
                               NoiseConfig noise, std::uint64_t seed)
    : model_(&model), noise_(noise), rng_(seed)
{
    fatalIf(noise_.sigma < 0.0, "SystemProfiler: negative noise sigma");
}

double
SystemProfiler::measure(JobTypeId self, JobTypeId other)
{
    double d = model_->penalty(self, other);
    if (noise_.sigma > 0.0)
        d += rng_.gaussian(0.0, noise_.sigma);
    d = std::clamp(d, noise_.floor, 1.0);
    database_.record(self, other, d);
    return d;
}

ProbeResult
SystemProfiler::probe(JobTypeId self, JobTypeId other,
                      std::size_t repeats, ProbeFault fault,
                      double corrupt_delta)
{
    fatalIf(repeats == 0, "SystemProfiler::probe: need at least one "
                          "repeat");
    if (fault == ProbeFault::Timeout)
        return {};

    // The colocation run happens: draw every sample (so a dropped
    // probe consumes exactly the noise a delivered one would).
    double sum = 0.0;
    for (std::size_t i = 0; i < repeats; ++i) {
        double d = model_->penalty(self, other);
        if (noise_.sigma > 0.0)
            d += rng_.gaussian(0.0, noise_.sigma);
        sum += std::clamp(d, noise_.floor, 1.0);
    }
    if (fault == ProbeFault::Drop)
        return {};

    // The mean of clamped samples is already in range; only a corrupt
    // probe needs the offset-and-reclamp (keeping the clean path
    // bit-identical to averaging measure() calls).
    double mean = sum / static_cast<double>(repeats);
    if (corrupt_delta != 0.0)
        mean = std::clamp(mean + corrupt_delta, noise_.floor, 1.0);
    database_.record(self, other, mean);
    return {true, mean};
}

SparseMatrix
SystemProfiler::sampleProfiles(double ratio, std::size_t min_per_row,
                               std::size_t repeats)
{
    fatalIf(ratio <= 0.0 || ratio > 1.0,
            "sampleProfiles: ratio ", ratio, " outside (0, 1]");
    fatalIf(repeats == 0, "sampleProfiles: need at least one repeat");
    const TraceSpan span("profiler.sample_profiles", "profiler");
    const std::size_t samples_before = database_.totalSamples();
    const std::size_t n = model_->catalog().size();
    SparseMatrix profiles(n, n);

    const auto target = static_cast<std::size_t>(
        std::ceil(ratio * static_cast<double>(n * n)));

    // Candidate colocations (i, j); measuring one fills both (i, j)
    // and (j, i) since one run observes both jobs.
    std::vector<std::pair<JobTypeId, JobTypeId>> pairs;
    pairs.reserve(n * (n + 1) / 2);
    for (JobTypeId i = 0; i < n; ++i)
        for (JobTypeId j = i; j < n; ++j)
            pairs.emplace_back(i, j);
    rng_.shuffle(pairs);

    auto measure_pair = [&](JobTypeId i, JobTypeId j) {
        double fwd = 0.0, rev = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            fwd += measure(i, j);
            if (i != j)
                rev += measure(j, i);
        }
        profiles.set(i, j, fwd / static_cast<double>(repeats));
        if (i != j)
            profiles.set(j, i, rev / static_cast<double>(repeats));
    };

    for (const auto &[i, j] : pairs) {
        if (profiles.knownCount() >= target)
            break;
        measure_pair(i, j);
    }

    // Top up starved rows so every job has some basis for prediction.
    for (JobTypeId i = 0; i < n; ++i) {
        std::size_t have = 0;
        for (std::size_t c = 0; c < n; ++c)
            if (profiles.known(i, c))
                ++have;
        while (have < std::min(min_per_row, n)) {
            const auto j =
                static_cast<JobTypeId>(rng_.uniformInt(std::uint64_t(n)));
            if (!profiles.known(i, j)) {
                measure_pair(i, j);
                ++have;
            }
        }
    }

    if (MetricsRegistry *metrics = obsMetrics()) {
        const std::size_t taken =
            database_.totalSamples() - samples_before;
        metrics->counter("profiler.samples").add(taken);
        // Every measurement draws one Gaussian when noise is on.
        if (noise_.sigma > 0.0)
            metrics->counter("profiler.noise_draws").add(taken);
        Histogram &penalties = metrics->histogram(
            "profiler.penalty",
            {0.0, 0.05, 0.1, 0.2, 0.4, 0.8});
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                if (profiles.known(r, c))
                    penalties.observe(profiles.at(r, c));
    }
    return profiles;
}

} // namespace cooper
