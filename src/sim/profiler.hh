/**
 * @file
 * System profiler: the coordinator-side measurement service.
 *
 * Modern datacenters profile continuously and expose the results
 * through queryable databases (the paper cites Google-wide profiling);
 * Cooper's coordinator answers agents' queries from such a database.
 * Here the measurements come from the interference model plus
 * configurable measurement noise, and the profiler supports the sparse
 * sampling regime the paper uses (profiles for only a fraction of all
 * colocations, 25% by default).
 */

#ifndef COOPER_SIM_PROFILER_HH
#define COOPER_SIM_PROFILER_HH

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "cf/sparse_matrix.hh"
#include "sim/interference.hh"
#include "util/rng.hh"

namespace cooper {

/**
 * Measurement database keyed by (job type, co-runner type).
 *
 * Repeated measurements of the same colocation are averaged, the way
 * a continuous profiler would aggregate samples.
 */
class ProfileDatabase
{
  public:
    /** Record one measurement of `self` colocated with `other`. */
    void record(JobTypeId self, JobTypeId other, double penalty);

    /** Averaged measurement, or nullopt if never profiled. */
    std::optional<double> query(JobTypeId self, JobTypeId other) const;

    /** Number of distinct colocations profiled. */
    std::size_t distinctPairs() const { return samples_.size(); }

    /** Total measurements recorded. */
    std::size_t totalSamples() const { return total_; }

  private:
    struct Cell
    {
        double sum = 0.0;
        std::size_t count = 0;
    };

    std::map<std::pair<JobTypeId, JobTypeId>, Cell> samples_;
    std::size_t total_ = 0;
};

/** Fault applied to one probe colocation run (see FaultPlan). */
enum class ProbeFault
{
    None,    //!< the probe completes and its result lands
    Timeout, //!< the probe never returns; nothing is measured
    Drop,    //!< the probe completes but the result is lost in transit
};

/** What one fault-aware probe produced. */
struct ProbeResult
{
    /** The measurement reached the database. False on Timeout (no
     *  measurement happened) and Drop (it happened but was lost). */
    bool ok = false;

    /** Mean measured penalty; meaningful only when ok. */
    double value = 0.0;
};

/**
 * Noisy profiler over an interference model.
 */
class SystemProfiler
{
  public:
    /**
     * @param model Ground-truth interference model.
     * @param noise Measurement-noise parameters.
     * @param seed Seed of the profiler's private noise stream.
     */
    SystemProfiler(const InterferenceModel &model, NoiseConfig noise = {},
                   std::uint64_t seed = 1);

    const InterferenceModel &model() const { return *model_; }

    /**
     * Measure `self`'s penalty when colocated with `other` once;
     * records the sample in the database and returns it.
     */
    double measure(JobTypeId self, JobTypeId other);

    /**
     * Fault-aware probe: one colocation run measured `repeats` times
     * and averaged (the way the online service characterizes a cell),
     * with `fault` applied to the run as a whole.
     *
     * Timeout: the run never happens — no noise is drawn, nothing is
     * recorded. Drop: the run happens (noise is consumed) but the
     * result never reaches the database. Otherwise the mean, offset
     * by `corrupt_delta` and re-clamped, is recorded once.
     *
     * @param repeats Measurements averaged; must be positive.
     * @param fault Injected failure mode for this probe.
     * @param corrupt_delta Additive corruption on the recorded mean
     *        (0.0 for a clean probe).
     */
    ProbeResult probe(JobTypeId self, JobTypeId other,
                      std::size_t repeats,
                      ProbeFault fault = ProbeFault::None,
                      double corrupt_delta = 0.0);

    /**
     * Profile a uniformly random subset of type pairs.
     *
     * Both directions of a sampled pair are measured (one colocation
     * run yields both jobs' throughputs). Every row is guaranteed at
     * least `min_per_row` sampled co-runners so the predictor has
     * something to work from.
     *
     * Each selected colocation is measured `repeats` times and the
     * mean recorded, the way a continuous profiler aggregates samples
     * over time; more repeats shrink the effective noise.
     *
     * @param ratio Fraction of the n*n matrix to fill (0, 1].
     * @param min_per_row Minimum samples per row.
     * @param repeats Measurements averaged per profiled colocation.
     * @return Sparse matrix of measured penalties.
     */
    SparseMatrix sampleProfiles(double ratio, std::size_t min_per_row = 2,
                                std::size_t repeats = 3);

    /** The accumulated measurement database. */
    const ProfileDatabase &database() const { return database_; }

  private:
    const InterferenceModel *model_;
    NoiseConfig noise_;
    Rng rng_;
    ProfileDatabase database_;
};

} // namespace cooper

#endif // COOPER_SIM_PROFILER_HH
