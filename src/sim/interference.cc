#include "interference.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {

InterferenceModel::InterferenceModel(const Catalog &catalog,
                                     ServerConfig config)
    : catalog_(&catalog), config_(config)
{
    fatalIf(config_.llcMB <= 0.0, "InterferenceModel: llcMB must be > 0");
    fatalIf(config_.bwRefGBps <= 0.0,
            "InterferenceModel: bwRefGBps must be > 0");
    fatalIf(config_.bwSpanGBps <= 0.0,
            "InterferenceModel: bwSpanGBps must be > 0");
}

double
InterferenceModel::bandwidthPressure(JobTypeId self, JobTypeId other) const
{
    const JobType &a = catalog_->job(self);
    const JobType &b = catalog_->job(other);
    const double combined = a.gbps + b.gbps;
    const double ramp01 = std::clamp(
        (combined - config_.bwKneeGBps) / config_.bwSpanGBps, 0.0, 1.0);
    const double ramp = config_.rampBase +
                        (1.0 - config_.rampBase) * ramp01;
    return (b.gbps / config_.bwRefGBps) * ramp;
}

double
InterferenceModel::cacheOverflow(JobTypeId self, JobTypeId other) const
{
    const JobType &a = catalog_->job(self);
    const JobType &b = catalog_->job(other);
    const double overflow = (a.cacheMB + b.cacheMB - config_.llcMB) /
                            config_.llcMB;
    return std::clamp(overflow, 0.0, 1.0);
}

double
InterferenceModel::idiosyncrasyFactor(JobTypeId self, JobTypeId other) const
{
    if (config_.idiosyncrasy == 0.0)
        return 1.0;
    // splitmix64 of the ordered pair gives a stable value in [-1, 1];
    // ordered (not symmetric) because contention is directional.
    std::uint64_t h = (static_cast<std::uint64_t>(self) << 32) |
                      (static_cast<std::uint64_t>(other) + 1);
    const double unit =
        (splitmix64(h) >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    return 1.0 + config_.idiosyncrasy * unit;
}

double
InterferenceModel::penalty(JobTypeId self, JobTypeId other) const
{
    const JobType &a = catalog_->job(self);
    const double bw_term = a.bwSensitivity *
                           bandwidthPressure(self, other) *
                           config_.weightBandwidth;
    const double cache_term = a.cacheSensitivity *
                              cacheOverflow(self, other) *
                              config_.weightCache;
    const double d = (bw_term + cache_term) *
                     idiosyncrasyFactor(self, other);
    return std::clamp(d, 0.0, 1.0);
}

PenaltyMatrix
InterferenceModel::penaltyMatrix() const
{
    const std::size_t n = catalog_->size();
    PenaltyMatrix m(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = penalty(static_cast<JobTypeId>(i),
                              static_cast<JobTypeId>(j));
    return m;
}

double
InterferenceModel::groupPenalty(JobTypeId self,
                                std::span<const JobTypeId> others) const
{
    fatalIf(others.empty(), "groupPenalty: no co-runners");
    const JobType &a = catalog_->job(self);

    // Bandwidth: the combined appetite of all co-runners, amplified
    // once the whole group's demand saturates the channels.
    double others_gbps = 0.0;
    double cache_total = a.cacheMB;
    double idio = 0.0;
    for (JobTypeId other : others) {
        const JobType &b = catalog_->job(other);
        others_gbps += b.gbps;
        cache_total += b.cacheMB;
        idio += idiosyncrasyFactor(self, other);
    }
    idio /= static_cast<double>(others.size());

    const double combined = a.gbps + others_gbps;
    const double ramp01 = std::clamp(
        (combined - config_.bwKneeGBps) / config_.bwSpanGBps, 0.0, 1.0);
    const double ramp = config_.rampBase +
                        (1.0 - config_.rampBase) * ramp01;
    const double bw_press = (others_gbps / config_.bwRefGBps) * ramp;
    const double overflow = std::clamp(
        (cache_total - config_.llcMB) / config_.llcMB, 0.0, 1.0);

    const double d = (a.bwSensitivity * bw_press *
                          config_.weightBandwidth +
                      a.cacheSensitivity * overflow *
                          config_.weightCache) *
                     idio;
    return std::clamp(d, 0.0, 1.0);
}

double
InterferenceModel::colocatedSeconds(JobTypeId self, JobTypeId other) const
{
    const JobType &a = catalog_->job(self);
    const double d = penalty(self, other);
    panicIf(d >= 1.0, "colocatedSeconds: penalty saturated at 1");
    return a.standaloneSec / (1.0 - d);
}

} // namespace cooper
