/**
 * @file
 * Closed-form pairwise interference model.
 *
 * Maps a (job, co-runner) pair of catalog types to the job's
 * ground-truth throughput penalty (the paper's disutility
 * d = 1 - Throughput_colocation / Throughput_standalone). The model
 * composes a bandwidth term (the co-runner's bandwidth appetite,
 * amplified once combined demand saturates the memory channels) and a
 * cache term (LLC overflow felt in proportion to the job's cache
 * sensitivity), plus a small deterministic per-pair idiosyncrasy so
 * that preference lists are rich rather than purely one-dimensional.
 */

#ifndef COOPER_SIM_INTERFERENCE_HH
#define COOPER_SIM_INTERFERENCE_HH

#include <span>
#include <vector>

#include "sim/config.hh"
#include "workload/catalog.hh"

namespace cooper {

/** Dense matrix of type-level penalties: entry (i, j) is d_i(j). */
class PenaltyMatrix
{
  public:
    PenaltyMatrix(std::size_t n, double fill = 0.0)
        : n_(n), cells_(n * n, fill)
    {}

    std::size_t size() const { return n_; }

    double operator()(std::size_t i, std::size_t j) const
    {
        return cells_[i * n_ + j];
    }

    double &operator()(std::size_t i, std::size_t j)
    {
        return cells_[i * n_ + j];
    }

  private:
    std::size_t n_;
    std::vector<double> cells_;
};

/**
 * Ground-truth penalty model over a job catalog.
 */
class InterferenceModel
{
  public:
    /**
     * @param catalog Job-type catalog.
     * @param config Memory-subsystem parameters.
     */
    InterferenceModel(const Catalog &catalog, ServerConfig config = {});

    const Catalog &catalog() const { return *catalog_; }
    const ServerConfig &config() const { return config_; }

    /**
     * Ground-truth penalty of job type `self` when sharing a CMP with
     * job type `other`.
     */
    double penalty(JobTypeId self, JobTypeId other) const;

    /** Dense matrix of all type-level penalties. */
    PenaltyMatrix penaltyMatrix() const;

    /**
     * Colocated completion time of `self` when running against
     * `other`: standalone time inflated by the throughput penalty.
     */
    double colocatedSeconds(JobTypeId self, JobTypeId other) const;

    /**
     * Ground-truth penalty of `self` when sharing a CMP with several
     * co-runners at once (the paper's future-work setting of more
     * than two co-runners, Section VIII). Reduces exactly to
     * penalty() when `others` has one element.
     *
     * @param self Job whose penalty is evaluated.
     * @param others Co-runner types sharing the CMP (at least one).
     */
    double groupPenalty(JobTypeId self,
                        std::span<const JobTypeId> others) const;

    /**
     * Memory pressure `other` exerts on `self`'s bandwidth term,
     * before sensitivity scaling (exposed for tests and ablations).
     */
    double bandwidthPressure(JobTypeId self, JobTypeId other) const;

    /** LLC overflow fraction for the pair (0 when the sets fit). */
    double cacheOverflow(JobTypeId self, JobTypeId other) const;

  private:
    /** Deterministic idiosyncrasy factor in [1-a, 1+a]. */
    double idiosyncrasyFactor(JobTypeId self, JobTypeId other) const;

    const Catalog *catalog_;
    ServerConfig config_;
};

} // namespace cooper

#endif // COOPER_SIM_INTERFERENCE_HH
