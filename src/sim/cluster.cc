#include "cluster.hh"

#include <algorithm>
#include <queue>

#include "util/error.hh"

namespace cooper {

Cluster::Cluster(const InterferenceModel &model, std::size_t machines)
    : model_(&model), machineCount_(machines)
{
    fatalIf(machines == 0, "Cluster: need at least one machine");
}

DispatchReport
Cluster::dispatch(const std::vector<PairAssignment> &pairs) const
{
    DispatchReport report;
    report.completions.reserve(pairs.size());

    // Min-heap of (free time, machine id).
    using Slot = std::pair<double, std::size_t>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> slots;
    for (std::size_t m = 0; m < machineCount_; ++m)
        slots.emplace(0.0, m);

    double busy_seconds = 0.0;
    double penalty_sum = 0.0;

    for (const auto &pair : pairs) {
        auto [free_at, machine] = slots.top();
        slots.pop();

        PairCompletion done;
        done.pair = pair;
        done.machine = machine;
        done.startSec = free_at;
        done.penaltyFirst = model_->penalty(pair.first, pair.second);
        done.penaltySecond = model_->penalty(pair.second, pair.first);
        // The machine is held until the longer job completes; the
        // shorter one is repeated to keep contention representative.
        const double runtime =
            std::max(model_->colocatedSeconds(pair.first, pair.second),
                     model_->colocatedSeconds(pair.second, pair.first));
        done.endSec = free_at + runtime;

        busy_seconds += runtime;
        penalty_sum += done.penaltyFirst + done.penaltySecond;
        report.makespanSec = std::max(report.makespanSec, done.endSec);
        report.completions.push_back(done);
        slots.emplace(done.endSec, machine);
    }

    if (!pairs.empty()) {
        report.utilization =
            busy_seconds /
            (static_cast<double>(machineCount_) * report.makespanSec);
        report.meanPenalty =
            penalty_sum / (2.0 * static_cast<double>(pairs.size()));
    }
    return report;
}

} // namespace cooper
