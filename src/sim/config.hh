/**
 * @file
 * Hardware and model configuration for the CMP-contention simulator.
 *
 * The paper's testbed nodes hold two Intel Xeon E5-2697 v2 CMPs (12
 * cores / 24 threads each, shared LLC, shared memory bandwidth);
 * colocated jobs split a CMP's threads evenly and contend only for the
 * memory subsystem (SSDs and 1 Gbps Ethernet preclude I/O and network
 * contention). ServerConfig captures the memory-subsystem parameters
 * that matter to that setting.
 */

#ifndef COOPER_SIM_CONFIG_HH
#define COOPER_SIM_CONFIG_HH

#include <cstddef>

#include "obs/config.hh"
#include "online/online_config.hh"

namespace cooper {

/**
 * Memory-subsystem parameters of one chip multiprocessor.
 */
struct ServerConfig
{
    /** Shared last-level cache capacity (E5-2697 v2: 30 MB). */
    double llcMB = 30.0;

    /** Bandwidth used to normalize a co-runner's pressure (GB/s). */
    double bwRefGBps = 30.0;

    /**
     * Combined demand where bandwidth contention starts ramping.
     * Two jobs rarely saturate the E5-2697 v2's memory channels
     * (~59 GB/s peak), so the knee sits at half the peak: below it
     * co-runners only contend at the base level.
     */
    double bwKneeGBps = 30.0;

    /** Demand span over which contention ramps to its maximum. */
    double bwSpanGBps = 40.0;

    /** Contention floor: pressure felt even below the knee. */
    double rampBase = 0.25;

    /** Weight of the bandwidth term in the penalty model. */
    double weightBandwidth = 0.35;

    /** Weight of the cache-overflow term in the penalty model. */
    double weightCache = 0.25;

    /** Relative amplitude of deterministic per-pair idiosyncrasy. */
    double idiosyncrasy = 0.15;

    /** Hardware threads per CMP (split evenly between co-runners). */
    std::size_t threads = 24;
};

/**
 * Execution parameters shared by the parallel kernels.
 *
 * Every parallelized hot path (sampled Shapley, item-kNN fill,
 * blocking-pair scan, experiment replications) is deterministic in the
 * thread count: the knob trades wall-clock time only, never results.
 */
struct ExecutionConfig
{
    /**
     * Worker threads for parallel kernels. 0 means use the hardware
     * (std::thread::hardware_concurrency); 1 runs every kernel
     * serially on the calling thread.
     */
    std::size_t threads = 0;

    /**
     * Observability knobs (metrics registry + phase tracing). Off by
     * default; like `threads`, flipping them never changes results,
     * only what gets recorded about the run.
     */
    ObsConfig obs;

    /**
     * Online-service knobs (epoch cadence, admission capacity,
     * migration budget), read by the OnlineDriver when the framework
     * runs event-driven instead of one-shot. Unlike `threads` and
     * `obs`, these are semantic: they change which decisions the
     * service makes — but never break reproducibility.
     */
    OnlineConfig online;
};

/**
 * Profiling-noise parameters.
 *
 * Real measurements vary run to run; the paper notes tasks
 * occasionally appear to run *better* colocated than alone purely due
 * to measurement variance, so noisy penalties may dip slightly below
 * zero.
 */
struct NoiseConfig
{
    /** Std. deviation of additive Gaussian measurement noise. */
    double sigma = 0.004;

    /** Lower clamp for measured penalties (small negatives allowed). */
    double floor = -0.02;
};

} // namespace cooper

#endif // COOPER_SIM_CONFIG_HH
