#include "serialize.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "util/error.hh"

namespace cooper {

namespace {

constexpr const char *kProfilesHeader = "cooper-profiles";
constexpr const char *kMatchingHeader = "cooper-matching";
constexpr const char *kOnlineStateHeader = "cooper-online-state";

// Formats version independently: v2 of the online state added the
// fault-plane sections (quarantine, probe rounds, fault counters, and
// the fault plan) without touching the other two formats. v3 is the
// *sharded* container — same magic, one embedded per-shard block per
// shard — so a flat reader fails fast on a sharded file and vice
// versa. v4 (flat) adds the coalition groups section after the pairs;
// v5 is the sharded container embedding v4 blocks. Odd versions
// shard, even versions don't — the parity rule keeps the two families
// distinguishable as both grow.
constexpr int kProfilesVersion = 1;
constexpr int kMatchingVersion = 1;
constexpr int kOnlineStateVersion = 4;
constexpr int kShardedStateVersion = 5;

void
expectHeader(std::istream &is, const char *magic, int expected_version,
             std::string &line)
{
    fatalIf(!std::getline(is, line), "serialize: empty input");
    std::istringstream header(line);
    std::string word;
    int version = 0;
    header >> word >> version;
    fatalIf(word != magic, "serialize: expected '", magic,
            "' header, got '", word, "'");
    fatalIf(version != expected_version,
            "serialize: unsupported '", magic, "' version ", version,
            " (expected ", expected_version, ")");
}

} // namespace

void
writeProfiles(std::ostream &os, const SparseMatrix &profiles)
{
    os << kProfilesHeader << " " << kProfilesVersion << " "
       << profiles.rows() << " " << profiles.cols() << "\n";
    os << std::setprecision(17);
    for (const auto &entry : profiles.entries())
        os << entry.row << " " << entry.col << " " << entry.value
           << "\n";
}

SparseMatrix
readProfiles(std::istream &is)
{
    std::string line;
    expectHeader(is, kProfilesHeader, kProfilesVersion, line);
    std::istringstream header(line);
    std::string word;
    int version = 0;
    std::size_t rows = 0, cols = 0;
    header >> word >> version >> rows >> cols;
    fatalIf(rows == 0 || cols == 0,
            "readProfiles: bad shape ", rows, "x", cols);

    SparseMatrix out(rows, cols);
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream cells(line);
        std::size_t r = 0, c = 0;
        double value = 0.0;
        fatalIf(!(cells >> r >> c >> value),
                "readProfiles: malformed line ", lineno, ": '", line,
                "'");
        fatalIf(r >= rows || c >= cols,
                "readProfiles: cell (", r, ", ", c,
                ") outside declared shape on line ", lineno);
        out.set(r, c, value);
    }
    return out;
}

void
writeMatching(std::ostream &os, const Matching &matching)
{
    os << kMatchingHeader << " " << kMatchingVersion << " "
       << matching.size() << "\n";
    for (const auto &[a, b] : matching.pairs())
        os << a << " " << b << "\n";
}

Matching
readMatching(std::istream &is)
{
    std::string line;
    expectHeader(is, kMatchingHeader, kMatchingVersion, line);
    std::istringstream header(line);
    std::string word;
    int version = 0;
    std::size_t n = 0;
    header >> word >> version >> n;
    fatalIf(n == 0, "readMatching: empty matching declared");

    Matching out(n);
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream cells(line);
        std::size_t a = 0, b = 0;
        fatalIf(!(cells >> a >> b),
                "readMatching: malformed line ", lineno, ": '", line,
                "'");
        fatalIf(a >= n || b >= n,
                "readMatching: agent out of range on line ", lineno);
        fatalIf(out.isMatched(a) || out.isMatched(b),
                "readMatching: agent repeated on line ", lineno);
        out.pair(a, b);
    }
    return out;
}

void
writeOnlineState(std::ostream &os, const OnlineState &state)
{
    os << kOnlineStateHeader << " " << kOnlineStateVersion << "\n";
    os << "seed " << state.seed << "\n";
    os << "epoch " << state.epoch << "\n";
    os << "tick " << state.clockTick << "\n";
    os << "totals " << state.totalArrivals << " " << state.totalDepartures
       << " " << state.totalAdmitted << " " << state.totalProbes << " "
       << state.totalMigrations << " " << state.totalPairsBroken << " "
       << state.totalFullRematches << "\n";
    os << std::setprecision(17);
    os << "penalty " << state.lastMeanPenalty << "\n";
    os << "live " << state.live.size() << "\n";
    for (const LiveJob &job : state.live)
        os << job.uid << " " << job.type << "\n";
    os << "pairs " << state.pairs.size() << "\n";
    for (const auto &[a, b] : state.pairs)
        os << a << " " << b << "\n";
    os << "groups " << state.groups.size() << "\n";
    for (const auto &group : state.groups) {
        os << group.size();
        for (const JobUid uid : group)
            os << " " << uid;
        os << "\n";
    }
    os << "queue " << state.pending.size() << " " << state.rejected << " "
       << state.queueHighWater << "\n";
    for (const PendingArrival &arrival : state.pending)
        os << arrival.uid << " " << arrival.type << " "
           << arrival.arrivalTick << "\n";
    os << "ratings " << state.ratings.rows() << " " << state.ratings.cols()
       << " " << state.ratings.knownCount() << "\n";
    for (const auto &entry : state.ratings.entries())
        os << entry.row << " " << entry.col << " " << entry.value << "\n";
    os << "faults " << state.faultsInjected << " " << state.retries
       << " " << state.quarantined << " " << state.quarantineReleased
       << " " << state.abandoned << " " << state.crashes << " "
       << state.cfFallbacks << " " << state.checkpointFailures << "\n";
    os << "quarantine " << state.quarantine.size() << "\n";
    for (const QuarantinedJob &job : state.quarantine)
        os << job.uid << " " << job.type << " " << job.failures << " "
           << job.untilEpoch << " " << job.rounds << "\n";
    os << "rounds " << state.probeRounds.size() << "\n";
    for (const auto &[uid, served] : state.probeRounds)
        os << uid << " " << served << "\n";
    const FaultSpec &spec = state.faultPlan.spec();
    os << "plan " << spec.seed << " " << spec.probeTimeoutRate << " "
       << spec.measurementDropRate << " " << spec.measurementCorruptRate
       << " " << spec.corruptSigma << " " << spec.crashRatePerEpoch
       << " " << spec.checkpointFailRate << " "
       << state.faultPlan.script().size() << "\n";
    for (const ScriptedFault &event : state.faultPlan.script())
        os << event.epoch << " " << faultKindName(event.kind) << " "
           << (event.hasUid ? 1 : 0) << " " << event.uid << " "
           << event.magnitude << "\n";
}

namespace {

/** Read one line and parse it under a required leading keyword. */
std::istringstream
sectionLine(std::istream &is, const char *keyword)
{
    std::string line;
    fatalIf(!std::getline(is, line),
            "readOnlineState: truncated input, expected '", keyword,
            "' section");
    std::istringstream fields(line);
    std::string word;
    fatalIf(!(fields >> word) || word != keyword,
            "readOnlineState: expected '", keyword, "' section, got '",
            line, "'");
    return fields;
}

/** Read one body line of `section` and parse its fields. */
std::istringstream
bodyLine(std::istream &is, const char *section)
{
    std::string line;
    fatalIf(!std::getline(is, line),
            "readOnlineState: truncated '", section, "' section");
    return std::istringstream(line);
}

} // namespace

OnlineState
readOnlineState(std::istream &is)
{
    std::string line;
    expectHeader(is, kOnlineStateHeader, kOnlineStateVersion, line);

    OnlineState state;
    {
        auto fields = sectionLine(is, "seed");
        fatalIf(!(fields >> state.seed),
                "readOnlineState: malformed seed");
    }
    {
        auto fields = sectionLine(is, "epoch");
        fatalIf(!(fields >> state.epoch),
                "readOnlineState: malformed epoch");
    }
    {
        auto fields = sectionLine(is, "tick");
        fatalIf(!(fields >> state.clockTick),
                "readOnlineState: malformed tick");
    }
    {
        auto fields = sectionLine(is, "totals");
        fatalIf(!(fields >> state.totalArrivals >> state.totalDepartures >>
                  state.totalAdmitted >> state.totalProbes >>
                  state.totalMigrations >> state.totalPairsBroken >>
                  state.totalFullRematches),
                "readOnlineState: malformed totals");
    }
    {
        auto fields = sectionLine(is, "penalty");
        fatalIf(!(fields >> state.lastMeanPenalty),
                "readOnlineState: malformed penalty");
    }

    std::size_t count = 0;
    {
        auto fields = sectionLine(is, "live");
        fatalIf(!(fields >> count),
                "readOnlineState: malformed live count");
    }
    state.live.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "live");
        LiveJob job;
        fatalIf(!(fields >> job.uid >> job.type),
                "readOnlineState: malformed live entry ", i);
        state.live.push_back(job);
    }

    {
        auto fields = sectionLine(is, "pairs");
        fatalIf(!(fields >> count),
                "readOnlineState: malformed pairs count");
    }
    state.pairs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "pairs");
        JobUid a = 0, b = 0;
        fatalIf(!(fields >> a >> b),
                "readOnlineState: malformed pair ", i);
        fatalIf(a >= b, "readOnlineState: pair ", i,
                " not strictly ordered");
        state.pairs.emplace_back(a, b);
    }

    {
        auto fields = sectionLine(is, "groups");
        fatalIf(!(fields >> count),
                "readOnlineState: malformed groups count");
    }
    state.groups.reserve(count);
    {
        std::set<JobUid> grouped;
        for (std::size_t i = 0; i < count; ++i) {
            auto fields = bodyLine(is, "groups");
            std::size_t size = 0;
            fatalIf(!(fields >> size),
                    "readOnlineState: malformed group ", i);
            fatalIf(size < 2, "readOnlineState: group ", i, " has ",
                    size, " members (minimum is 2)");
            std::vector<JobUid> group;
            group.reserve(size);
            for (std::size_t j = 0; j < size; ++j) {
                JobUid uid = 0;
                fatalIf(!(fields >> uid),
                        "readOnlineState: truncated group ", i,
                        " (declared ", size, " members)");
                fatalIf(!group.empty() && group.back() >= uid,
                        "readOnlineState: group ", i,
                        " members not strictly ascending");
                fatalIf(!grouped.insert(uid).second,
                        "readOnlineState: uid ", uid,
                        " appears in two groups");
                group.push_back(uid);
            }
            fatalIf(!state.groups.empty() &&
                        state.groups.back().front() >= group.front(),
                    "readOnlineState: groups not ordered by first "
                    "member");
            state.groups.push_back(std::move(group));
        }
    }

    {
        auto fields = sectionLine(is, "queue");
        fatalIf(!(fields >> count >> state.rejected >>
                  state.queueHighWater),
                "readOnlineState: malformed queue counts");
    }
    state.pending.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "queue");
        PendingArrival arrival;
        fatalIf(!(fields >> arrival.uid >> arrival.type >>
                  arrival.arrivalTick),
                "readOnlineState: malformed queue entry ", i);
        state.pending.push_back(arrival);
    }

    std::size_t rows = 0, cols = 0, known = 0;
    {
        auto fields = sectionLine(is, "ratings");
        fatalIf(!(fields >> rows >> cols >> known),
                "readOnlineState: malformed ratings shape");
    }
    state.ratings = SparseMatrix(rows, cols);
    for (std::size_t i = 0; i < known; ++i) {
        auto fields = bodyLine(is, "ratings");
        std::size_t r = 0, c = 0;
        double value = 0.0;
        fatalIf(!(fields >> r >> c >> value),
                "readOnlineState: malformed ratings entry ", i);
        fatalIf(r >= rows || c >= cols, "readOnlineState: ratings cell (",
                r, ", ", c, ") outside declared shape");
        state.ratings.set(r, c, value);
    }
    fatalIf(state.ratings.knownCount() != known,
            "readOnlineState: duplicate ratings cells");

    {
        auto fields = sectionLine(is, "faults");
        fatalIf(!(fields >> state.faultsInjected >> state.retries >>
                  state.quarantined >> state.quarantineReleased >>
                  state.abandoned >> state.crashes >>
                  state.cfFallbacks >> state.checkpointFailures),
                "readOnlineState: malformed faults counters");
    }

    {
        auto fields = sectionLine(is, "quarantine");
        fatalIf(!(fields >> count),
                "readOnlineState: malformed quarantine count");
    }
    state.quarantine.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "quarantine");
        QuarantinedJob job;
        fatalIf(!(fields >> job.uid >> job.type >> job.failures >>
                  job.untilEpoch >> job.rounds),
                "readOnlineState: malformed quarantine entry ", i);
        fatalIf(!state.quarantine.empty() &&
                    state.quarantine.back().uid >= job.uid,
                "readOnlineState: quarantine entries not ascending");
        state.quarantine.push_back(job);
    }

    {
        auto fields = sectionLine(is, "rounds");
        fatalIf(!(fields >> count),
                "readOnlineState: malformed rounds count");
    }
    state.probeRounds.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "rounds");
        std::uint64_t uid = 0, served = 0;
        fatalIf(!(fields >> uid >> served),
                "readOnlineState: malformed rounds entry ", i);
        state.probeRounds.emplace_back(uid, served);
    }

    FaultSpec spec;
    std::size_t script_count = 0;
    {
        auto fields = sectionLine(is, "plan");
        fatalIf(!(fields >> spec.seed >> spec.probeTimeoutRate >>
                  spec.measurementDropRate >>
                  spec.measurementCorruptRate >> spec.corruptSigma >>
                  spec.crashRatePerEpoch >> spec.checkpointFailRate >>
                  script_count),
                "readOnlineState: malformed plan section");
    }
    std::vector<ScriptedFault> script;
    script.reserve(script_count);
    for (std::size_t i = 0; i < script_count; ++i) {
        auto fields = bodyLine(is, "plan");
        ScriptedFault event;
        std::string kind;
        int has_uid = 0;
        fatalIf(!(fields >> event.epoch >> kind >> has_uid >>
                  event.uid >> event.magnitude),
                "readOnlineState: malformed plan event ", i);
        event.kind = faultKindFromName(kind);
        event.hasUid = has_uid != 0;
        script.push_back(event);
    }
    state.faultPlan = FaultPlan(spec, std::move(script));
    return state;
}

void
writeShardedState(std::ostream &os, const ShardedState &state)
{
    os << kOnlineStateHeader << " " << kShardedStateVersion << "\n";
    os << "sharded " << state.perShard.size() << " " << state.seed
       << " " << state.epoch << "\n";
    os << "router " << state.typeShard.size() << "\n";
    for (std::size_t t = 0; t < state.typeShard.size(); ++t)
        os << t << " " << state.typeShard[t] << "\n";
    os << "uids " << state.uidShard.size() << "\n";
    for (const auto &[uid, shard] : state.uidShard)
        os << uid << " " << shard << "\n";
    os << std::setprecision(17);
    os << "rebalance " << state.totalCrossMigrations << " "
       << state.totalRebalanceEpochs << " " << state.lastObjective
       << "\n";
    for (std::size_t s = 0; s < state.perShard.size(); ++s) {
        os << "shard " << s << "\n";
        writeOnlineState(os, state.perShard[s]);
    }
}

ShardedState
readShardedState(std::istream &is)
{
    std::string line;
    expectHeader(is, kOnlineStateHeader, kShardedStateVersion, line);

    ShardedState state;
    std::size_t shards = 0;
    {
        auto fields = sectionLine(is, "sharded");
        fatalIf(!(fields >> shards >> state.seed >> state.epoch),
                "readShardedState: malformed sharded section");
        fatalIf(shards == 0, "readShardedState: zero shards declared");
    }

    std::size_t count = 0;
    {
        auto fields = sectionLine(is, "router");
        fatalIf(!(fields >> count),
                "readShardedState: malformed router count");
    }
    state.typeShard.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "router");
        std::size_t type = 0, shard = 0;
        fatalIf(!(fields >> type >> shard),
                "readShardedState: malformed router entry ", i);
        fatalIf(type != i, "readShardedState: router entry ", i,
                " names type ", type);
        fatalIf(shard >= shards, "readShardedState: type ", type,
                " maps to shard ", shard, ", only ", shards,
                " declared");
        state.typeShard[i] = shard;
    }

    {
        auto fields = sectionLine(is, "uids");
        fatalIf(!(fields >> count),
                "readShardedState: malformed uids count");
    }
    state.uidShard.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto fields = bodyLine(is, "uids");
        JobUid uid = 0;
        std::size_t shard = 0;
        fatalIf(!(fields >> uid >> shard),
                "readShardedState: malformed uid entry ", i);
        fatalIf(shard >= shards, "readShardedState: uid ", uid,
                " maps to shard ", shard, ", only ", shards,
                " declared");
        fatalIf(!state.uidShard.empty() &&
                    state.uidShard.back().first >= uid,
                "readShardedState: uid entries not ascending");
        state.uidShard.emplace_back(uid, shard);
    }

    {
        auto fields = sectionLine(is, "rebalance");
        fatalIf(!(fields >> state.totalCrossMigrations >>
                  state.totalRebalanceEpochs >> state.lastObjective),
                "readShardedState: malformed rebalance section");
    }

    state.perShard.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        auto fields = sectionLine(is, "shard");
        std::size_t index = 0;
        fatalIf(!(fields >> index) || index != s,
                "readShardedState: expected shard ", s,
                " block (a truncated or shard-count-mismatched "
                "checkpoint)");
        state.perShard.push_back(readOnlineState(is));
        fatalIf(state.perShard.back().epoch != state.epoch,
                "readShardedState: shard ", s, " is at epoch ",
                state.perShard.back().epoch, ", fleet epoch is ",
                state.epoch);
    }
    return state;
}

void
saveProfiles(const std::string &path, const SparseMatrix &profiles)
{
    std::ofstream out(path);
    fatalIf(!out, "saveProfiles: cannot open '", path, "'");
    writeProfiles(out, profiles);
    fatalIf(!out, "saveProfiles: write to '", path, "' failed");
}

SparseMatrix
loadProfiles(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadProfiles: cannot open '", path, "'");
    return readProfiles(in);
}

void
saveMatching(const std::string &path, const Matching &matching)
{
    std::ofstream out(path);
    fatalIf(!out, "saveMatching: cannot open '", path, "'");
    writeMatching(out, matching);
    fatalIf(!out, "saveMatching: write to '", path, "' failed");
}

Matching
loadMatching(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadMatching: cannot open '", path, "'");
    return readMatching(in);
}

void
saveOnlineState(const std::string &path, const OnlineState &state)
{
    std::ofstream out(path);
    fatalIf(!out, "saveOnlineState: cannot open '", path, "'");
    writeOnlineState(out, state);
    fatalIf(!out, "saveOnlineState: write to '", path, "' failed");
}

OnlineState
loadOnlineState(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadOnlineState: cannot open '", path, "'");
    return readOnlineState(in);
}

void
saveShardedState(const std::string &path, const ShardedState &state)
{
    std::ofstream out(path);
    fatalIf(!out, "saveShardedState: cannot open '", path, "'");
    writeShardedState(out, state);
    fatalIf(!out, "saveShardedState: write to '", path, "' failed");
}

ShardedState
loadShardedState(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadShardedState: cannot open '", path, "'");
    return readShardedState(in);
}

} // namespace cooper
