#include "serialize.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hh"

namespace cooper {

namespace {

constexpr const char *kProfilesHeader = "cooper-profiles";
constexpr const char *kMatchingHeader = "cooper-matching";
constexpr int kFormatVersion = 1;

void
expectHeader(std::istream &is, const char *magic, std::string &line)
{
    fatalIf(!std::getline(is, line), "serialize: empty input");
    std::istringstream header(line);
    std::string word;
    int version = 0;
    header >> word >> version;
    fatalIf(word != magic, "serialize: expected '", magic,
            "' header, got '", word, "'");
    fatalIf(version != kFormatVersion, "serialize: unsupported version ",
            version);
}

} // namespace

void
writeProfiles(std::ostream &os, const SparseMatrix &profiles)
{
    os << kProfilesHeader << " " << kFormatVersion << " "
       << profiles.rows() << " " << profiles.cols() << "\n";
    os << std::setprecision(17);
    for (const auto &entry : profiles.entries())
        os << entry.row << " " << entry.col << " " << entry.value
           << "\n";
}

SparseMatrix
readProfiles(std::istream &is)
{
    std::string line;
    expectHeader(is, kProfilesHeader, line);
    std::istringstream header(line);
    std::string word;
    int version = 0;
    std::size_t rows = 0, cols = 0;
    header >> word >> version >> rows >> cols;
    fatalIf(rows == 0 || cols == 0,
            "readProfiles: bad shape ", rows, "x", cols);

    SparseMatrix out(rows, cols);
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream cells(line);
        std::size_t r = 0, c = 0;
        double value = 0.0;
        fatalIf(!(cells >> r >> c >> value),
                "readProfiles: malformed line ", lineno, ": '", line,
                "'");
        fatalIf(r >= rows || c >= cols,
                "readProfiles: cell (", r, ", ", c,
                ") outside declared shape on line ", lineno);
        out.set(r, c, value);
    }
    return out;
}

void
writeMatching(std::ostream &os, const Matching &matching)
{
    os << kMatchingHeader << " " << kFormatVersion << " "
       << matching.size() << "\n";
    for (const auto &[a, b] : matching.pairs())
        os << a << " " << b << "\n";
}

Matching
readMatching(std::istream &is)
{
    std::string line;
    expectHeader(is, kMatchingHeader, line);
    std::istringstream header(line);
    std::string word;
    int version = 0;
    std::size_t n = 0;
    header >> word >> version >> n;
    fatalIf(n == 0, "readMatching: empty matching declared");

    Matching out(n);
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream cells(line);
        std::size_t a = 0, b = 0;
        fatalIf(!(cells >> a >> b),
                "readMatching: malformed line ", lineno, ": '", line,
                "'");
        fatalIf(a >= n || b >= n,
                "readMatching: agent out of range on line ", lineno);
        fatalIf(out.isMatched(a) || out.isMatched(b),
                "readMatching: agent repeated on line ", lineno);
        out.pair(a, b);
    }
    return out;
}

void
saveProfiles(const std::string &path, const SparseMatrix &profiles)
{
    std::ofstream out(path);
    fatalIf(!out, "saveProfiles: cannot open '", path, "'");
    writeProfiles(out, profiles);
    fatalIf(!out, "saveProfiles: write to '", path, "' failed");
}

SparseMatrix
loadProfiles(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadProfiles: cannot open '", path, "'");
    return readProfiles(in);
}

void
saveMatching(const std::string &path, const Matching &matching)
{
    std::ofstream out(path);
    fatalIf(!out, "saveMatching: cannot open '", path, "'");
    writeMatching(out, matching);
    fatalIf(!out, "saveMatching: write to '", path, "' failed");
}

Matching
loadMatching(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadMatching: cannot open '", path, "'");
    return readMatching(in);
}

} // namespace cooper
