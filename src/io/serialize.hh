/**
 * @file
 * Text serialization for the artifacts agents and the coordinator
 * exchange.
 *
 * The paper's implementation writes co-runner assignments to files
 * that are sent to agents, and agents communicate over files and the
 * network (Section IV.B). This module provides the equivalent durable
 * formats: profile matrices and matchings round-trip through simple
 * line-oriented text with explicit versioned headers.
 */

#ifndef COOPER_IO_SERIALIZE_HH
#define COOPER_IO_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "cf/sparse_matrix.hh"
#include "matching/matching.hh"
#include "online/state.hh"
#include "shard/sharded_state.hh"

namespace cooper {

/** Write a sparse profile matrix; format: header then "row col value"
 *  lines for each known cell. */
void writeProfiles(std::ostream &os, const SparseMatrix &profiles);

/** Parse a profile matrix; raises FatalError on malformed input. */
SparseMatrix readProfiles(std::istream &is);

/** Write a matching; format: header then "a b" lines per pair. */
void writeMatching(std::ostream &os, const Matching &matching);

/** Parse a matching; raises FatalError on malformed input. */
Matching readMatching(std::istream &is);

/**
 * Write an online-service checkpoint (see OnlineState); format:
 * "cooper-online-state 4" header, then keyword-tagged sections for the
 * clock, totals, live population, uid-level pairs, admission queue,
 * the warm-start profile matrix, and (since v2) the fault plane: the
 * lifetime fault counters, quarantine table, pending probe rounds,
 * and the fault plan itself, so a restore refuses to resume under a
 * different fault schedule. v4 adds a "groups" section after the
 * pairs — the coalition policy's uid-level n-way colocations, one
 * "<size> <uid...>" line per group, members strictly ascending and
 * groups ordered by first member (empty under the pairwise policies).
 */
void writeOnlineState(std::ostream &os, const OnlineState &state);

/** Parse a checkpoint; raises FatalError on malformed input. */
OnlineState readOnlineState(std::istream &is);

/**
 * Write a sharded fleet checkpoint (see ShardedState); format:
 * "cooper-online-state 5" header — odd versions of the checkpoint
 * family are the sharded container — then the router's type partition
 * and uid map, the fleet rebalance counters, and one embedded v4
 * per-shard block per shard, each introduced by a "shard <index>"
 * line. readOnlineState() consumes exactly its counted sections, so
 * the v4 blocks nest without delimiters.
 */
void writeShardedState(std::ostream &os, const ShardedState &state);

/** Parse a sharded checkpoint; raises FatalError on malformed input,
 *  including a declared shard count the per-shard blocks do not
 *  match. */
ShardedState readShardedState(std::istream &is);

/** Convenience file wrappers; raise FatalError on I/O failure. */
void saveProfiles(const std::string &path, const SparseMatrix &profiles);
SparseMatrix loadProfiles(const std::string &path);
void saveMatching(const std::string &path, const Matching &matching);
Matching loadMatching(const std::string &path);
void saveOnlineState(const std::string &path, const OnlineState &state);
OnlineState loadOnlineState(const std::string &path);
void saveShardedState(const std::string &path, const ShardedState &state);
ShardedState loadShardedState(const std::string &path);

} // namespace cooper

#endif // COOPER_IO_SERIALIZE_HH
