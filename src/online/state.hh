/**
 * @file
 * Checkpointable state of the online colocation service.
 *
 * Everything the driver needs to resume a run is here: the virtual
 * clock, the live population with its uid-level matching, the
 * admission queue, the lifetime counters, and the warm-start profile
 * matrix. Nothing else is required because all randomness is derived
 * from (seed, epoch, uid) substreams — no generator ever advances
 * across epochs — and pending trace events are reconstructed from the
 * trace itself via ChurnTrace::suffix(clockTick).
 */

#ifndef COOPER_ONLINE_STATE_HH
#define COOPER_ONLINE_STATE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "cf/sparse_matrix.hh"
#include "fault/plan.hh"
#include "fault/quarantine.hh"
#include "online/admission.hh"
#include "online/events.hh"

namespace cooper {

/** One running job: trace identity plus its catalog type. */
struct LiveJob
{
    JobUid uid = 0;
    JobTypeId type = 0;
};

/**
 * Snapshot of an OnlineDriver between epochs.
 */
struct OnlineState
{
    /** Seed the run was started with; restore refuses a mismatch. */
    std::uint64_t seed = 0;

    /** Epochs completed. */
    std::uint64_t epoch = 0;

    /** Virtual-clock position: every event with tick < clockTick has
     *  been processed. Resume with trace.suffix(clockTick). */
    Tick clockTick = 0;

    /** Running jobs in admission order (agent ids are indices). */
    std::vector<LiveJob> live;

    /** Uid-level matching, first < second, ascending. */
    std::vector<std::pair<JobUid, JobUid>> pairs;

    /**
     * Uid-level coalitions under the coalition policy: each group a
     * set of >= 2 uids sharing one CMP, members ascending, groups
     * ordered by first member. Empty under the pairwise policies
     * (whose colocations live in `pairs`); a uid never appears in
     * both.
     */
    std::vector<std::vector<JobUid>> groups;

    /** Admission queue contents in FIFO order. */
    std::vector<PendingArrival> pending;

    /** Arrivals rejected by backpressure so far. */
    std::size_t rejected = 0;

    /** Deepest the admission queue has been. */
    std::size_t queueHighWater = 0;

    /** Lifetime counters (mirrored into OnlineReport totals). */
    std::size_t totalArrivals = 0;
    std::size_t totalDepartures = 0;
    std::size_t totalAdmitted = 0;
    std::size_t totalProbes = 0;
    std::size_t totalMigrations = 0;
    std::size_t totalPairsBroken = 0;
    std::size_t totalFullRematches = 0;

    /** Mean true penalty of the most recent epoch's matching. */
    double lastMeanPenalty = 0.0;

    /** Quarantined jobs, ascending by uid. */
    std::vector<QuarantinedJob> quarantine;

    /**
     * Failed-probe rounds per uid for jobs currently *outside* the
     * quarantine table (released back into the admission queue but
     * not yet cleanly re-probed), ascending by uid. Without this a
     * checkpoint taken while a released job waits in the FIFO would
     * forget how close it is to abandonment.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> probeRounds;

    /** Lifetime fault-plane counters. */
    std::size_t faultsInjected = 0;
    std::size_t retries = 0;
    std::size_t quarantined = 0;
    std::size_t quarantineReleased = 0;
    std::size_t abandoned = 0;
    std::size_t crashes = 0;
    std::size_t cfFallbacks = 0;
    std::size_t checkpointFailures = 0;

    /** The fault plan the run was started with; restore refuses a
     *  mismatch (a checkpoint only replays under its own schedule). */
    FaultPlan faultPlan;

    /** Warm-start profile matrix (type-level measured penalties).
     *  The 1x1 default is a placeholder (SparseMatrix rejects empty
     *  shapes); snapshot() and readOnlineState() always replace it. */
    SparseMatrix ratings{1, 1};
};

} // namespace cooper

#endif // COOPER_ONLINE_STATE_HH
