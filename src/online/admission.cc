#include "admission.hh"

#include <algorithm>

namespace cooper {

bool
AdmissionQueue::offer(const PendingArrival &arrival)
{
    if (maxDepth_ > 0 && queue_.size() >= maxDepth_) {
        ++rejected_;
        return false;
    }
    queue_.push_back(arrival);
    highWater_ = std::max(highWater_, queue_.size());
    return true;
}

bool
AdmissionQueue::offerUrgent(const PendingArrival &arrival)
{
    if (maxDepth_ > 0 && queue_.size() >= maxDepth_) {
        ++rejected_;
        return false;
    }
    queue_.push_front(arrival);
    highWater_ = std::max(highWater_, queue_.size());
    return true;
}

std::vector<PendingArrival>
AdmissionQueue::admit(std::size_t capacity)
{
    std::vector<PendingArrival> admitted;
    while (!queue_.empty() && admitted.size() < capacity) {
        admitted.push_back(queue_.front());
        queue_.pop_front();
    }
    return admitted;
}

bool
AdmissionQueue::withdraw(JobUid uid)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->uid == uid) {
            queue_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<PendingArrival>
AdmissionQueue::snapshot() const
{
    return std::vector<PendingArrival>(queue_.begin(), queue_.end());
}

void
AdmissionQueue::restore(const std::vector<PendingArrival> &pending,
                        std::size_t rejected, std::size_t high_water)
{
    queue_.assign(pending.begin(), pending.end());
    rejected_ = rejected;
    highWater_ = std::max(high_water, queue_.size());
}

} // namespace cooper
