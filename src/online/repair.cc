#include "repair.hh"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "core/policies.hh"
#include "matching/blocking.hh"
#include "matching/disutility.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

RepairingPolicy::RepairingPolicy(std::string policy, double alpha,
                                 std::size_t migration_budget,
                                 std::size_t full_rematch_blocking_pairs)
    : policy_(std::move(policy)), alpha_(alpha),
      migrationBudget_(migration_budget),
      fullRematchBlockingPairs_(full_rematch_blocking_pairs)
{
    // Fail fast on unknown policy names rather than mid-epoch.
    makePolicy(policy_);
}

RepairOutcome
RepairingPolicy::repair(const ColocationInstance &instance,
                        const Matching &previous, Rng &rng,
                        std::size_t threads) const
{
    const TraceSpan span("online.repair", "online");
    const ScopedTimer timer("online.repair_seconds");
    panicIf(previous.size() != instance.agents(),
            "RepairingPolicy: previous matching covers ",
            previous.size(), " agents, instance has ",
            instance.agents());
    const DisutilityTable believed = instance.believedTable(threads);
    return repairImpl(instance, previous, rng, threads, believed,
                      nullptr);
}

RepairOutcome
RepairingPolicy::repair(const ColocationInstance &instance,
                        const Matching &previous, Rng &rng,
                        std::size_t threads,
                        const DisutilityTable &believed,
                        BlockingBounds &bounds,
                        const std::vector<AgentId> &dirty_rows,
                        bool rebuild_bounds) const
{
    const TraceSpan span("online.repair", "online");
    const ScopedTimer timer("online.repair_seconds");
    panicIf(previous.size() != instance.agents(),
            "RepairingPolicy: previous matching covers ",
            previous.size(), " agents, instance has ",
            instance.agents());
    if (rebuild_bounds)
        bounds.rebuild(previous, believed, alpha_, threads);
    else
        bounds.update(previous, believed, alpha_, dirty_rows, threads);
    return repairImpl(instance, previous, rng, threads, believed,
                      &bounds);
}

RepairOutcome
RepairingPolicy::repairImpl(const ColocationInstance &instance,
                            const Matching &previous, Rng &rng,
                            std::size_t threads,
                            const DisutilityTable &believed,
                            BlockingBounds *bounds) const
{
    const std::size_t n = instance.agents();

    RepairOutcome out;
    const auto policy = makePolicy(policy_);
    // The bounds hold exactly the pairs (and gains) the scan would
    // find; both branches feed identical data downstream.
    const auto blocking =
        bounds != nullptr
            ? bounds->pairs(believed)
            : findBlockingPairs(previous, believed, alpha_, threads);
    const auto countAfter = [&](const Matching &matching) {
        if (bounds == nullptr)
            return countBlockingPairs(matching, believed, alpha_,
                                      threads);
        // Partner churn from the repair is detected internally; the
        // table did not change, so no rows are dirty.
        bounds->update(matching, believed, alpha_, {}, threads);
        return bounds->count();
    };
    out.blockingBefore = blocking.size();

    // Degraded past the threshold: local patching would chase its own
    // tail, so re-match everyone.
    if (out.blockingBefore > fullRematchBlockingPairs_) {
        out.fullRematch = true;
        out.repairedAgents = n;
        out.matching = policy->assign(instance, rng);
        out.blockingAfter = countAfter(out.matching);
        if (MetricsRegistry *metrics = obsMetrics())
            metrics->counter("online.full_rematches").add(1);
        return out;
    }

    out.matching = previous;

    // Spend the migration budget where blocking pressure is worst:
    // each kept pair's pressure is the best bottleneck gain over the
    // blocking pairs touching either member.
    if (migrationBudget_ > 0 && !blocking.empty()) {
        std::map<std::pair<AgentId, AgentId>, double> pressure;
        for (const BlockingPair &pair : blocking) {
            const double gain = std::min(pair.gainA, pair.gainB);
            for (AgentId member : {pair.a, pair.b}) {
                if (!previous.isMatched(member))
                    continue;
                const AgentId partner = previous.partnerOf(member);
                const auto key =
                    std::make_pair(std::min(member, partner),
                                   std::max(member, partner));
                auto [it, inserted] = pressure.emplace(key, gain);
                if (!inserted)
                    it->second = std::max(it->second, gain);
            }
        }
        std::vector<std::pair<std::pair<AgentId, AgentId>, double>>
            ranked(pressure.begin(), pressure.end());
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &x, const auto &y) {
                             if (x.second != y.second)
                                 return x.second > y.second;
                             return x.first < y.first;
                         });
        for (const auto &[key, gain] : ranked) {
            if (out.pairsBroken >= migrationBudget_)
                break;
            out.matching.unpair(key.first);
            ++out.pairsBroken;
        }
    }

    // The delta: arrivals, widowed partners, and the pairs broken
    // above, in ascending index order.
    std::vector<AgentId> free_agents;
    for (AgentId a = 0; a < n; ++a)
        if (!out.matching.isMatched(a))
            free_agents.push_back(a);
    out.repairedAgents = free_agents.size();
    if (free_agents.size() < 2) {
        out.blockingAfter = countAfter(out.matching);
        if (MetricsRegistry *metrics = obsMetrics())
            metrics->counter("online.repair_noops").add(1);
        return out;
    }

    // Run the configured policy on the delta sub-instance. Penalty
    // matrices are type-level and shared; only the population narrows.
    std::vector<JobTypeId> free_types;
    free_types.reserve(free_agents.size());
    for (AgentId a : free_agents)
        free_types.push_back(instance.typeOf(a));
    const ColocationInstance delta(instance.catalog(),
                                   std::move(free_types),
                                   instance.truth(), instance.believed(),
                                   instance.jitter());
    const Matching delta_matching = policy->assign(delta, rng);
    for (const auto &[i, j] : delta_matching.pairs())
        out.matching.pair(free_agents[i], free_agents[j]);
    out.blockingAfter = countAfter(out.matching);

    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("online.repaired_agents")
            .add(out.repairedAgents);
        metrics->counter("online.pairs_broken").add(out.pairsBroken);
    }
    return out;
}

} // namespace cooper
