/**
 * @file
 * Configuration for the online colocation service.
 *
 * Kept dependency-free (like obs/config.hh) so ExecutionConfig can
 * embed an OnlineConfig without pulling the online machinery into
 * every translation unit that only wants the threads knob.
 */

#ifndef COOPER_ONLINE_ONLINE_CONFIG_HH
#define COOPER_ONLINE_ONLINE_CONFIG_HH

#include <cstddef>
#include <cstdint>

namespace cooper {

/**
 * Knobs of the event-driven online driver.
 *
 * All of them are semantic: they change which decisions the service
 * makes, never whether a run is reproducible. A (trace, seed, config)
 * triple fully determines every pairing, penalty, and counter the
 * driver reports, for any thread count.
 */
struct OnlineConfig
{
    /** Virtual-clock ticks per epoch; the coordinator re-pairs at
     *  every epoch boundary. */
    std::uint64_t epochTicks = 100;

    /**
     * Profiling capacity: arrivals admitted from the queue per epoch.
     * Each admission costs probe measurements, so this models how many
     * new jobs the profiler can characterize per epoch.
     */
    std::size_t admitPerEpoch = 8;

    /**
     * Backpressure bound on the admission queue. Arrivals past this
     * depth are rejected (counted, never silently dropped); 0 means
     * unbounded.
     */
    std::size_t maxQueueDepth = 64;

    /**
     * Type-level probe colocations measured per admitted arrival,
     * against co-runner types present in the current population. The
     * sparse-probing counterpart of the offline profiler's
     * sampleRatio.
     */
    std::size_t probesPerArrival = 4;

    /** Measurements averaged per probe (as CoordinatorConfig's
     *  profileRepeats). */
    std::size_t profileRepeats = 3;

    /**
     * Cells re-measured per epoch to keep old profiles fresh; 0
     * disables refresh. Refreshed cells overwrite the warm-start
     * ratings and dirty the incremental predictor's similarity state.
     */
    std::size_t refreshProbesPerEpoch = 0;

    /**
     * Migration budget: kept pairs the repairing policy may break per
     * epoch (beyond pairs already widowed by departures). Bounds
     * churn imposed on running jobs.
     */
    std::size_t migrationBudget = 8;

    /**
     * When a repair epoch finds more blocking pairs than this among
     * the kept pairs, the policy gives up on local repair and re-runs
     * the full matching. 0 re-matches whenever any blocking pair
     * exists.
     */
    std::size_t fullRematchBlockingPairs = 32;

    /**
     * Use the warm-started incremental predictor. Off forces a full
     * re-prediction every epoch (the bench's baseline); results are
     * bit-identical either way.
     */
    bool incremental = true;
};

} // namespace cooper

#endif // COOPER_ONLINE_ONLINE_CONFIG_HH
