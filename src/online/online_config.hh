/**
 * @file
 * Configuration for the online colocation service.
 *
 * Kept dependency-free (like obs/config.hh) so ExecutionConfig can
 * embed an OnlineConfig without pulling the online machinery into
 * every translation unit that only wants the threads knob.
 */

#ifndef COOPER_ONLINE_ONLINE_CONFIG_HH
#define COOPER_ONLINE_ONLINE_CONFIG_HH

#include <cstddef>
#include <cstdint>

namespace cooper {

/**
 * Knobs of the event-driven online driver.
 *
 * All of them are semantic: they change which decisions the service
 * makes, never whether a run is reproducible. A (trace, seed, config)
 * triple fully determines every pairing, penalty, and counter the
 * driver reports, for any thread count.
 */
struct OnlineConfig
{
    /** Virtual-clock ticks per epoch; the coordinator re-pairs at
     *  every epoch boundary. */
    std::uint64_t epochTicks = 100;

    /**
     * Profiling capacity: arrivals admitted from the queue per epoch.
     * Each admission costs probe measurements, so this models how many
     * new jobs the profiler can characterize per epoch.
     */
    std::size_t admitPerEpoch = 8;

    /**
     * Backpressure bound on the admission queue. Arrivals past this
     * depth are rejected (counted, never silently dropped); 0 means
     * unbounded.
     */
    std::size_t maxQueueDepth = 64;

    /**
     * Type-level probe colocations measured per admitted arrival,
     * against co-runner types present in the current population. The
     * sparse-probing counterpart of the offline profiler's
     * sampleRatio.
     */
    std::size_t probesPerArrival = 4;

    /** Measurements averaged per probe (as CoordinatorConfig's
     *  profileRepeats). */
    std::size_t profileRepeats = 3;

    /**
     * Cells re-measured per epoch to keep old profiles fresh; 0
     * disables refresh. Refreshed cells overwrite the warm-start
     * ratings and dirty the incremental predictor's similarity state.
     */
    std::size_t refreshProbesPerEpoch = 0;

    /**
     * Migration budget: kept pairs the repairing policy may break per
     * epoch (beyond pairs already widowed by departures). Bounds
     * churn imposed on running jobs.
     */
    std::size_t migrationBudget = 8;

    /**
     * When a repair epoch finds more blocking pairs than this among
     * the kept pairs, the policy gives up on local repair and re-runs
     * the full matching. 0 re-matches whenever any blocking pair
     * exists.
     */
    std::size_t fullRematchBlockingPairs = 32;

    /**
     * Use the warm-started incremental predictor. Off forces a full
     * re-prediction every epoch (the bench's baseline); results are
     * bit-identical either way.
     */
    bool incremental = true;

    /**
     * Maintain blocking-pair status incrementally across epochs
     * (BlockingBounds) instead of re-scanning all O(n^2) pairs every
     * repair. Off forces the full scans (the bench's baseline);
     * decisions — and the run summary — are bit-identical either way.
     */
    bool incrementalBlocking = true;

    // -- Degradation ladder (see DESIGN.md, "Fault plane & degradation
    // ladder"). These knobs only matter when a FaultPlan is active or
    // a probe budget is set; with the inert default plan the service
    // behaves exactly as before.

    /**
     * Probe attempts per cell when attempts time out: the first try
     * plus up to probeMaxRetries retries, backed off exponentially on
     * the virtual clock (retry k waits probeBackoffTicks << (k-1)
     * ticks). All integer arithmetic, so retry schedules replay
     * bit-identically at any thread count.
     */
    std::size_t probeMaxRetries = 3;

    /** Base backoff before the first retry, in virtual ticks. */
    std::uint64_t probeBackoffTicks = 1;

    /**
     * A cell's retry ladder is abandoned once its cumulative backoff
     * exceeds this many virtual ticks (the epoch boundary cannot wait
     * forever for one probe).
     */
    std::uint64_t probeDeadlineTicks = 16;

    /**
     * Measurement attempts the profiler may spend per epoch across
     * all probing (admission + refresh); 0 = unbounded. When the
     * budget is exhausted, remaining cells are skipped and their
     * penalties fall back to CF prediction.
     */
    std::size_t probeBudgetPerEpoch = 0;

    /**
     * Quarantine an arrival when at least this many of its probe
     * cells fail outright (every attempt timed out); 0 disables
     * quarantine (the job is admitted on whatever probes landed).
     */
    std::size_t quarantineAfterFailures = 2;

    /** Epochs a quarantined job sits out before re-admission. */
    std::uint64_t quarantineEpochs = 2;

    /**
     * Quarantine rounds before a job is abandoned for good (counted
     * in the abandoned total, never silently dropped). Bounds the
     * retry loop so a permanently unreachable node cannot wedge the
     * service.
     */
    std::size_t maxQuarantineRounds = 3;

    /**
     * Checkpoint cadence: invoke the driver's checkpoint sink every
     * this many epochs; 0 disables periodic checkpoints. A failed or
     * fault-injected write is counted and skipped — the last good
     * checkpoint stands and the epoch still commits.
     */
    std::uint64_t checkpointEveryEpochs = 0;

    /**
     * Coalition capacity: jobs sharing one CMP when the framework
     * policy is "coalition" (2..20). Ignored by the pairwise
     * policies. G = 2 reproduces pairing (the coalition seed is the
     * adapted stable-roommates matching); G >= 3 packs n-way.
     */
    std::size_t groupSize = 2;

    // -- Sharding (see src/shard). Read by the ShardedDriver and the
    // CLI only; the flat OnlineDriver ignores both knobs.

    /**
     * Matching domains the sharded driver partitions arrivals into,
     * clamped to the catalog size (more shards than job types would
     * leave empty domains). The CLI treats 0 as "run the flat,
     * unsharded driver".
     */
    std::size_t shards = 1;

    /**
     * Cross-shard migrations the epoch-boundary rebalancer may apply
     * per epoch; 0 disables rebalancing. Each migrant re-enters its
     * target shard through the urgent admission path, so migration
     * has a real cost (a probe round) and respects backpressure.
     */
    std::size_t rebalanceBudgetPerEpoch = 4;
};

} // namespace cooper

#endif // COOPER_ONLINE_ONLINE_CONFIG_HH
