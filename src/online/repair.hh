/**
 * @file
 * Incremental re-matching with a migration budget.
 *
 * An online epoch rarely needs to re-pair everyone: departures widow
 * a few agents, arrivals add a few more, and the rest of the matching
 * is still good. The repairing policy re-runs the configured
 * colocation policy (SMR, SR, ...) on just that delta — the free
 * agents plus up to `migrationBudget` kept pairs it deliberately
 * breaks where blocking pressure is worst — and falls back to a full
 * re-match when the kept matching has degraded past a blocking-pair
 * threshold.
 */

#ifndef COOPER_ONLINE_REPAIR_HH
#define COOPER_ONLINE_REPAIR_HH

#include <cstddef>
#include <string>

#include <vector>

#include "core/instance.hh"
#include "matching/blocking_incremental.hh"
#include "matching/disutility.hh"
#include "matching/matching.hh"
#include "util/rng.hh"

namespace cooper {

/** What one repair epoch decided. */
struct RepairOutcome
{
    /** The new matching over the instance's agents. */
    Matching matching;

    /** Local repair was abandoned for a full re-match. */
    bool fullRematch = false;

    /** Blocking pairs of the carried-over matching (believed
     *  disutilities, the policy's view). */
    std::size_t blockingBefore = 0;

    /** Blocking pairs of the repaired matching (same believed view);
     *  what the service actually ships this epoch. */
    std::size_t blockingAfter = 0;

    /** Kept pairs broken under the migration budget. */
    std::size_t pairsBroken = 0;

    /** Agents handed to the delta policy run. */
    std::size_t repairedAgents = 0;
};

/**
 * Budgeted incremental re-matching around a colocation policy.
 */
class RepairingPolicy
{
  public:
    /**
     * @param policy Colocation policy short name (GR, CO, SMP, SMR,
     *        SR, TH) run on the delta (and on full re-matches).
     * @param alpha Minimum mutual gain for a pair to count as
     *        blocking.
     * @param migration_budget Kept pairs breakable per epoch.
     * @param full_rematch_blocking_pairs Blocking-pair count beyond
     *        which local repair is abandoned.
     */
    RepairingPolicy(std::string policy, double alpha,
                    std::size_t migration_budget,
                    std::size_t full_rematch_blocking_pairs);

    /**
     * Repair `previous` for `instance`.
     *
     * `previous` must cover exactly the instance's agents; agents the
     * driver could not carry over (arrivals, widowed partners) are
     * simply unmatched in it.
     *
     * @param rng Random stream for the policy run (the driver hands
     *        an epoch-keyed substream so results replay exactly).
     * @param threads Worker threads for the table fills and scans.
     */
    RepairOutcome repair(const ColocationInstance &instance,
                         const Matching &previous, Rng &rng,
                         std::size_t threads) const;

    /**
     * Incremental-blocking variant: decisions identical to repair(),
     * but the believed table is caller-owned (so it can be refreshed
     * instead of rebuilt) and blocking pairs come from `bounds`
     * instead of fresh O(n^2) scans.
     *
     * `believed` must equal instance.believedTable(); `dirty_rows`
     * lists the agents whose believed rows changed since `bounds` was
     * last consistent (ignored when `rebuild_bounds` forces a full
     * rebuild — pass true whenever the agent population changed).
     * On return `bounds` reflects the shipped matching against
     * `believed`, ready for the next epoch's update.
     */
    RepairOutcome repair(const ColocationInstance &instance,
                         const Matching &previous, Rng &rng,
                         std::size_t threads,
                         const DisutilityTable &believed,
                         BlockingBounds &bounds,
                         const std::vector<AgentId> &dirty_rows,
                         bool rebuild_bounds) const;

  private:
    /** Shared repair flow; `bounds`, when non-null, must already
     *  reflect (previous, believed) and is kept current. */
    RepairOutcome repairImpl(const ColocationInstance &instance,
                             const Matching &previous, Rng &rng,
                             std::size_t threads,
                             const DisutilityTable &believed,
                             BlockingBounds *bounds) const;

    std::string policy_;
    double alpha_;
    std::size_t migrationBudget_;
    std::size_t fullRematchBlockingPairs_;
};

} // namespace cooper

#endif // COOPER_ONLINE_REPAIR_HH
