/**
 * @file
 * Timestamped job churn events and the deterministic event queue.
 *
 * The online service is driven by arrival/departure events on a
 * virtual clock measured in integer ticks — no wall-clock ever enters
 * the decision path, so replaying a trace is exact. Events carry a
 * trace-scoped job id assigned at arrival; a departure names the id
 * of the arrival it ends.
 */

#ifndef COOPER_ONLINE_EVENTS_HH
#define COOPER_ONLINE_EVENTS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hh"

namespace cooper {

/** Virtual time, in ticks. */
using Tick = std::uint64_t;

/** Trace-scoped job identity, stable across population reshuffles. */
using JobUid = std::uint64_t;

/** What happens at an event's tick. */
enum class EventKind
{
    Arrival,   //!< a job of `type` enters, identified by `uid`
    Departure, //!< the job `uid` leaves
};

/** One churn event. */
struct ChurnEvent
{
    Tick tick = 0;
    EventKind kind = EventKind::Arrival;
    JobUid uid = 0;

    /** Job type; meaningful for arrivals only. */
    JobTypeId type = 0;
};

/**
 * A validated sequence of churn events.
 *
 * Construction sorts by (tick, sequence) — ties keep input order, so
 * a trace file replays in exactly its line order — and rejects
 * malformed traces: departures of unknown or already-departed uids,
 * and re-used arrival uids.
 */
class ChurnTrace
{
  public:
    ChurnTrace() = default;

    /** Validate and adopt events; raises FatalError when invalid. */
    explicit ChurnTrace(std::vector<ChurnEvent> events);

    const std::vector<ChurnEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Tick of the last event; 0 for an empty trace. */
    Tick lastTick() const;

    /** Events with tick >= `from`, re-validated as a standalone trace
     *  (arrivals before the cut are dropped along with their
     *  departures' pairing check relaxed — used to resume a
     *  checkpointed run against the tail of its trace). */
    ChurnTrace suffix(Tick from) const;

  private:
    std::vector<ChurnEvent> events_;
};

/**
 * Min-heap of churn events ordered by (tick, push sequence): two
 * events at the same tick pop in push order, so draining the queue is
 * deterministic no matter how it was filled.
 */
class EventQueue
{
  public:
    void push(const ChurnEvent &event);

    /** Enqueue a whole trace (in its canonical order). */
    void push(const ChurnTrace &trace);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; fatal when empty. */
    Tick nextTick() const;

    /** Pop the earliest event; fatal when empty. */
    ChurnEvent pop();

  private:
    struct Node
    {
        ChurnEvent event;
        std::uint64_t seq = 0;
    };

    static bool laterThan(const Node &a, const Node &b);

    std::vector<Node> heap_;
    std::uint64_t nextSeq_ = 0;
};

/** Write a trace; format: "cooper-trace 1 <n>" header, then one
 *  "arrive <tick> <uid> <type>" or "depart <tick> <uid>" line per
 *  event. */
void writeTrace(std::ostream &os, const ChurnTrace &trace);

/** Parse a trace; raises FatalError on malformed input. */
ChurnTrace readTrace(std::istream &is);

/** Convenience file wrappers; raise FatalError on I/O failure. */
void saveTrace(const std::string &path, const ChurnTrace &trace);
ChurnTrace loadTrace(const std::string &path);

} // namespace cooper

#endif // COOPER_ONLINE_EVENTS_HH
