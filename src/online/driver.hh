/**
 * @file
 * Event-driven online colocation service.
 *
 * The offline framework plays one epoch over a fixed population; the
 * OnlineDriver replays a churn trace on a virtual clock and runs
 * Cooper continuously. Each epoch it drains the epoch's events
 * (arrivals queue up for admission, departures free their partners),
 * admits up to the profiling capacity, probes admitted jobs against
 * the current population, re-predicts preferences with the
 * warm-started IncrementalPredictor, and repairs the carried-over
 * matching under a migration budget.
 *
 * Determinism contract: a (trace, seed, config) triple fully
 * determines every pairing, penalty, and counter, for any thread
 * count. No wall clock enters the decision path, and all randomness
 * is drawn from Rng::substream keyed by (purpose, epoch or uid) — no
 * generator state survives an epoch, which is also what makes
 * checkpoint/restore exact (see OnlineState).
 *
 * Coalition mode: with config.policy == "coalition" the epoch's
 * repair step is replaced by n-way coalition formation (see
 * src/coalition): carried groups of up to execution.online.groupSize
 * jobs warm-start a core-seeking search over the same believed table
 * the pair policies use. Colocation state then lives in uid-level
 * groups instead of partners; everything else — admission, probing,
 * prediction, faults, checkpoints — is identical.
 *
 * Fault plane: an installed FaultPlan injects probe timeouts, lost or
 * corrupted measurements, node crashes, and checkpoint-write failures
 * on the same substream discipline, so a faulty run is exactly as
 * reproducible as a clean one. The driver degrades instead of
 * failing: probes retry with exponential backoff on the virtual
 * clock, uncharacterizable jobs are quarantined and later re-offered
 * through the admission FIFO, cells past the probe budget fall back
 * to CF prediction, crash evictees re-enter admission, and a failed
 * checkpoint write is counted while the epoch still commits (see
 * DESIGN.md "Fault plane & degradation ladder").
 */

#ifndef COOPER_ONLINE_DRIVER_HH
#define COOPER_ONLINE_DRIVER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "coalition/structure.hh"
#include "core/framework.hh"
#include "fault/plan.hh"
#include "matching/blocking_incremental.hh"
#include "matching/disutility.hh"
#include "fault/quarantine.hh"
#include "online/admission.hh"
#include "online/events.hh"
#include "online/incremental.hh"
#include "online/repair.hh"
#include "online/state.hh"

namespace cooper {

/** What one online epoch did. */
struct OnlineEpochStats
{
    std::uint64_t epoch = 0;

    /** Epoch-boundary tick at which the matching was decided. */
    Tick tick = 0;

    /** Live jobs after this epoch's admissions and departures. */
    std::size_t population = 0;

    std::size_t arrivals = 0;
    std::size_t departures = 0;
    std::size_t admitted = 0;

    /** Admission-queue depth after admitting. */
    std::size_t queueDepth = 0;

    /** Cumulative backpressure rejections up to this epoch. */
    std::size_t rejectedTotal = 0;

    /** Probe colocations measured this epoch (admissions + refresh). */
    std::size_t probes = 0;

    /** Predictor diagnostics (see IncrementalStats). */
    std::size_t dirtyCells = 0;
    std::size_t recomputedPairs = 0;
    bool predictCacheHit = false;
    bool predictIncremental = false;

    /** Repair diagnostics (see RepairOutcome). */
    std::size_t blockingBefore = 0;
    std::size_t blockingAfter = 0;
    std::size_t pairsBroken = 0;
    bool fullRematch = false;

    /** Running jobs whose co-runner changed this epoch. */
    std::size_t migrations = 0;

    /** Mean true penalty over matched agents after repair. */
    double meanPenalty = 0.0;

    /** Fault-plane diagnostics (all zero with the inert plan). */
    std::size_t faultsInjected = 0;  //!< faults fired this epoch
    std::size_t retries = 0;         //!< probe retry attempts
    std::size_t crashes = 0;         //!< nodes crashed (victims)
    std::size_t quarantined = 0;     //!< jobs parked this epoch
    std::size_t quarantineReleased = 0;
    std::size_t abandoned = 0;       //!< jobs given up on for good
    std::size_t cfFallbacks = 0;     //!< cells skipped on probe budget
    std::size_t quarantineSize = 0;  //!< table size after the epoch
};

/** Everything one run() produced. */
struct OnlineReport
{
    std::string policy;
    std::uint64_t seed = 0;

    /** First epoch this run played (non-zero after a restore). */
    std::uint64_t startEpoch = 0;

    std::vector<OnlineEpochStats> epochs;

    /** Lifetime totals (across restores, not just this run). */
    std::size_t totalArrivals = 0;
    std::size_t totalDepartures = 0;
    std::size_t totalAdmitted = 0;
    std::size_t totalRejected = 0;
    std::size_t totalProbes = 0;
    std::size_t totalMigrations = 0;
    std::size_t totalPairsBroken = 0;
    std::size_t totalFullRematches = 0;

    /** Lifetime fault-plane totals (zero with the inert plan). */
    std::size_t totalFaultsInjected = 0;
    std::size_t totalRetries = 0;
    std::size_t totalQuarantined = 0;
    std::size_t totalQuarantineReleased = 0;
    std::size_t totalAbandoned = 0;
    std::size_t totalCrashes = 0;
    std::size_t totalCfFallbacks = 0;
    std::size_t totalCheckpointFailures = 0;

    /** Final population and uid-level matching. */
    std::size_t finalPopulation = 0;
    std::size_t finalQuarantine = 0;
    double finalMeanPenalty = 0.0;
    std::vector<std::pair<JobUid, JobUid>> finalPairs;

    /** Uid-level coalitions under the coalition policy (members
     *  ascending, groups by first member); empty otherwise. */
    std::vector<std::vector<JobUid>> finalGroups;
};

/**
 * The online service: virtual clock, admission, probing, incremental
 * prediction, budgeted repair.
 */
class OnlineDriver
{
  public:
    /**
     * @param catalog Job catalog (trace types index into it).
     * @param model Ground-truth interference model the probes measure.
     * @param config Framework settings; policy, alpha, noise,
     *        predictor, jitter, and execution.online are honored
     *        (sampleRatio/oracular/machines are offline-only).
     * @param seed Root seed; all substreams derive from it.
     */
    OnlineDriver(const Catalog &catalog, const InterferenceModel &model,
                 FrameworkConfig config, std::uint64_t seed = 1);

    /**
     * Writes one checkpoint; returns false when the write failed (the
     * driver counts the failure and carries on — the last good
     * checkpoint stands). Invoked every checkpointEveryEpochs epochs.
     */
    using CheckpointSink = std::function<bool(const OnlineState &)>;

    const FrameworkConfig &config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Install a fault-injection plan. Must be called before run() and
     * match the plan of any checkpoint later restored; the default is
     * the inert plan (nothing ever fires).
     */
    void setFaultPlan(FaultPlan plan) { plan_ = std::move(plan); }
    const FaultPlan &faultPlan() const { return plan_; }

    /** Install the periodic checkpoint writer (see CheckpointSink). */
    void setCheckpointSink(CheckpointSink sink)
    {
        sink_ = std::move(sink);
    }

    /** Jobs currently sitting out in quarantine. */
    std::size_t quarantineSize() const { return quarantine_.size(); }

    /** Epochs completed so far. */
    std::uint64_t epoch() const { return epoch_; }

    /** Virtual-clock position: every event with tick < clockTick()
     *  has been processed. */
    Tick clockTick() const;

    /** Current live population in admission order. */
    const std::vector<LiveJob> &live() const { return live_; }

    /**
     * Replay a trace to completion: epochs advance until the trace is
     * drained and the admission queue is empty. On a restored driver,
     * pass `trace.suffix(clockTick())`; a trace starting before the
     * clock is fatal.
     */
    OnlineReport run(const ChurnTrace &trace);

    // -- Stepwise interface. run() is exactly beginReport(), then
    // stepEpoch() until idle(), then finalizeReport(); an external
    // epoch loop (the sharded driver) drives many drivers in lockstep
    // through the same calls, so one shard reproduces run()
    // bit-for-bit.

    /** Report skeleton (policy, seed, start epoch) for a stepwise run. */
    OnlineReport beginReport() const;

    /** Play exactly one epoch against `queue` and append its stats. */
    void stepEpoch(EventQueue &queue, OnlineReport &report);

    /**
     * Nothing left to do: no pending events, an empty admission
     * queue, and an empty quarantine table. Quarantined jobs keep the
     * clock running — they still owe a re-probe round ending in
     * admission or abandonment.
     */
    bool idle(const EventQueue &queue) const;

    /** Fill in the lifetime totals and final-state fields. */
    void finalizeReport(OnlineReport &report) const;

    /** Uid-level pairs, first < second, ascending. */
    std::vector<std::pair<JobUid, JobUid>> pairsSnapshot() const;

    /** Uid-level coalitions in canonical order (members ascending,
     *  groups by first member); empty under the pairwise policies. */
    std::vector<std::vector<JobUid>> groupsSnapshot() const;

    /** Probe measurements accumulated so far (types x types). */
    const SparseMatrix &profileRatings() const
    {
        return predictor_.ratings();
    }

    /** Mean true penalty of the last committed matching. */
    double lastMeanPenalty() const { return lastMeanPenalty_; }

    // -- Cross-shard migration hooks (see src/shard/rebalance.hh).

    /**
     * Remove a live job so it can migrate to another shard: its pair
     * (if any) dissolves, and no departure is counted — the job is
     * moving, not leaving. Nullopt when the uid is not live.
     */
    std::optional<LiveJob> extractLive(JobUid uid);

    /**
     * Queue a migrated-in job at the admission FIFO's front; it is
     * re-probed against this shard's population when admitted. False
     * under backpressure — the job would be lost, so callers must
     * check admissionRoom() before extracting.
     */
    bool acceptMigrant(const LiveJob &job);

    /** Admission offers accepted before backpressure rejects;
     *  SIZE_MAX when the queue is unbounded. */
    std::size_t admissionRoom() const;

    /** Checkpoint the driver between epochs. */
    OnlineState snapshot() const;

    /** Resume from a checkpoint taken with the same seed/config. */
    void restore(const OnlineState &state);

  private:
    /** Remaining measurement attempts this epoch (budget ladder). */
    struct ProbeBudget
    {
        bool bounded = false;
        std::size_t left = 0;

        bool exhausted() const { return bounded && left == 0; }

        void
        spend()
        {
            if (bounded)
                --left;
        }
    };

    /** What probing one admitted arrival produced. */
    struct ProbeRound
    {
        std::size_t probes = 0;      //!< colocations that landed
        std::size_t retries = 0;     //!< retry attempts spent
        std::size_t failedCells = 0; //!< colocations that failed outright
        std::size_t cfFallbacks = 0; //!< cells skipped on budget
        std::size_t faults = 0;      //!< injected fault events
    };

    /** Probe one admitted arrival under the plan and budget. */
    ProbeRound probeArrival(JobUid uid, JobTypeId type,
                            ProbeBudget &budget);

    /** Re-measure known cells to keep profiles fresh. */
    std::size_t refreshProfiles(ProbeBudget &budget);

    /** Release due quarantine entries and inject this epoch's node
     *  crashes; both re-enter through the admission queue's urgent
     *  path. */
    void faultBoundary(OnlineEpochStats &stats);

    /** Periodic checkpoint (cadence, injected write failures). */
    void maybeCheckpoint(OnlineEpochStats &stats);

    /** Departure bookkeeping; false when the uid is not live (its
     *  arrival was rejected, or predates a resumed suffix). */
    bool departLive(JobUid uid);

    /** Previous matching mapped onto current agent indices. */
    Matching carriedMatching() const;

    /** Running the n-way coalition policy instead of pair repair? */
    bool coalitionMode() const { return config_.policy == "coalition"; }

    /** Drop a uid from its carried coalition; a group reduced to one
     *  member dissolves. No-op when the uid is ungrouped. */
    void ungroup(JobUid uid);

    /** Carried coalitions mapped onto current agent indices. */
    CoalitionStructure carriedStructure() const;

    /** Coalition-mode epoch core: form, commit groups_, fill stats. */
    void formEpoch(const ColocationInstance &instance,
                   const Rng &rng, OnlineEpochStats &stats);

    /**
     * Repair with incrementally maintained blocking bounds
     * (online.incrementalBlocking): diffs the believed matrix and the
     * live-slot sequence against the previous epoch to find the
     * disutility rows that changed, refreshes the cached table and
     * bounds accordingly, and hands both to the repairing policy.
     * Decisions are bit-identical to the plain repair() path.
     */
    RepairOutcome repairIncremental(const ColocationInstance &instance,
                                    const Matching &previous, Rng &rng);

    const Catalog *catalog_;
    const InterferenceModel *model_;
    FrameworkConfig config_;
    std::uint64_t seed_;

    /** Root generator; never advanced, only substream()'d. */
    Rng base_;

    IncrementalPredictor predictor_;
    RepairingPolicy repairer_;
    AdmissionQueue admission_;

    FaultPlan plan_;
    QuarantineTable quarantine_;
    CheckpointSink sink_;

    /** Failed-probe rounds per uid for jobs outside the quarantine
     *  table (waiting in the FIFO after a release); see
     *  OnlineState::probeRounds. */
    std::map<JobUid, std::uint64_t> rounds_;

    std::vector<LiveJob> live_;
    std::map<JobUid, JobUid> partner_;

    /** Uid-level coalitions under the coalition policy, canonical
     *  order (see OnlineState::groups); always empty otherwise.
     *  partner_ stays empty in coalition mode — one of the two holds
     *  the colocation state, never both. */
    std::vector<std::vector<JobUid>> groups_;

    /** Incremental-blocking caches (see repairIncremental): the
     *  previous epoch's uid-per-slot sequence and believed matrix
     *  diff into the dirty-row set; the believed table and pair
     *  bounds survive across epochs and refresh row-wise. Cleared by
     *  restore() and population collapse — the next epoch rebuilds. */
    std::vector<JobUid> lastUids_;
    PenaltyMatrix lastBelieved_{0};
    DisutilityTable believedTable_;
    BlockingBounds bounds_;

    std::uint64_t epoch_ = 0;
    std::size_t totalArrivals_ = 0;
    std::size_t totalDepartures_ = 0;
    std::size_t totalAdmitted_ = 0;
    std::size_t totalProbes_ = 0;
    std::size_t totalMigrations_ = 0;
    std::size_t totalPairsBroken_ = 0;
    std::size_t totalFullRematches_ = 0;
    std::size_t faultsInjected_ = 0;
    std::size_t retries_ = 0;
    std::size_t quarantined_ = 0;
    std::size_t quarantineReleased_ = 0;
    std::size_t abandoned_ = 0;
    std::size_t crashes_ = 0;
    std::size_t cfFallbacks_ = 0;
    std::size_t checkpointFailures_ = 0;
    double lastMeanPenalty_ = 0.0;
};

/**
 * Hard-fail validation of the serve-facing policy flags, shared by
 * `cooper_cli serve` and the tests so the CLI cannot drift from the
 * driver's expectations. Raises FatalError when `policy` is not a
 * known name (GR, CO, SMP, SMR, SR, TH, coalition), when the
 * coalition policy's `groupSize` is outside [2, 20], or when the
 * coalition policy is combined with `shards` > 1 (the cross-shard
 * rebalancer is pairs-native; see src/shard/rebalance.cc).
 */
void validateServeOptions(const std::string &policy,
                          std::size_t groupSize, std::size_t shards);

/**
 * Deterministic run summary (schema cooper.online.v3). Contains only
 * decision-path quantities — no timings — so two replays of the same
 * (trace, seed, config, fault plan) emit byte-identical files at any
 * thread count; `cooper_cli serve` relies on this for its replay
 * check. v2 added the fault-plane fields (all zero under the inert
 * plan); v3 adds the final coalition groups (empty under the
 * pairwise policies).
 */
void writeOnlineSummary(std::ostream &os, const OnlineReport &report);

/** File wrapper; raises FatalError on I/O failure. */
void saveOnlineSummary(const std::string &path,
                       const OnlineReport &report);

} // namespace cooper

#endif // COOPER_ONLINE_DRIVER_HH
