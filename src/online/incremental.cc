#include "incremental.hh"

#include <algorithm>
#include <bit>

#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

namespace {

std::size_t
wordsFor(std::size_t bits)
{
    return (bits + 63) / 64;
}

void
setBit(std::vector<std::uint64_t> &mask, std::size_t i)
{
    mask[i / 64] |= std::uint64_t(1) << (i % 64);
}

} // namespace

IncrementalPredictor::IncrementalPredictor(std::size_t items,
                                           ItemKnnConfig config)
    : config_(config), ratings_(items, items), transposed_(items, items),
      sim_(items), simT_(items), dirtyRows_(wordsFor(items), 0),
      dirtyCols_(wordsFor(items), 0)
{
    fatalIf(items == 0, "IncrementalPredictor: empty matrix");
}

void
IncrementalPredictor::setThreads(std::size_t threads)
{
    // Thread count never changes results (see DESIGN.md,
    // "Parallelism & determinism"), so the caches stay valid.
    config_.threads = threads;
}

void
IncrementalPredictor::markDirty(std::size_t r, std::size_t c)
{
    setBit(dirtyRows_, r);
    setBit(dirtyCols_, c);
    dirty_ = true;
}

void
IncrementalPredictor::observe(std::size_t r, std::size_t c, double value)
{
    fatalIf(r >= ratings_.rows() || c >= ratings_.cols(),
            "IncrementalPredictor: cell (", r, ", ", c,
            ") outside ", ratings_.rows(), "x", ratings_.cols());
    if (ratings_.known(r, c) && ratings_.at(r, c) == value)
        return;
    ratings_.set(r, c, value);
    transposed_.set(c, r, value);
    markDirty(r, c);
}

void
IncrementalPredictor::reset(const SparseMatrix &ratings)
{
    fatalIf(ratings.rows() != ratings_.rows() ||
                ratings.cols() != ratings_.cols(),
            "IncrementalPredictor: reset shape ", ratings.rows(), "x",
            ratings.cols(), " does not match ", ratings_.rows(), "x",
            ratings_.cols());
    ratings_ = ratings;
    SparseMatrix transposed(ratings.cols(), ratings.rows());
    for (const auto &entry : ratings.entries())
        transposed.set(entry.col, entry.row, entry.value);
    transposed_ = transposed;
    simValid_ = false;
    dirty_ = true;
    cached_.reset();
}

const Prediction &
IncrementalPredictor::predict()
{
    const TraceSpan span("online.predict", "online");
    stats_ = IncrementalStats{};
    if (cached_ && !dirty_) {
        stats_.cacheHit = true;
        if (MetricsRegistry *metrics = obsMetrics())
            metrics->counter("online.predict_cache_hits").add(1);
        return *cached_;
    }

    const std::size_t n = ratings_.cols();
    std::size_t dirty_cells = 0;
    for (std::uint64_t word : dirtyCols_)
        dirty_cells += static_cast<std::size_t>(std::popcount(word));
    stats_.dirtyCells = dirty_cells;

    // The bidirectional blend and its transpose view share the
    // predictor's similarity semantics; both first-pass triangles are
    // maintained. Transposing swaps the roles of the dirty masks.
    const bool seeded = config_.bidirectional;
    if (!simValid_) {
        const ItemKnnPredictor predictor(config_);
        sim_ = predictor.similarityTriangle(ratings_);
        if (seeded)
            simT_ = predictor.similarityTriangle(transposed_);
        simValid_ = true;
        stats_.recomputedPairs =
            (seeded ? 2 : 1) * (n > 1 ? n * (n - 1) / 2 : 0);
    } else if (dirty_) {
        stats_.incremental = true;
        stats_.recomputedPairs += updateSimilarityTriangle(
            ratings_, config_, sim_, dirtyCols_, dirtyRows_);
        if (seeded)
            stats_.recomputedPairs += updateSimilarityTriangle(
                transposed_, config_, simT_, dirtyRows_, dirtyCols_);
    }

    const ItemKnnPredictor predictor(config_);
    cached_ = predictor.predictSeeded(ratings_, &sim_,
                                      seeded ? &simT_ : nullptr);
    std::fill(dirtyRows_.begin(), dirtyRows_.end(), 0);
    std::fill(dirtyCols_.begin(), dirtyCols_.end(), 0);
    dirty_ = false;
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("online.predict_refills").add(1);
        metrics->counter("online.similarity_pairs_recomputed")
            .add(stats_.recomputedPairs);
    }
    return *cached_;
}

} // namespace cooper
