/**
 * @file
 * Warm-started preference prediction for the online service.
 *
 * The offline pipeline re-learns the whole preference predictor from
 * scratch every epoch. Online, profile updates are sparse — a few
 * probe measurements per admitted arrival — so most of the learned
 * state is still valid. IncrementalPredictor keeps the ratings matrix
 * and the first-pass similarity triangles (primary and transpose
 * view) alive across epochs:
 *
 *  - an epoch with no new measurements returns the cached Prediction
 *    without touching a single cell;
 *  - an epoch with updates recomputes only the similarity pairs the
 *    dirty rows/columns can have affected (updateSimilarityTriangle)
 *    and re-runs the remaining prediction passes on top.
 *
 * Either way the result is bit-identical to a from-scratch
 * ItemKnnPredictor::predict on the same ratings — incrementality is
 * a pure wall-clock optimization, never a semantic one
 * (tests/test_incremental.cc holds this property over random churn).
 */

#ifndef COOPER_ONLINE_INCREMENTAL_HH
#define COOPER_ONLINE_INCREMENTAL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cf/item_knn.hh"
#include "cf/sparse_matrix.hh"

namespace cooper {

/** What one predict() call actually did. */
struct IncrementalStats
{
    /** Cached result served with no recompute at all. */
    bool cacheHit = false;

    /** Warm-started: only dirty similarity pairs recomputed. */
    bool incremental = false;

    /** Similarity pairs recomputed across both views (0 on a cache
     *  hit; the full n*(n-1) on a cold start). */
    std::size_t recomputedPairs = 0;

    /** Cells whose value changed since the previous predict. */
    std::size_t dirtyCells = 0;
};

/**
 * Incrementally maintained item-kNN predictor over a ratings matrix.
 */
class IncrementalPredictor
{
  public:
    /**
     * @param items Side of the square ratings matrix (job types).
     * @param config Predictor settings; threads may be adjusted later
     *        via setThreads (results are thread-count independent).
     */
    explicit IncrementalPredictor(std::size_t items,
                                  ItemKnnConfig config = {});

    const SparseMatrix &ratings() const { return ratings_; }
    const ItemKnnConfig &config() const { return config_; }

    /** Retune the parallel fill width without invalidating state. */
    void setThreads(std::size_t threads);

    /**
     * Record (or overwrite) a measurement. A no-op value equal to the
     * current cell keeps the cache clean; anything else marks row `r`
     * and column `c` dirty.
     */
    void observe(std::size_t r, std::size_t c, double value);

    /** Replace the whole ratings matrix (checkpoint restore). */
    void reset(const SparseMatrix &ratings);

    /**
     * The filled matrix for the current ratings; cached between
     * calls. Bit-identical to
     * ItemKnnPredictor(config).predict(ratings()).
     */
    const Prediction &predict();

    /** Diagnostics of the most recent predict(). */
    const IncrementalStats &lastStats() const { return stats_; }

  private:
    void markDirty(std::size_t r, std::size_t c);

    ItemKnnConfig config_;
    SparseMatrix ratings_;
    SparseMatrix transposed_;

    /** First-pass similarity triangles, primary and transpose view;
     *  valid when simValid_ and no cell is dirty beyond the masks. */
    SimilarityTriangle sim_;
    SimilarityTriangle simT_;
    bool simValid_ = false;

    std::vector<std::uint64_t> dirtyRows_;
    std::vector<std::uint64_t> dirtyCols_;
    bool dirty_ = false;

    std::optional<Prediction> cached_;
    IncrementalStats stats_;
};

} // namespace cooper

#endif // COOPER_ONLINE_INCREMENTAL_HH
