#include "churn.hh"

#include <cmath>

#include "util/error.hh"

namespace cooper {

namespace {

/** Exponential variate rounded up to at least one tick. */
Tick
exponentialTicks(Rng &rng, double mean)
{
    const double u = rng.uniform();
    const double gap = -std::log1p(-u) * mean;
    const double clamped = std::max(1.0, std::floor(gap + 0.5));
    return static_cast<Tick>(clamped);
}

} // namespace

ChurnTrace
generateChurnTrace(const Catalog &catalog, const ChurnConfig &config,
                   Rng &rng)
{
    fatalIf(config.meanInterarrivalTicks <= 0.0 ||
                config.meanLifetimeTicks <= 0.0,
            "generateChurnTrace: means must be positive");
    const std::vector<double> weights =
        mixWeights(catalog, config.mix);

    std::vector<ChurnEvent> events;
    events.reserve(2 * (config.initialJobs + config.arrivals));

    JobUid next_uid = 1;
    Tick clock = 0;
    const std::size_t total = config.initialJobs + config.arrivals;
    for (std::size_t k = 0; k < total; ++k) {
        if (k >= config.initialJobs)
            clock += exponentialTicks(rng, config.meanInterarrivalTicks);

        ChurnEvent arrive;
        arrive.kind = EventKind::Arrival;
        arrive.tick = clock;
        arrive.uid = next_uid++;
        arrive.type = static_cast<JobTypeId>(rng.discrete(weights));
        events.push_back(arrive);

        ChurnEvent depart;
        depart.kind = EventKind::Departure;
        depart.tick =
            clock + exponentialTicks(rng, config.meanLifetimeTicks);
        depart.uid = arrive.uid;
        events.push_back(depart);
    }

    if (config.openEnded && !events.empty()) {
        // Drop departures past the last arrival's tick: those jobs
        // outlive the trace.
        const Tick horizon = clock;
        std::vector<ChurnEvent> kept;
        kept.reserve(events.size());
        for (const ChurnEvent &event : events)
            if (event.kind == EventKind::Arrival ||
                event.tick <= horizon)
                kept.push_back(event);
        events = std::move(kept);
    }
    return ChurnTrace(std::move(events));
}

} // namespace cooper
