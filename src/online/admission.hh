/**
 * @file
 * Admission control for arrivals that outpace profiling capacity.
 *
 * Every admitted arrival costs probe measurements, and the profiler
 * can only characterize so many new jobs per epoch. Arrivals wait in
 * a FIFO queue; the driver drains up to its per-epoch capacity at
 * each epoch boundary. A bounded queue applies backpressure: arrivals
 * past the bound are rejected and counted, never silently dropped.
 */

#ifndef COOPER_ONLINE_ADMISSION_HH
#define COOPER_ONLINE_ADMISSION_HH

#include <deque>
#include <vector>

#include "online/events.hh"

namespace cooper {

/** One queued arrival. */
struct PendingArrival
{
    JobUid uid = 0;
    JobTypeId type = 0;
    Tick arrivalTick = 0;
};

/**
 * FIFO admission queue with a backpressure bound.
 */
class AdmissionQueue
{
  public:
    /** @param max_depth Reject arrivals past this depth; 0 =
     *      unbounded. */
    explicit AdmissionQueue(std::size_t max_depth = 0)
        : maxDepth_(max_depth)
    {}

    std::size_t depth() const { return queue_.size(); }
    std::size_t maxDepth() const { return maxDepth_; }

    /** Deepest the queue has ever been. */
    std::size_t highWater() const { return highWater_; }

    /** Arrivals rejected by backpressure so far. */
    std::size_t rejected() const { return rejected_; }

    /** Enqueue an arrival; false when backpressure rejects it. */
    bool offer(const PendingArrival &arrival);

    /**
     * Enqueue at the *front* of the queue: re-admissions (crash
     * evictees, released quarantine jobs) were already running or
     * waiting once and must not be starved by newer arrivals. Subject
     * to the same backpressure bound as offer().
     */
    bool offerUrgent(const PendingArrival &arrival);

    /** Dequeue up to `capacity` arrivals in FIFO order. */
    std::vector<PendingArrival> admit(std::size_t capacity);

    /**
     * Drop a queued arrival whose departure fired before it was ever
     * admitted (the job gave up waiting). True when found.
     */
    bool withdraw(JobUid uid);

    /** Queue contents in FIFO order (checkpointing). */
    std::vector<PendingArrival> snapshot() const;

    /** Restore queue contents and counters (checkpoint restore). */
    void restore(const std::vector<PendingArrival> &pending,
                 std::size_t rejected, std::size_t high_water);

  private:
    std::deque<PendingArrival> queue_;
    std::size_t maxDepth_ = 0;
    std::size_t highWater_ = 0;
    std::size_t rejected_ = 0;
};

} // namespace cooper

#endif // COOPER_ONLINE_ADMISSION_HH
