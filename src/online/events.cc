#include "events.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "util/error.hh"

namespace cooper {

namespace {

constexpr const char *kTraceHeader = "cooper-trace";
constexpr int kTraceVersion = 1;

/** Sort events by (tick, input order) and check uid discipline. */
std::vector<ChurnEvent>
canonicalize(std::vector<ChurnEvent> events, bool allow_orphan_departs)
{
    std::vector<std::size_t> order(events.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return events[a].tick < events[b].tick;
                     });
    std::vector<ChurnEvent> sorted;
    sorted.reserve(events.size());
    for (std::size_t i : order)
        sorted.push_back(events[i]);

    std::unordered_set<JobUid> live, seen;
    for (const ChurnEvent &event : sorted) {
        if (event.kind == EventKind::Arrival) {
            fatalIf(!seen.insert(event.uid).second,
                    "ChurnTrace: arrival uid ", event.uid, " re-used");
            live.insert(event.uid);
        } else if (live.erase(event.uid) == 0) {
            fatalIf(!allow_orphan_departs,
                    "ChurnTrace: departure of unknown uid ", event.uid);
        }
    }
    return sorted;
}

} // namespace

ChurnTrace::ChurnTrace(std::vector<ChurnEvent> events)
    : events_(canonicalize(std::move(events),
                           /*allow_orphan_departs=*/false))
{}

Tick
ChurnTrace::lastTick() const
{
    return events_.empty() ? 0 : events_.back().tick;
}

ChurnTrace
ChurnTrace::suffix(Tick from) const
{
    std::vector<ChurnEvent> tail;
    for (const ChurnEvent &event : events_)
        if (event.tick >= from)
            tail.push_back(event);
    // Departures whose arrivals happened before the cut are legal
    // here: the resumed driver looks them up in its restored
    // population.
    ChurnTrace out;
    out.events_ = canonicalize(std::move(tail),
                               /*allow_orphan_departs=*/true);
    return out;
}

bool
EventQueue::laterThan(const Node &a, const Node &b)
{
    // std::push_heap builds a max-heap; invert for a min-heap keyed
    // on (tick, push sequence).
    if (a.event.tick != b.event.tick)
        return a.event.tick > b.event.tick;
    return a.seq > b.seq;
}

void
EventQueue::push(const ChurnEvent &event)
{
    heap_.push_back(Node{event, nextSeq_++});
    std::push_heap(heap_.begin(), heap_.end(), laterThan);
}

void
EventQueue::push(const ChurnTrace &trace)
{
    for (const ChurnEvent &event : trace.events())
        push(event);
}

Tick
EventQueue::nextTick() const
{
    fatalIf(heap_.empty(), "EventQueue: nextTick on empty queue");
    return heap_.front().event.tick;
}

ChurnEvent
EventQueue::pop()
{
    fatalIf(heap_.empty(), "EventQueue: pop on empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), laterThan);
    const ChurnEvent event = heap_.back().event;
    heap_.pop_back();
    return event;
}

void
writeTrace(std::ostream &os, const ChurnTrace &trace)
{
    os << kTraceHeader << " " << kTraceVersion << " " << trace.size()
       << "\n";
    for (const ChurnEvent &event : trace.events()) {
        if (event.kind == EventKind::Arrival)
            os << "arrive " << event.tick << " " << event.uid << " "
               << event.type << "\n";
        else
            os << "depart " << event.tick << " " << event.uid << "\n";
    }
}

ChurnTrace
readTrace(std::istream &is)
{
    std::string line;
    fatalIf(!std::getline(is, line), "readTrace: empty input");
    std::istringstream header(line);
    std::string word;
    int version = 0;
    std::size_t count = 0;
    header >> word >> version >> count;
    fatalIf(word != kTraceHeader, "readTrace: expected '", kTraceHeader,
            "' header, got '", word, "'");
    fatalIf(version != kTraceVersion,
            "readTrace: unsupported version ", version);

    std::vector<ChurnEvent> events;
    events.reserve(count);
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream cells(line);
        std::string verb;
        ChurnEvent event;
        cells >> verb;
        if (verb == "arrive") {
            event.kind = EventKind::Arrival;
            fatalIf(!(cells >> event.tick >> event.uid >> event.type),
                    "readTrace: malformed arrival on line ", lineno,
                    ": '", line, "'");
        } else if (verb == "depart") {
            event.kind = EventKind::Departure;
            fatalIf(!(cells >> event.tick >> event.uid),
                    "readTrace: malformed departure on line ", lineno,
                    ": '", line, "'");
        } else {
            fatal("readTrace: unknown verb '", verb, "' on line ",
                  lineno);
        }
        events.push_back(event);
    }
    fatalIf(events.size() != count, "readTrace: header declares ",
            count, " events, found ", events.size());
    return ChurnTrace(std::move(events));
}

void
saveTrace(const std::string &path, const ChurnTrace &trace)
{
    std::ofstream out(path);
    fatalIf(!out, "saveTrace: cannot open '", path, "'");
    writeTrace(out, trace);
    fatalIf(!out.flush(), "saveTrace: write to '", path, "' failed");
}

ChurnTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "loadTrace: cannot open '", path, "'");
    return readTrace(in);
}

} // namespace cooper
