/**
 * @file
 * Synthetic churn-trace generation.
 *
 * The online service replays timestamped arrival/departure traces; a
 * private datacenter would record these, the simulator synthesizes
 * them: memoryless interarrival gaps, memoryless job lifetimes, and
 * job types drawn from the Figure 11 mix densities. Everything flows
 * through Rng, so a (config, seed) pair fully determines the trace.
 */

#ifndef COOPER_ONLINE_CHURN_HH
#define COOPER_ONLINE_CHURN_HH

#include "online/events.hh"
#include "util/rng.hh"
#include "workload/population.hh"

namespace cooper {

/** Shape of a synthetic churn trace. */
struct ChurnConfig
{
    /** Arrivals to generate (departures are added per lifetime). */
    std::size_t arrivals = 200;

    /** Jobs present at tick 0 (a warm initial population). */
    std::size_t initialJobs = 24;

    /** Mean gap between arrivals, in ticks. */
    double meanInterarrivalTicks = 12.0;

    /** Mean job lifetime, in ticks. */
    double meanLifetimeTicks = 600.0;

    /** Job-type mix density. */
    MixKind mix = MixKind::Uniform;

    /** Jobs still running at the end keep running: drop their
     *  departure events instead of truncating their lifetimes. */
    bool openEnded = false;
};

/**
 * Generate a churn trace over `catalog`'s job types.
 *
 * Initial jobs arrive at tick 0; later arrivals follow exponential
 * gaps; every job departs after an exponential lifetime (unless
 * openEnded keeps the tail running). Uids are assigned in arrival
 * order starting at 1.
 */
ChurnTrace generateChurnTrace(const Catalog &catalog,
                              const ChurnConfig &config, Rng &rng);

} // namespace cooper

#endif // COOPER_ONLINE_CHURN_HH
