#include "driver.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "coalition/formation.hh"
#include "obs/obs.hh"
#include "sim/profiler.hh"
#include "util/error.hh"

namespace cooper {

namespace {

// Substream purposes. Every random decision is drawn from
// base.substream(tag).substream(key), so nothing depends on how many
// draws earlier epochs made.
constexpr std::uint64_t kPolicyStream = 0xA1;
constexpr std::uint64_t kProbeStream = 0xA2;
constexpr std::uint64_t kRefreshStream = 0xA3;

/**
 * Policy name handed to the embedded pair repairer. Coalition mode
 * repairs groups itself, but RepairingPolicy eagerly validates its
 * policy name, so it gets the SR fallback (never invoked).
 */
std::string
repairPolicyName(const FrameworkConfig &config)
{
    return config.policy == "coalition" ? std::string("SR")
                                        : config.policy;
}

ItemKnnConfig
effectivePredictorConfig(const FrameworkConfig &config)
{
    // Same inheritance rule as CooperFramework: the predictor uses
    // the execution-wide thread knob unless it sets its own.
    ItemKnnConfig out = config.predictor;
    if (out.threads == 1)
        out.threads = config.execution.threads;
    return out;
}

/** Mean of `repeats` measurements of `self` colocated with `other`. */
double
meanMeasurement(SystemProfiler &profiler, JobTypeId self, JobTypeId other,
                std::size_t repeats)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < repeats; ++i)
        sum += profiler.measure(self, other);
    return sum / static_cast<double>(repeats);
}

std::string
jsonNum(double value)
{
    std::ostringstream os;
    os << std::setprecision(17) << value;
    return os.str();
}

} // namespace

OnlineDriver::OnlineDriver(const Catalog &catalog,
                           const InterferenceModel &model,
                           FrameworkConfig config, std::uint64_t seed)
    : catalog_(&catalog), model_(&model), config_(std::move(config)),
      seed_(seed), base_(seed),
      predictor_(catalog.size(), effectivePredictorConfig(config_)),
      repairer_(repairPolicyName(config_), config_.alpha,
                config_.execution.online.migrationBudget,
                config_.execution.online.fullRematchBlockingPairs),
      admission_(config_.execution.online.maxQueueDepth)
{
    const OnlineConfig &online = config_.execution.online;
    fatalIf(online.epochTicks == 0,
            "OnlineDriver: epochTicks must be positive");
    fatalIf(coalitionMode() &&
                (online.groupSize < 2 || online.groupSize > 20),
            "OnlineDriver: coalition groupSize must be in [2, 20], "
            "got ",
            online.groupSize);
    fatalIf(online.admitPerEpoch == 0,
            "OnlineDriver: admitPerEpoch must be positive (the queue "
            "could never drain)");
    fatalIf(online.profileRepeats == 0,
            "OnlineDriver: profileRepeats must be positive");
}

Tick
OnlineDriver::clockTick() const
{
    return epoch_ * config_.execution.online.epochTicks;
}

OnlineDriver::ProbeRound
OnlineDriver::probeArrival(JobUid uid, JobTypeId type,
                           ProbeBudget &budget)
{
    const OnlineConfig &online = config_.execution.online;
    Rng pick = base_.substream(kProbeStream).substream(uid);
    SystemProfiler profiler(*model_, config_.noise, pick());
    ProbeRound round;

    // How one directed cell fared.
    enum class Cell { Landed, Failed, Skipped };

    // Attempt ladder for one directed cell: the first try plus up to
    // probeMaxRetries retries, each waiting probeBackoffTicks << (k-1)
    // virtual ticks, until the cumulative wait passes the deadline.
    // Pure integer arithmetic keyed by (epoch, uid, cell, attempt), so
    // the schedule replays bit-identically at any thread count and
    // across a checkpoint/restore split.
    std::uint64_t cell_seq = 0;
    const auto attemptCell = [&](JobTypeId self, JobTypeId other,
                                 double &value) -> Cell {
        const std::uint64_t cell = cell_seq++;
        std::uint64_t waited = 0;
        for (std::uint64_t k = 0;; ++k) {
            if (k > 0) {
                waited += online.probeBackoffTicks << (k - 1);
                if (k > online.probeMaxRetries ||
                    waited > online.probeDeadlineTicks) {
                    ++round.failedCells;
                    return Cell::Failed;
                }
                ++round.retries;
            }
            if (budget.exhausted()) {
                ++round.cfFallbacks;
                return Cell::Skipped; // predictor's CF fill covers it
            }
            budget.spend();

            const std::uint64_t key =
                cell * (online.probeMaxRetries + 1) + k;
            ProbeFault fault = ProbeFault::None;
            if (plan_.probeTimesOut(epoch_, uid, key))
                fault = ProbeFault::Timeout;
            else if (plan_.measurementDrops(epoch_, uid, key))
                fault = ProbeFault::Drop;
            const double delta = fault == ProbeFault::None
                                     ? plan_.corruption(epoch_, uid, key)
                                     : 0.0;
            if (fault != ProbeFault::None || delta != 0.0)
                ++round.faults;

            const ProbeResult got = profiler.probe(
                self, other, online.profileRepeats, fault, delta);
            if (got.ok) {
                value = got.value;
                return Cell::Landed;
            }
            // Timed out or lost in transit: the coordinator saw no
            // result either way, so both back off and retry.
        }
    };

    // The self colocation is always attempted first: it anchors the
    // row even when the population is empty (the first admissions).
    double measured = 0.0;
    if (attemptCell(type, type, measured) == Cell::Landed) {
        predictor_.observe(type, type, measured);
        ++round.probes;
    }

    // Probe against up to probesPerArrival distinct types present in
    // the running population, chosen by the arrival's substream. One
    // colocation run yields both directions' penalties, but each
    // direction's delivery can fail independently.
    std::vector<JobTypeId> candidates;
    for (const LiveJob &job : live_)
        if (job.type != type)
            candidates.push_back(job.type);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    pick.shuffle(candidates);
    if (candidates.size() > online.probesPerArrival)
        candidates.resize(online.probesPerArrival);

    for (JobTypeId other : candidates) {
        const std::size_t failed_before = round.failedCells;
        bool landed = false;
        if (attemptCell(type, other, measured) == Cell::Landed) {
            predictor_.observe(type, other, measured);
            landed = true;
        }
        if (attemptCell(other, type, measured) == Cell::Landed) {
            predictor_.observe(other, type, measured);
            landed = true;
        }
        if (landed)
            ++round.probes;
        // Quarantine counts whole colocations lost, not directions:
        // a half-landed probe still characterized the pair.
        if (round.failedCells == failed_before + 2)
            round.failedCells -= 1;
        else if (round.failedCells > failed_before && landed)
            round.failedCells = failed_before;
    }
    return round;
}

std::size_t
OnlineDriver::refreshProfiles(ProbeBudget &budget)
{
    const OnlineConfig &online = config_.execution.online;
    if (online.refreshProbesPerEpoch == 0)
        return 0;
    const auto entries = predictor_.ratings().entries();
    if (entries.empty())
        return 0;

    Rng pick = base_.substream(kRefreshStream).substream(epoch_);
    SystemProfiler profiler(*model_, config_.noise, pick());
    std::size_t refreshed = 0;
    for (std::size_t i = 0; i < online.refreshProbesPerEpoch; ++i) {
        if (budget.exhausted())
            break; // arrival probing drained the epoch's budget
        budget.spend();
        const auto &cell = entries[pick.uniformInt(entries.size())];
        predictor_.observe(cell.row, cell.col,
                           meanMeasurement(profiler, cell.row, cell.col,
                                           online.profileRepeats));
        ++refreshed;
    }
    return refreshed;
}

bool
OnlineDriver::departLive(JobUid uid)
{
    const auto it =
        std::find_if(live_.begin(), live_.end(),
                     [uid](const LiveJob &job) { return job.uid == uid; });
    if (it == live_.end())
        return false;
    const auto link = partner_.find(uid);
    if (link != partner_.end()) {
        const JobUid other = link->second;
        partner_.erase(link);
        partner_.erase(other);
    }
    ungroup(uid);
    live_.erase(it);
    return true;
}

void
OnlineDriver::ungroup(JobUid uid)
{
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        auto &group = groups_[g];
        const auto member =
            std::find(group.begin(), group.end(), uid);
        if (member == group.end())
            continue;
        group.erase(member);
        // A group of one is no colocation; the survivor runs alone
        // until the next formation epoch re-packs it.
        if (group.size() < 2)
            groups_.erase(groups_.begin() + g);
        return;
    }
}

CoalitionStructure
OnlineDriver::carriedStructure() const
{
    std::map<JobUid, AgentId> index;
    for (AgentId i = 0; i < live_.size(); ++i)
        index.emplace(live_[i].uid, i);

    CoalitionStructure carried(live_.size());
    for (const auto &group : groups_) {
        std::vector<AgentId> members;
        members.reserve(group.size());
        for (const JobUid uid : group) {
            const auto it = index.find(uid);
            panicIf(it == index.end(),
                    "OnlineDriver: grouped uid not live");
            members.push_back(it->second);
        }
        carried.addCoalition(std::move(members));
    }
    carried.canonicalize();
    return carried;
}

void
OnlineDriver::formEpoch(const ColocationInstance &instance,
                        const Rng &rng, OnlineEpochStats &stats)
{
    const OnlineConfig &online = config_.execution.online;
    const std::size_t threads = config_.execution.threads;

    std::vector<JobTypeId> types;
    types.reserve(live_.size());
    for (const LiveJob &job : live_)
        types.push_back(job.type);
    const DisutilityTable believed = instance.believedTable(threads);

    const CoalitionStructure carried = carriedStructure();

    FormationConfig formation;
    formation.groupSize = online.groupSize;
    formation.alpha = config_.alpha;
    formation.threads = threads;
    // Per-epoch Shapley attribution is a diagnostic the decision path
    // never reads; the bench and tests exercise it instead.
    formation.shapleySamples = 0;
    const FormationResult result = formCoalitions(
        types, believed, *model_, formation, rng, &carried);

    stats.blockingBefore = result.blockingBefore;
    stats.blockingAfter = result.blockingAfter;

    // Map the formed structure back to uids, canonical order.
    std::vector<std::vector<JobUid>> formed;
    formed.reserve(result.structure.coalitions().size());
    for (const auto &coalition : result.structure.coalitions()) {
        std::vector<JobUid> group;
        group.reserve(coalition.size());
        for (const AgentId a : coalition)
            group.push_back(live_[a].uid);
        std::sort(group.begin(), group.end());
        formed.push_back(std::move(group));
    }
    std::sort(formed.begin(), formed.end());

    // Churn accounting mirrors the pair path: a carried group that
    // did not survive intact counts as broken, and every previously
    // grouped job whose co-runner set changed counts as a migration.
    std::map<JobUid, std::vector<JobUid>> before;
    for (const auto &group : groups_)
        for (const JobUid uid : group)
            before.emplace(uid, group);
    std::map<JobUid, std::vector<JobUid>> after;
    for (const auto &group : formed)
        for (const JobUid uid : group)
            after.emplace(uid, group);
    for (const auto &group : groups_) {
        const auto it = after.find(group.front());
        if (it == after.end() || it->second != group)
            ++stats.pairsBroken;
    }
    for (const auto &[uid, group] : before) {
        const auto it = after.find(uid);
        if (it == after.end() || it->second != group)
            ++stats.migrations;
    }

    groups_ = std::move(formed);

    // Mean true penalty over grouped agents (ungrouped jobs run alone
    // at zero penalty, as unmatched agents do in the pair path).
    double sum = 0.0;
    std::size_t grouped = 0;
    for (AgentId a = 0; a < live_.size(); ++a) {
        if (result.structure.coalitionOf(a) == kNoCoalition)
            continue;
        sum += result.truePenalties[a];
        ++grouped;
    }
    stats.meanPenalty =
        grouped == 0 ? 0.0 : sum / static_cast<double>(grouped);

    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("online.formation_rounds").add(result.rounds);
        metrics->gauge("online.coalitions")
            .set(static_cast<double>(groups_.size()));
    }
}

RepairOutcome
OnlineDriver::repairIncremental(const ColocationInstance &instance,
                                const Matching &previous, Rng &rng)
{
    const std::size_t threads = config_.execution.threads;
    const std::size_t n = live_.size();
    const std::size_t ntypes = catalog_->size();
    const PenaltyMatrix &believed = instance.believed();

    // Diff against the previous epoch. A believed-disutility entry
    // d(a, b) is believed(type_a, type_b) plus a jitter that depends
    // only on the indices (a, b), so row a of the table changes only
    // when slot a holds a different job or the believed row of a's
    // type was re-predicted. A changed slot b also perturbs every
    // other row's b-th column — the pairs touching b, which the
    // bounds rescan via b's own dirtiness — so the cached table can
    // only be refreshed row-wise when no slot moved.
    const bool same_population = lastUids_.size() == n &&
                                 believedTable_.agents() == n &&
                                 lastBelieved_.size() == ntypes;
    std::vector<AgentId> dirty;
    bool any_slot_changed = false;
    if (same_population) {
        std::vector<std::uint8_t> type_row_changed(ntypes, 0);
        for (std::size_t t1 = 0; t1 < ntypes; ++t1)
            for (std::size_t t2 = 0; t2 < ntypes; ++t2)
                if (believed(t1, t2) != lastBelieved_(t1, t2)) {
                    type_row_changed[t1] = 1;
                    break;
                }
        for (AgentId i = 0; i < n; ++i) {
            if (live_[i].uid != lastUids_[i]) {
                dirty.push_back(i);
                any_slot_changed = true;
            } else if (type_row_changed[live_[i].type]) {
                dirty.push_back(i);
            }
        }
    }

    if (!same_population || any_slot_changed) {
        believedTable_ = instance.believedTable(threads);
    } else if (!dirty.empty()) {
        believedTable_.refreshRows(
            dirty,
            [&instance](AgentId a, AgentId b) {
                return instance.believedDisutility(a, b);
            },
            threads);
    }

    RepairOutcome out =
        repairer_.repair(instance, previous, rng, threads,
                         believedTable_, bounds_, dirty,
                         /*rebuild_bounds=*/!same_population);

    lastUids_.resize(n);
    for (AgentId i = 0; i < n; ++i)
        lastUids_[i] = live_[i].uid;
    lastBelieved_ = believed;
    return out;
}

Matching
OnlineDriver::carriedMatching() const
{
    std::map<JobUid, AgentId> index;
    for (AgentId i = 0; i < live_.size(); ++i)
        index.emplace(live_[i].uid, i);

    Matching prev(live_.size());
    for (const auto &[uid, other] : partner_) {
        if (uid >= other)
            continue;
        const auto a = index.find(uid);
        const auto b = index.find(other);
        panicIf(a == index.end() || b == index.end(),
                "OnlineDriver: matched uid not live");
        prev.pair(a->second, b->second);
    }
    return prev;
}

std::vector<std::pair<JobUid, JobUid>>
OnlineDriver::pairsSnapshot() const
{
    std::vector<std::pair<JobUid, JobUid>> pairs;
    for (const auto &[uid, other] : partner_)
        if (uid < other)
            pairs.emplace_back(uid, other);
    return pairs; // map iteration order: already ascending
}

std::vector<std::vector<JobUid>>
OnlineDriver::groupsSnapshot() const
{
    return groups_; // maintained canonical by formEpoch / ungroup
}

void
OnlineDriver::faultBoundary(OnlineEpochStats &stats)
{
    // Re-admissions in offer order: crash evictees first (they were
    // running), then released quarantine jobs, both ascending by uid.
    std::vector<PendingArrival> urgent;

    // 1. Node crashes. A node hosts one colocated pair, so a crash
    // evicts the victim and its partner; both re-enter through the
    // admission FIFO and are re-probed when admitted. Victims are
    // drawn from the post-departure population, before this epoch's
    // admissions.
    if (plan_.enabled() && !live_.empty()) {
        std::vector<std::uint64_t> uids;
        uids.reserve(live_.size());
        for (const LiveJob &job : live_)
            uids.push_back(job.uid);
        std::sort(uids.begin(), uids.end());
        const auto victims = plan_.crashVictims(epoch_, uids);
        if (!victims.empty()) {
            const TraceSpan span("fault.crash", "fault");
            for (const std::uint64_t victim : victims) {
                const auto it = std::find_if(
                    live_.begin(), live_.end(),
                    [victim](const LiveJob &job) {
                        return job.uid == victim;
                    });
                if (it == live_.end())
                    continue; // already evicted as a partner
                std::vector<LiveJob> evicted{*it};
                // A node hosts one colocation — a pair under the
                // pairwise policies, a coalition in coalition mode —
                // so a crash takes down every co-runner with it.
                std::vector<JobUid> corunners;
                const auto link = partner_.find(victim);
                if (link != partner_.end())
                    corunners.push_back(link->second);
                for (const auto &group : groups_) {
                    if (std::find(group.begin(), group.end(), victim) ==
                        group.end())
                        continue;
                    for (const JobUid uid : group)
                        if (uid != victim)
                            corunners.push_back(uid);
                    break;
                }
                for (const JobUid other : corunners) {
                    const auto po = std::find_if(
                        live_.begin(), live_.end(),
                        [other](const LiveJob &job) {
                            return job.uid == other;
                        });
                    panicIf(po == live_.end(),
                            "OnlineDriver: matched uid not live");
                    evicted.push_back(*po);
                }
                departLive(victim);
                for (std::size_t e = 1; e < evicted.size(); ++e)
                    departLive(evicted[e].uid);
                ++stats.crashes;
                ++crashes_;
                ++stats.faultsInjected;
                ++faultsInjected_;
                for (const LiveJob &job : evicted)
                    urgent.push_back(PendingArrival{job.uid, job.type,
                                                    clockTick()});
            }
        }
    }

    // 2. Quarantine releases: jobs whose sit-out ended re-enter the
    // FIFO for a fresh probe round; their round count survives in
    // rounds_ so abandonment still triggers across the gap.
    const auto released = quarantine_.releaseDue(epoch_);
    if (!released.empty()) {
        const TraceSpan span("fault.release", "fault");
        for (const QuarantinedJob &job : released) {
            rounds_[job.uid] = job.rounds;
            ++stats.quarantineReleased;
            ++quarantineReleased_;
            urgent.push_back(PendingArrival{
                job.uid, static_cast<JobTypeId>(job.type), clockTick()});
        }
    }

    // Push in reverse so the queue front ends up in `urgent` order.
    // Backpressure still applies: a rejected re-admission is counted
    // like any other rejection and forgotten.
    for (auto it = urgent.rbegin(); it != urgent.rend(); ++it)
        if (!admission_.offerUrgent(*it))
            rounds_.erase(it->uid);
}

void
OnlineDriver::maybeCheckpoint(OnlineEpochStats &stats)
{
    const OnlineConfig &online = config_.execution.online;
    if (online.checkpointEveryEpochs == 0 || !sink_ ||
        epoch_ % online.checkpointEveryEpochs != 0)
        return;
    const TraceSpan span("fault.checkpoint", "fault");
    bool failed = false;
    if (plan_.checkpointFails(epoch_)) {
        // The write never starts; the last good checkpoint stands and
        // the epoch has already committed.
        ++stats.faultsInjected;
        ++faultsInjected_;
        failed = true;
    } else if (!sink_(snapshot())) {
        failed = true; // real write failure, same degradation
    }
    if (failed) {
        ++checkpointFailures_;
        if (MetricsRegistry *metrics = obsMetrics())
            metrics->counter("online.checkpoint_failures").add(1);
    }
}

void
OnlineDriver::stepEpoch(EventQueue &queue, OnlineReport &report)
{
    const TraceSpan span("online.epoch", "online");
    const ScopedTimer timer("online.epoch_seconds");
    const OnlineConfig &online = config_.execution.online;
    const Tick boundary = (epoch_ + 1) * online.epochTicks;

    OnlineEpochStats stats;
    stats.epoch = epoch_;
    stats.tick = boundary;

    // 1. Drain this epoch's events. Arrivals wait for admission;
    // departures take effect immediately (the job is gone whether or
    // not the coordinator has re-matched yet).
    while (!queue.empty() && queue.nextTick() < boundary) {
        const ChurnEvent event = queue.pop();
        if (event.kind == EventKind::Arrival) {
            fatalIf(event.type >= catalog_->size(),
                    "OnlineDriver: trace type ", event.type,
                    " outside the catalog (", catalog_->size(),
                    " types)");
            ++stats.arrivals;
            ++totalArrivals_;
            admission_.offer(PendingArrival{event.uid, event.type,
                                            event.tick});
        } else {
            ++stats.departures;
            ++totalDepartures_;
            if (admission_.withdraw(event.uid)) {
                rounds_.erase(event.uid);
                continue; // gave up waiting in the queue
            }
            if (quarantine_.remove(event.uid)) {
                rounds_.erase(event.uid);
                continue; // departed while sitting out
            }
            departLive(event.uid); // false: its arrival was rejected
        }
    }
    // 1b. Epoch-boundary faults: node crashes evict colocated pairs,
    // due quarantine entries re-enter the FIFO.
    faultBoundary(stats);
    stats.rejectedTotal = admission_.rejected();

    // 2. Admit up to the profiling capacity; probe each admission
    // before it joins the population. An arrival whose probes fail
    // outright on enough cells is quarantined instead of admitted —
    // pairing an uncharacterized job would be guesswork.
    ProbeBudget budget{online.probeBudgetPerEpoch > 0,
                       online.probeBudgetPerEpoch};
    const auto admitted = admission_.admit(online.admitPerEpoch);
    for (const PendingArrival &arrival : admitted) {
        const ProbeRound round =
            probeArrival(arrival.uid, arrival.type, budget);
        stats.probes += round.probes;
        stats.retries += round.retries;
        stats.cfFallbacks += round.cfFallbacks;
        stats.faultsInjected += round.faults;
        retries_ += round.retries;
        cfFallbacks_ += round.cfFallbacks;
        faultsInjected_ += round.faults;

        if (online.quarantineAfterFailures > 0 &&
            round.failedCells >= online.quarantineAfterFailures) {
            const auto it = rounds_.find(arrival.uid);
            const std::uint64_t served =
                it == rounds_.end() ? 0 : it->second;
            if (served + 1 > online.maxQuarantineRounds) {
                // Permanently unreachable: give up for good (counted,
                // never silently dropped).
                ++stats.abandoned;
                ++abandoned_;
                rounds_.erase(arrival.uid);
            } else {
                // The table keeps the round count while the job sits
                // out; rounds_ only tracks jobs back in the FIFO.
                rounds_.erase(arrival.uid);
                quarantine_.add(QuarantinedJob{
                    arrival.uid, arrival.type, round.failedCells,
                    epoch_ + 1 + online.quarantineEpochs, served + 1});
                ++stats.quarantined;
                ++quarantined_;
            }
            continue;
        }
        ++stats.admitted;
        ++totalAdmitted_;
        rounds_.erase(arrival.uid); // recovered: a clean round resets
        live_.push_back(LiveJob{arrival.uid, arrival.type});
    }
    stats.probes += refreshProfiles(budget);
    totalProbes_ += stats.probes;
    stats.queueDepth = admission_.depth();

    // 3. Predict, build the epoch's instance, repair the carried-over
    // matching.
    if (live_.size() >= 2) {
        const std::size_t n = catalog_->size();
        PenaltyMatrix truth = model_->penaltyMatrix();
        PenaltyMatrix believed(n);
        if (predictor_.ratings().knownCount() == 0) {
            // Bottom rung of the degradation ladder: every probe so
            // far failed, so there is nothing to learn from. Pair on
            // an all-zero believed matrix (pure guesswork, but the
            // epoch still commits) rather than crash the service.
            stats.cfFallbacks += n * n;
            cfFallbacks_ += n * n;
        } else {
            const Prediction *prediction = nullptr;
            Prediction full;
            {
                // Both modes feed the same histogram so bench_online
                // can compare warm-started against from-scratch
                // prediction.
                const ScopedTimer predict_timer("online.predict_seconds");
                if (online.incremental) {
                    prediction = &predictor_.predict();
                    const IncrementalStats &ps = predictor_.lastStats();
                    stats.dirtyCells = ps.dirtyCells;
                    stats.recomputedPairs = ps.recomputedPairs;
                    stats.predictCacheHit = ps.cacheHit;
                    stats.predictIncremental = ps.incremental;
                } else {
                    const ItemKnnPredictor cold(
                        effectivePredictorConfig(config_));
                    full = cold.predict(predictor_.ratings());
                    prediction = &full;
                }
            }
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    believed(i, j) = prediction->dense[i][j];
        }

        std::vector<JobTypeId> types;
        types.reserve(live_.size());
        for (const LiveJob &job : live_)
            types.push_back(job.type);
        const ColocationInstance instance(*catalog_, std::move(types),
                                          std::move(truth),
                                          std::move(believed),
                                          config_.jitter);

        Rng rng = base_.substream(kPolicyStream).substream(epoch_);
        if (coalitionMode()) {
            formEpoch(instance, rng, stats);
            totalMigrations_ += stats.migrations;
            totalPairsBroken_ += stats.pairsBroken;
        } else {
            const Matching prev = carriedMatching();
            const RepairOutcome out =
                online.incrementalBlocking
                    ? repairIncremental(instance, prev, rng)
                    : repairer_.repair(instance, prev, rng,
                                       config_.execution.threads);

            stats.blockingBefore = out.blockingBefore;
            stats.blockingAfter = out.blockingAfter;
            stats.pairsBroken = out.pairsBroken;
            stats.fullRematch = out.fullRematch;
            for (const auto &[a, b] : prev.pairs())
                if (out.matching.partnerOf(a) != b)
                    stats.migrations += 2;

            partner_.clear();
            for (const auto &[a, b] : out.matching.pairs()) {
                partner_[live_[a].uid] = live_[b].uid;
                partner_[live_[b].uid] = live_[a].uid;
            }
            stats.meanPenalty = instance.meanTruePenalty(out.matching);

            totalMigrations_ += stats.migrations;
            totalPairsBroken_ += stats.pairsBroken;
            if (out.fullRematch)
                ++totalFullRematches_;
        }
    } else {
        // Nobody to pair. A lone survivor of a departed pair was
        // already widowed by departLive.
        partner_.clear();
        groups_.clear();
        // The population collapsed; any cached blocking state is for
        // a vanished agent set.
        lastUids_.clear();
        bounds_.invalidate();
    }

    stats.population = live_.size();
    lastMeanPenalty_ = stats.meanPenalty;

    // The epoch commits now — whatever probing failed above, the
    // matching shipped. The periodic checkpoint (and its injected
    // failures) happens on the committed state.
    ++epoch_;
    maybeCheckpoint(stats);
    stats.quarantineSize = quarantine_.size();

    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("online.epochs").add(1);
        metrics->counter("online.arrivals").add(stats.arrivals);
        metrics->counter("online.departures").add(stats.departures);
        metrics->counter("online.admitted").add(stats.admitted);
        metrics->counter("online.probes").add(stats.probes);
        metrics->counter("online.migrations").add(stats.migrations);
        metrics->counter("online.faults_injected")
            .add(stats.faultsInjected);
        metrics->counter("online.retries").add(stats.retries);
        metrics->counter("online.crashes").add(stats.crashes);
        metrics->counter("online.quarantined").add(stats.quarantined);
        metrics->counter("online.quarantine_released")
            .add(stats.quarantineReleased);
        metrics->counter("online.abandoned").add(stats.abandoned);
        metrics->counter("online.cf_fallbacks").add(stats.cfFallbacks);
        metrics->gauge("online.population")
            .set(static_cast<double>(stats.population));
        metrics->gauge("online.queue_depth")
            .set(static_cast<double>(stats.queueDepth));
        metrics->gauge("online.quarantine_size")
            .set(static_cast<double>(stats.quarantineSize));
        metrics->gauge("online.mean_penalty").set(stats.meanPenalty);
    }

    report.epochs.push_back(stats);
}

OnlineReport
OnlineDriver::run(const ChurnTrace &trace)
{
    // Honor the framework-level observability knob (passive when an
    // outer session, e.g. the CLI's, is already installed).
    const ObsScope obs_scope(config_.execution.obs);
    const TraceSpan span("online.run", "online");

    EventQueue queue;
    queue.push(trace);
    if (!queue.empty() && queue.nextTick() < clockTick())
        fatal("OnlineDriver::run: trace begins at tick ",
              queue.nextTick(), ", before the clock (", clockTick(),
              "); resume with trace.suffix(clockTick())");

    OnlineReport report = beginReport();
    while (!idle(queue))
        stepEpoch(queue, report);
    finalizeReport(report);
    return report;
}

OnlineReport
OnlineDriver::beginReport() const
{
    OnlineReport report;
    report.policy = config_.policy;
    report.seed = seed_;
    report.startEpoch = epoch_;
    return report;
}

bool
OnlineDriver::idle(const EventQueue &queue) const
{
    return queue.empty() && admission_.depth() == 0 &&
           quarantine_.empty();
}

void
OnlineDriver::finalizeReport(OnlineReport &report) const
{
    report.totalArrivals = totalArrivals_;
    report.totalDepartures = totalDepartures_;
    report.totalAdmitted = totalAdmitted_;
    report.totalRejected = admission_.rejected();
    report.totalProbes = totalProbes_;
    report.totalMigrations = totalMigrations_;
    report.totalPairsBroken = totalPairsBroken_;
    report.totalFullRematches = totalFullRematches_;
    report.totalFaultsInjected = faultsInjected_;
    report.totalRetries = retries_;
    report.totalQuarantined = quarantined_;
    report.totalQuarantineReleased = quarantineReleased_;
    report.totalAbandoned = abandoned_;
    report.totalCrashes = crashes_;
    report.totalCfFallbacks = cfFallbacks_;
    report.totalCheckpointFailures = checkpointFailures_;
    report.finalPopulation = live_.size();
    report.finalQuarantine = quarantine_.size();
    report.finalMeanPenalty = lastMeanPenalty_;
    report.finalPairs = pairsSnapshot();
    report.finalGroups = groupsSnapshot();
}

std::optional<LiveJob>
OnlineDriver::extractLive(JobUid uid)
{
    const auto it =
        std::find_if(live_.begin(), live_.end(),
                     [uid](const LiveJob &job) { return job.uid == uid; });
    if (it == live_.end())
        return std::nullopt;
    const LiveJob job = *it;
    departLive(uid);
    return job;
}

bool
OnlineDriver::acceptMigrant(const LiveJob &job)
{
    return admission_.offerUrgent(
        PendingArrival{job.uid, job.type, clockTick()});
}

std::size_t
OnlineDriver::admissionRoom() const
{
    if (admission_.maxDepth() == 0)
        return std::numeric_limits<std::size_t>::max();
    return admission_.maxDepth() > admission_.depth()
               ? admission_.maxDepth() - admission_.depth()
               : 0;
}

OnlineState
OnlineDriver::snapshot() const
{
    OnlineState state;
    state.seed = seed_;
    state.epoch = epoch_;
    state.clockTick = clockTick();
    state.live = live_;
    state.pairs = pairsSnapshot();
    state.groups = groupsSnapshot();
    state.pending = admission_.snapshot();
    state.rejected = admission_.rejected();
    state.queueHighWater = admission_.highWater();
    state.totalArrivals = totalArrivals_;
    state.totalDepartures = totalDepartures_;
    state.totalAdmitted = totalAdmitted_;
    state.totalProbes = totalProbes_;
    state.totalMigrations = totalMigrations_;
    state.totalPairsBroken = totalPairsBroken_;
    state.totalFullRematches = totalFullRematches_;
    state.lastMeanPenalty = lastMeanPenalty_;
    state.quarantine = quarantine_.snapshot();
    for (const auto &[uid, served] : rounds_)
        state.probeRounds.emplace_back(uid, served);
    state.faultsInjected = faultsInjected_;
    state.retries = retries_;
    state.quarantined = quarantined_;
    state.quarantineReleased = quarantineReleased_;
    state.abandoned = abandoned_;
    state.crashes = crashes_;
    state.cfFallbacks = cfFallbacks_;
    state.checkpointFailures = checkpointFailures_;
    state.faultPlan = plan_;
    state.ratings = predictor_.ratings();
    return state;
}

void
OnlineDriver::restore(const OnlineState &state)
{
    fatalIf(state.seed != seed_,
            "OnlineDriver::restore: checkpoint seed ", state.seed,
            " does not match the driver seed ", seed_);
    fatalIf(state.ratings.rows() != catalog_->size() ||
                state.ratings.cols() != catalog_->size(),
            "OnlineDriver::restore: ratings matrix is ",
            state.ratings.rows(), "x", state.ratings.cols(),
            ", catalog has ", catalog_->size(), " types");

    live_ = state.live;
    partner_.clear();
    for (const auto &[a, b] : state.pairs) {
        fatalIf(a >= b, "OnlineDriver::restore: unordered pair");
        const auto isLive = [this](JobUid uid) {
            return std::find_if(live_.begin(), live_.end(),
                                [uid](const LiveJob &job) {
                                    return job.uid == uid;
                                }) != live_.end();
        };
        fatalIf(!isLive(a) || !isLive(b),
                "OnlineDriver::restore: matched uid not in the live "
                "population");
        fatalIf(partner_.count(a) != 0 || partner_.count(b) != 0,
                "OnlineDriver::restore: uid matched twice");
        partner_[a] = b;
        partner_[b] = a;
    }
    groups_.clear();
    {
        const std::size_t cap = config_.execution.online.groupSize;
        std::map<JobUid, std::uint8_t> grouped;
        for (const auto &group : state.groups) {
            fatalIf(group.size() < 2,
                    "OnlineDriver::restore: coalition of ",
                    group.size(), " members (minimum is 2)");
            fatalIf(coalitionMode() && group.size() > cap,
                    "OnlineDriver::restore: coalition of ",
                    group.size(), " members exceeds groupSize ", cap);
            fatalIf(!std::is_sorted(group.begin(), group.end()),
                    "OnlineDriver::restore: coalition members not "
                    "ascending");
            for (const JobUid uid : group) {
                fatalIf(std::find_if(live_.begin(), live_.end(),
                                     [uid](const LiveJob &job) {
                                         return job.uid == uid;
                                     }) == live_.end(),
                        "OnlineDriver::restore: grouped uid ", uid,
                        " not in the live population");
                fatalIf(!grouped.emplace(uid, 1).second,
                        "OnlineDriver::restore: uid ", uid,
                        " appears in two coalitions");
                fatalIf(partner_.count(uid) != 0,
                        "OnlineDriver::restore: uid ", uid,
                        " both paired and grouped");
            }
        }
        groups_ = state.groups;
    }
    admission_.restore(state.pending, state.rejected,
                       state.queueHighWater);
    epoch_ = state.epoch;
    fatalIf(state.clockTick != clockTick(),
            "OnlineDriver::restore: checkpoint tick ", state.clockTick,
            " does not match epoch ", epoch_, " * epochTicks");
    totalArrivals_ = state.totalArrivals;
    totalDepartures_ = state.totalDepartures;
    totalAdmitted_ = state.totalAdmitted;
    totalProbes_ = state.totalProbes;
    totalMigrations_ = state.totalMigrations;
    totalPairsBroken_ = state.totalPairsBroken;
    totalFullRematches_ = state.totalFullRematches;
    lastMeanPenalty_ = state.lastMeanPenalty;

    fatalIf(!(state.faultPlan == plan_),
            "OnlineDriver::restore: checkpoint fault plan does not "
            "match the driver's (a checkpoint only replays under its "
            "own fault schedule)");
    quarantine_.restore(state.quarantine);
    rounds_.clear();
    for (const auto &[uid, served] : state.probeRounds) {
        fatalIf(quarantine_.contains(uid),
                "OnlineDriver::restore: uid ", uid,
                " both quarantined and round-tracked");
        rounds_[uid] = served;
    }
    faultsInjected_ = state.faultsInjected;
    retries_ = state.retries;
    quarantined_ = state.quarantined;
    quarantineReleased_ = state.quarantineReleased;
    abandoned_ = state.abandoned;
    crashes_ = state.crashes;
    cfFallbacks_ = state.cfFallbacks;
    checkpointFailures_ = state.checkpointFailures;

    predictor_.reset(state.ratings);

    // The cached blocking state belongs to the pre-restore timeline;
    // the first epoch after a restore rebuilds it.
    lastUids_.clear();
    lastBelieved_ = PenaltyMatrix(0);
    believedTable_ = DisutilityTable();
    bounds_.invalidate();
}

void
validateServeOptions(const std::string &policy, std::size_t groupSize,
                     std::size_t shards)
{
    static constexpr const char *kKnown[] = {"GR",  "CO", "SMP",
                                             "SMR", "SR", "TH",
                                             "coalition"};
    bool known = false;
    for (const char *name : kKnown)
        known = known || policy == name;
    fatalIf(!known, "serve: unknown --policy '", policy,
            "' (expected GR, CO, SMP, SMR, SR, TH, or coalition)");
    if (policy != "coalition")
        return;
    fatalIf(groupSize < 2 || groupSize > 20,
            "serve: --group-size must be in [2, 20], got ", groupSize);
    fatalIf(shards > 1,
            "serve: --policy coalition does not support --shards > 1 "
            "(the cross-shard rebalancer migrates pairs); run the "
            "flat driver");
}

void
writeOnlineSummary(std::ostream &os, const OnlineReport &report)
{
    // Only decision-path quantities go here. Predictor diagnostics
    // (dirty cells, recomputed pairs, cache hits) describe execution
    // strategy and legitimately differ between incremental and
    // full-predict runs whose decisions are identical; they are
    // exposed through obs metrics and BENCH_online.json instead.
    os << "{\n";
    os << "  \"schema\": \"cooper.online.v3\",\n";
    os << "  \"policy\": \"" << report.policy << "\",\n";
    os << "  \"seed\": " << report.seed << ",\n";
    os << "  \"start_epoch\": " << report.startEpoch << ",\n";
    os << "  \"epochs\": [";
    for (std::size_t i = 0; i < report.epochs.size(); ++i) {
        const OnlineEpochStats &e = report.epochs[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"epoch\": " << e.epoch
           << ", \"tick\": " << e.tick
           << ", \"population\": " << e.population
           << ", \"arrivals\": " << e.arrivals
           << ", \"departures\": " << e.departures
           << ", \"admitted\": " << e.admitted
           << ", \"queue_depth\": " << e.queueDepth
           << ", \"rejected_total\": " << e.rejectedTotal
           << ", \"probes\": " << e.probes
           << ", \"blocking_before\": " << e.blockingBefore
           << ", \"blocking_after\": " << e.blockingAfter
           << ", \"pairs_broken\": " << e.pairsBroken
           << ", \"full_rematch\": " << (e.fullRematch ? "true" : "false")
           << ", \"migrations\": " << e.migrations
           << ", \"faults\": " << e.faultsInjected
           << ", \"retries\": " << e.retries
           << ", \"crashes\": " << e.crashes
           << ", \"quarantined\": " << e.quarantined
           << ", \"quarantine_size\": " << e.quarantineSize
           << ", \"cf_fallbacks\": " << e.cfFallbacks
           << ", \"mean_penalty\": " << jsonNum(e.meanPenalty) << "}";
    }
    os << "\n  ],\n";
    os << "  \"totals\": {\n";
    os << "    \"arrivals\": " << report.totalArrivals << ",\n";
    os << "    \"departures\": " << report.totalDepartures << ",\n";
    os << "    \"admitted\": " << report.totalAdmitted << ",\n";
    os << "    \"rejected\": " << report.totalRejected << ",\n";
    os << "    \"probes\": " << report.totalProbes << ",\n";
    os << "    \"migrations\": " << report.totalMigrations << ",\n";
    os << "    \"pairs_broken\": " << report.totalPairsBroken << ",\n";
    os << "    \"full_rematches\": " << report.totalFullRematches << ",\n";
    os << "    \"faults_injected\": " << report.totalFaultsInjected
       << ",\n";
    os << "    \"retries\": " << report.totalRetries << ",\n";
    os << "    \"quarantined\": " << report.totalQuarantined << ",\n";
    os << "    \"quarantine_released\": "
       << report.totalQuarantineReleased << ",\n";
    os << "    \"abandoned\": " << report.totalAbandoned << ",\n";
    os << "    \"crashes\": " << report.totalCrashes << ",\n";
    os << "    \"cf_fallbacks\": " << report.totalCfFallbacks << ",\n";
    os << "    \"checkpoint_failures\": "
       << report.totalCheckpointFailures << "\n";
    os << "  },\n";
    os << "  \"final\": {\n";
    os << "    \"population\": " << report.finalPopulation << ",\n";
    os << "    \"quarantine\": " << report.finalQuarantine << ",\n";
    os << "    \"mean_penalty\": " << jsonNum(report.finalMeanPenalty)
       << ",\n";
    os << "    \"pairs\": [";
    for (std::size_t i = 0; i < report.finalPairs.size(); ++i) {
        os << (i == 0 ? "" : ", ");
        os << "[" << report.finalPairs[i].first << ", "
           << report.finalPairs[i].second << "]";
    }
    os << "],\n";
    os << "    \"groups\": [";
    for (std::size_t i = 0; i < report.finalGroups.size(); ++i) {
        os << (i == 0 ? "" : ", ");
        os << "[";
        for (std::size_t j = 0; j < report.finalGroups[i].size(); ++j)
            os << (j == 0 ? "" : ", ") << report.finalGroups[i][j];
        os << "]";
    }
    os << "]\n";
    os << "  }\n";
    os << "}\n";
}

void
saveOnlineSummary(const std::string &path, const OnlineReport &report)
{
    std::ofstream out(path);
    fatalIf(!out, "saveOnlineSummary: cannot open ", path);
    writeOnlineSummary(out, report);
    fatalIf(!out, "saveOnlineSummary: write to ", path, " failed");
}

} // namespace cooper
