#include "population.hh"

#include <cmath>

#include "util/error.hh"

namespace cooper {

std::string
mixName(MixKind kind)
{
    switch (kind) {
      case MixKind::Uniform:
        return "Uniform";
      case MixKind::BetaLow:
        return "Beta-Low";
      case MixKind::BetaHigh:
        return "Beta-High";
      case MixKind::Gaussian:
        return "Gaussian";
    }
    panic("mixName: invalid MixKind");
}

std::vector<MixKind>
allMixes()
{
    return {MixKind::Uniform, MixKind::BetaLow, MixKind::Gaussian,
            MixKind::BetaHigh};
}

namespace {

/** Unnormalized Beta(a, b) density. */
double
betaPdf(double u, double a, double b)
{
    return std::pow(u, a - 1.0) * std::pow(1.0 - u, b - 1.0);
}

/** Unnormalized normal density centered on moderate intensity. */
double
gaussPdf(double u)
{
    const double z = (u - 0.5) / 0.18;
    return std::exp(-0.5 * z * z);
}

} // namespace

std::vector<double>
mixWeights(const Catalog &catalog, MixKind kind)
{
    const auto order = catalog.idsByBandwidth();
    const auto n = order.size();
    std::vector<double> weights(n, 0.0);
    for (std::size_t rank = 0; rank < n; ++rank) {
        // Midpoint of the job's rank interval in (0, 1).
        const double u = (static_cast<double>(rank) + 0.5) /
                         static_cast<double>(n);
        double w = 1.0;
        switch (kind) {
          case MixKind::Uniform:
            w = 1.0;
            break;
          case MixKind::BetaLow:
            w = betaPdf(u, 2.0, 5.0);
            break;
          case MixKind::BetaHigh:
            w = betaPdf(u, 5.0, 2.0);
            break;
          case MixKind::Gaussian:
            w = gaussPdf(u);
            break;
        }
        weights[order[rank]] = w;
    }
    return weights;
}

std::vector<JobTypeId>
samplePopulation(const Catalog &catalog, std::size_t n, MixKind kind,
                 Rng &rng)
{
    fatalIf(n == 0, "samplePopulation: empty population requested");
    const auto weights = mixWeights(catalog, kind);
    std::vector<JobTypeId> population;
    population.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        population.push_back(static_cast<JobTypeId>(rng.discrete(weights)));
    return population;
}

} // namespace cooper
