/**
 * @file
 * Job-type descriptions for the evaluation workloads.
 *
 * Table I of the paper lists 20 jobs from Apache Spark and PARSEC 2.0
 * together with their measured memory-bandwidth demands. The paper's
 * testbed profiled these jobs on Xeon E5-2697 v2 processors; this
 * reproduction instead attaches to each job a small set of calibrated
 * attributes (bandwidth demand, cache footprint, contention
 * sensitivities, standalone runtime) that drive the interference model
 * in src/sim.
 */

#ifndef COOPER_WORKLOAD_JOB_HH
#define COOPER_WORKLOAD_JOB_HH

#include <cstdint>
#include <string>

namespace cooper {

/** Benchmark suite a job type belongs to. */
enum class Suite
{
    Spark,
    Parsec,
};

/** Human-readable suite name. */
std::string suiteName(Suite suite);

/** Identifier of a job type within the catalog. */
using JobTypeId = std::uint32_t;

/**
 * Static description of one job type.
 *
 * Bandwidth demands (gbps) reproduce Table I verbatim. The remaining
 * attributes are calibrated so that the simulator's pairwise penalties
 * exhibit the structure the paper measures: penalties grow with the
 * co-runner's memory pressure and with the job's own sensitivity, and
 * a few low-bandwidth jobs (notably dedup) are highly cache-sensitive.
 */
struct JobType
{
    JobTypeId id = 0;
    std::string name;          //!< short name used in the figures
    Suite suite = Suite::Spark;
    std::string application;   //!< Table I "Application" column
    std::string dataset;       //!< Table I "Dataset" column
    double gbps = 0.0;         //!< Table I memory intensity (GB/s)
    double cacheMB = 0.0;      //!< working-set pressure on the LLC
    double bwSensitivity = 0.0;    //!< penalty per unit bandwidth pressure
    double cacheSensitivity = 0.0; //!< penalty per unit cache overflow
    double standaloneSec = 0.0;    //!< stand-alone completion time
};

} // namespace cooper

#endif // COOPER_WORKLOAD_JOB_HH
