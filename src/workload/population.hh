/**
 * @file
 * Agent-population sampling.
 *
 * The evaluation draws populations of jobs from the catalog under four
 * mix densities over memory intensity (Figure 11): Uniform, Beta-Low
 * (skewed toward low-intensity jobs), Beta-High (skewed toward
 * high-intensity jobs), and Gaussian (moderate jobs).
 */

#ifndef COOPER_WORKLOAD_POPULATION_HH
#define COOPER_WORKLOAD_POPULATION_HH

#include <string>
#include <vector>

#include "util/rng.hh"
#include "workload/catalog.hh"

namespace cooper {

/** Probability density over the intensity-ordered catalog. */
enum class MixKind
{
    Uniform,
    BetaLow,
    BetaHigh,
    Gaussian,
};

/** Human-readable mix name as used in Figure 11. */
std::string mixName(MixKind kind);

/** All mixes in the paper's presentation order. */
std::vector<MixKind> allMixes();

/**
 * Per-job-type sampling weights for a mix.
 *
 * Jobs are ranked by memory intensity; each job's weight is the mix
 * density evaluated at its normalized rank, so Beta-High concentrates
 * probability on the most contentious jobs and Gaussian on moderate
 * ones.
 *
 * @return Weights indexed by JobTypeId.
 */
std::vector<double> mixWeights(const Catalog &catalog, MixKind kind);

/**
 * Sample a population of job-type ids with replacement.
 *
 * @param catalog Job catalog.
 * @param n Population size (2N agents fill N processors).
 * @param kind Mix density.
 * @param rng Random stream.
 */
std::vector<JobTypeId> samplePopulation(const Catalog &catalog,
                                        std::size_t n, MixKind kind,
                                        Rng &rng);

} // namespace cooper

#endif // COOPER_WORKLOAD_POPULATION_HH
