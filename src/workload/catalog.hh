/**
 * @file
 * The evaluation job catalog (Table I) and lookups over it.
 */

#ifndef COOPER_WORKLOAD_CATALOG_HH
#define COOPER_WORKLOAD_CATALOG_HH

#include <span>
#include <string>
#include <vector>

#include "workload/job.hh"

namespace cooper {

/**
 * Immutable collection of job types.
 */
class Catalog
{
  public:
    /** Build a catalog from explicit job types (ids must be 0..n-1). */
    explicit Catalog(std::vector<JobType> jobs);

    /** The paper's 20-job Spark + PARSEC catalog (Table I). */
    static Catalog paperTableI();

    std::size_t size() const { return jobs_.size(); }

    /** Job type by id; fatal if out of range. */
    const JobType &job(JobTypeId id) const;

    /** Job type by short name; fatal if unknown. */
    const JobType &jobByName(const std::string &name) const;

    /** All job types in id order. */
    std::span<const JobType> jobs() const { return jobs_; }

    /**
     * Ids ordered by increasing memory intensity (GB/s), the ordering
     * the paper uses on every fairness figure's x-axis.
     */
    std::vector<JobTypeId> idsByBandwidth() const;

    /**
     * The eleven jobs displayed in Figures 1, 7, and 8, in the paper's
     * x-axis order (increasing contentiousness).
     */
    static std::vector<std::string> figureJobNames();

  private:
    std::vector<JobType> jobs_;
};

} // namespace cooper

#endif // COOPER_WORKLOAD_CATALOG_HH
