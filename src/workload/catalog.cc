#include "catalog.hh"

#include <algorithm>

#include "util/error.hh"

namespace cooper {

std::string
suiteName(Suite suite)
{
    return suite == Suite::Spark ? "Spark" : "PARSEC";
}

Catalog::Catalog(std::vector<JobType> jobs)
    : jobs_(std::move(jobs))
{
    fatalIf(jobs_.empty(), "Catalog: no job types");
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        fatalIf(jobs_[i].id != i,
                "Catalog: job '", jobs_[i].name, "' has id ", jobs_[i].id,
                ", expected ", i);
        fatalIf(jobs_[i].gbps < 0.0,
                "Catalog: job '", jobs_[i].name, "' has negative gbps");
    }
}

const JobType &
Catalog::job(JobTypeId id) const
{
    fatalIf(id >= jobs_.size(), "Catalog: job id ", id, " out of range");
    return jobs_[id];
}

const JobType &
Catalog::jobByName(const std::string &name) const
{
    for (const auto &j : jobs_)
        if (j.name == name)
            return j;
    fatal("Catalog: unknown job name '", name, "'");
}

std::vector<JobTypeId>
Catalog::idsByBandwidth() const
{
    std::vector<JobTypeId> ids(jobs_.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<JobTypeId>(i);
    std::stable_sort(ids.begin(), ids.end(),
                     [&](JobTypeId a, JobTypeId b) {
                         return jobs_[a].gbps < jobs_[b].gbps;
                     });
    return ids;
}

std::vector<std::string>
Catalog::figureJobNames()
{
    // The eleven applications labeled on the x-axes of Figures 1/7/8,
    // ordered by increasing memory intensity.
    return {"swaptions", "bodytrack", "dedup",    "canneal",
            "svm",       "linear",    "streamc",  "decision",
            "gradient",  "naive",     "correlation"};
}

namespace {

JobType
makeJob(JobTypeId id, std::string name, Suite suite, std::string app,
        std::string dataset, double gbps, double cache_mb, double bw_sens,
        double cache_sens, double standalone_sec)
{
    JobType j;
    j.id = id;
    j.name = std::move(name);
    j.suite = suite;
    j.application = std::move(app);
    j.dataset = std::move(dataset);
    j.gbps = gbps;
    j.cacheMB = cache_mb;
    j.bwSensitivity = bw_sens;
    j.cacheSensitivity = cache_sens;
    j.standaloneSec = standalone_sec;
    return j;
}

} // namespace

Catalog
Catalog::paperTableI()
{
    // Columns: name, suite, application, dataset, GB/s (Table I,
    // verbatim), cache footprint (MB), bandwidth sensitivity, cache
    // sensitivity, stand-alone seconds. The last four are this repo's
    // calibration (see DESIGN.md section 2). dedup, canneal, x264 and
    // bodytrack are disproportionately cache-sensitive, which is what
    // makes greedy/complementary colocation unfair to them in the
    // paper's measurements.
    std::vector<JobType> jobs;
    const auto S = Suite::Spark;
    const auto P = Suite::Parsec;
    JobTypeId n = 0;
    // Bandwidth sensitivity is deliberately only loosely coupled to a
    // job's own bandwidth appetite: the paper's measurements show that
    // who *suffers* from contention is largely orthogonal to who
    // *causes* it (dedup and bodytrack suffer as much as far more
    // demanding jobs), and that orthogonality is exactly what makes
    // greedy/complementary policies unfair in Figures 1 and 7.
    jobs.push_back(makeJob(n++, "correlation", S, "Statistics", "kdda'10",
                           25.05, 22.0, 0.60, 0.30, 780.0));
    jobs.push_back(makeJob(n++, "decision", S, "Classifier", "kdda'10",
                           21.03, 18.0, 0.50, 0.28, 720.0));
    jobs.push_back(makeJob(n++, "fpgrowth", S, "Mining", "wdc'12",
                           10.06, 12.0, 0.45, 0.25, 840.0));
    jobs.push_back(makeJob(n++, "gradient", S, "Classifier", "kdda'10",
                           21.06, 18.0, 0.52, 0.26, 690.0));
    jobs.push_back(makeJob(n++, "kmeans", S, "Clustering", "uscensus",
                           0.32, 3.0, 0.30, 0.12, 600.0));
    jobs.push_back(makeJob(n++, "linear", S, "Classifier", "kdda'10",
                           14.66, 14.0, 0.50, 0.24, 660.0));
    jobs.push_back(makeJob(n++, "movie", S, "Recommender", "movielens",
                           5.69, 8.0, 0.40, 0.20, 630.0));
    jobs.push_back(makeJob(n++, "naive", S, "Classifier", "kdda'10",
                           23.44, 20.0, 0.55, 0.29, 750.0));
    jobs.push_back(makeJob(n++, "svm", S, "Classifier", "kdda'10",
                           14.59, 14.0, 0.50, 0.24, 870.0));
    jobs.push_back(makeJob(n++, "blackscholes", P, "Finance", "native",
                           0.99, 2.0, 0.20, 0.10, 150.0));
    jobs.push_back(makeJob(n++, "bodytrack", P, "Vision", "native",
                           0.15, 4.0, 0.50, 0.42, 180.0));
    jobs.push_back(makeJob(n++, "canneal", P, "Engineering", "native",
                           3.34, 20.0, 0.45, 0.55, 240.0));
    jobs.push_back(makeJob(n++, "dedup", P, "Storage", "native",
                           0.93, 24.0, 0.30, 0.85, 160.0));
    jobs.push_back(makeJob(n++, "facesim", P, "Animation", "native",
                           1.80, 12.0, 0.45, 0.40, 280.0));
    jobs.push_back(makeJob(n++, "fluidanimate", P, "Animation", "native",
                           5.52, 10.0, 0.40, 0.32, 260.0));
    jobs.push_back(makeJob(n++, "raytrace", P, "Visualization", "native",
                           0.57, 8.0, 0.40, 0.30, 220.0));
    jobs.push_back(makeJob(n++, "streamc", P, "Data Mining", "native",
                           18.53, 16.0, 0.55, 0.26, 200.0));
    jobs.push_back(makeJob(n++, "swaptions", P, "Finance", "native",
                           0.07, 1.0, 0.15, 0.08, 170.0));
    jobs.push_back(makeJob(n++, "vips", P, "Media", "native",
                           0.05, 2.0, 0.15, 0.10, 190.0));
    jobs.push_back(makeJob(n++, "x264", P, "Media", "native",
                           4.00, 10.0, 0.40, 0.45, 140.0));
    return Catalog(std::move(jobs));
}

} // namespace cooper
