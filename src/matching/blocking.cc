#include "blocking.hh"

#include <iterator>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

namespace {

/**
 * The shared scan skeleton. `d(i, j)` answers disutility queries and
 * `rowCanBlock(i, current_i)` prunes first-agent rows that provably
 * cannot reach the required gain (always-true for oracle scans; a
 * rowMin bound for table scans). Pruning is sound because fl(c - d)
 * is monotone in d: if even the row's smallest disutility cannot
 * clear the threshold, no candidate in the row can.
 */

/** Per-agent current penalties (zero when running alone). */
template <typename D>
std::vector<double>
currentPenalties(const Matching &matching, const D &d,
                 std::size_t threads)
{
    const std::size_t n = matching.size();
    std::vector<double> current(n, 0.0);
    parallelFor(0, n, threads, [&](std::size_t i) {
        if (matching.isMatched(i))
            current[i] = d(i, matching.partnerOf(i));
    });
    return current;
}

/** Does (gain_i, gain_j) clear the alpha threshold? */
inline bool
clears(double gain_i, double gain_j, double alpha)
{
    // With alpha = 0 any strict mutual improvement blocks; a positive
    // alpha demands at least that much from both.
    return alpha > 0.0 ? (gain_i >= alpha && gain_j >= alpha)
                       : (gain_i > 0.0 && gain_j > 0.0);
}

constexpr std::size_t kGrain = 16;

template <typename D, typename RowBound>
std::vector<BlockingPair>
collectScan(const Matching &matching, const D &d, double alpha,
            std::size_t threads, const RowBound &rowCanBlock)
{
    const std::size_t n = matching.size();
    const std::vector<double> current =
        currentPenalties(matching, d, threads);

    // Chunks of i-rows, concatenated in row order: the output matches
    // the serial (i, then j) scan exactly.
    return parallelReduce(
        std::size_t(0), n, threads, kGrain, std::vector<BlockingPair>{},
        [&](std::size_t row_begin, std::size_t row_end) {
            std::vector<BlockingPair> local;
            for (AgentId i = row_begin; i < row_end; ++i) {
                if (!matching.isMatched(i))
                    continue; // running alone cannot be improved upon
                if (!rowCanBlock(i, current[i]))
                    continue;
                for (AgentId j = i + 1; j < n; ++j) {
                    if (!matching.isMatched(j) ||
                        matching.partnerOf(i) == j) {
                        continue;
                    }
                    const double gain_i = current[i] - d(i, j);
                    const double gain_j = current[j] - d(j, i);
                    if (clears(gain_i, gain_j, alpha))
                        local.push_back(
                            BlockingPair{i, j, gain_i, gain_j});
                }
            }
            return local;
        },
        [](std::vector<BlockingPair> &acc,
           std::vector<BlockingPair> &&part) {
            acc.insert(acc.end(),
                       std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
        });
}

template <typename D, typename RowBound>
std::size_t
countScan(const Matching &matching, const D &d, double alpha,
          std::size_t threads, const RowBound &rowCanBlock)
{
    const std::size_t n = matching.size();
    const std::vector<double> current =
        currentPenalties(matching, d, threads);

    // Integer tallies summed in chunk order: exact for any thread
    // count, and nothing is materialized just to be counted.
    return parallelReduce(
        std::size_t(0), n, threads, kGrain, std::size_t(0),
        [&](std::size_t row_begin, std::size_t row_end) {
            std::size_t local = 0;
            for (AgentId i = row_begin; i < row_end; ++i) {
                if (!matching.isMatched(i))
                    continue;
                if (!rowCanBlock(i, current[i]))
                    continue;
                for (AgentId j = i + 1; j < n; ++j) {
                    if (!matching.isMatched(j) ||
                        matching.partnerOf(i) == j) {
                        continue;
                    }
                    const double gain_i = current[i] - d(i, j);
                    const double gain_j = current[j] - d(j, i);
                    if (clears(gain_i, gain_j, alpha))
                        ++local;
                }
            }
            return local;
        },
        [](std::size_t &acc, std::size_t &&part) { acc += part; });
}

template <typename D, typename RowBound>
std::optional<BlockingPair>
firstScan(const Matching &matching, const D &d, double alpha,
          const RowBound &rowCanBlock)
{
    const std::size_t n = matching.size();
    const std::vector<double> current =
        currentPenalties(matching, d, /*threads=*/1);
    for (AgentId i = 0; i < n; ++i) {
        if (!matching.isMatched(i))
            continue;
        if (!rowCanBlock(i, current[i]))
            continue;
        for (AgentId j = i + 1; j < n; ++j) {
            if (!matching.isMatched(j) || matching.partnerOf(i) == j)
                continue;
            const double gain_i = current[i] - d(i, j);
            const double gain_j = current[j] - d(j, i);
            if (clears(gain_i, gain_j, alpha))
                return BlockingPair{i, j, gain_i, gain_j};
        }
    }
    return std::nullopt;
}

/** Row bound for oracle scans: no information, never prune. */
struct NoRowBound
{
    bool operator()(AgentId, double) const { return true; }
};

/**
 * Row bound from the memo table: the largest gain agent i can see is
 * fl(current_i - rowMin_i); if even that misses the threshold, row i
 * holds no blocking pair.
 */
struct TableRowBound
{
    const DisutilityTable *table;
    double alpha;

    bool operator()(AgentId i, double current_i) const
    {
        const double best_gain = current_i - table->rowMin(i);
        return alpha > 0.0 ? best_gain >= alpha : best_gain > 0.0;
    }
};

void
checkAlpha(double alpha)
{
    fatalIf(alpha < 0.0, "findBlockingPairs: negative alpha ", alpha);
}

void
recordScan(std::size_t pairs)
{
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("matching.blocking_scans").add(1);
        metrics->counter("matching.blocking_pairs").add(pairs);
    }
}

} // namespace

std::vector<BlockingPair>
findBlockingPairs(const Matching &matching, const DisutilityFn &disutility,
                  double alpha, std::size_t threads)
{
    checkAlpha(alpha);
    const TraceSpan span("matching.blocking_scan", "matching");
    const ScopedTimer timer("matching.blocking_seconds");
    auto pairs =
        collectScan(matching, disutility, alpha, threads, NoRowBound{});
    recordScan(pairs.size());
    return pairs;
}

std::vector<BlockingPair>
findBlockingPairs(const Matching &matching,
                  const DisutilityTable &disutility, double alpha,
                  std::size_t threads)
{
    checkAlpha(alpha);
    const TraceSpan span("matching.blocking_scan", "matching");
    const ScopedTimer timer("matching.blocking_seconds");
    auto pairs = collectScan(
        matching,
        [&](AgentId a, AgentId b) { return disutility(a, b); }, alpha,
        threads, TableRowBound{&disutility, alpha});
    recordScan(pairs.size());
    return pairs;
}

std::size_t
countBlockingPairs(const Matching &matching, const DisutilityFn &disutility,
                   double alpha, std::size_t threads)
{
    checkAlpha(alpha);
    const TraceSpan span("matching.blocking_scan", "matching");
    const ScopedTimer timer("matching.blocking_seconds");
    const std::size_t count =
        countScan(matching, disutility, alpha, threads, NoRowBound{});
    recordScan(count);
    return count;
}

std::size_t
countBlockingPairs(const Matching &matching,
                   const DisutilityTable &disutility, double alpha,
                   std::size_t threads)
{
    checkAlpha(alpha);
    const TraceSpan span("matching.blocking_scan", "matching");
    const ScopedTimer timer("matching.blocking_seconds");
    const std::size_t count = countScan(
        matching,
        [&](AgentId a, AgentId b) { return disutility(a, b); }, alpha,
        threads, TableRowBound{&disutility, alpha});
    recordScan(count);
    return count;
}

std::optional<BlockingPair>
firstBlockingPair(const Matching &matching, const DisutilityFn &disutility,
                  double alpha)
{
    checkAlpha(alpha);
    const TraceSpan span("matching.blocking_scan", "matching");
    auto pair = firstScan(matching, disutility, alpha, NoRowBound{});
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("matching.blocking_scans").add(1);
    return pair;
}

std::optional<BlockingPair>
firstBlockingPair(const Matching &matching,
                  const DisutilityTable &disutility, double alpha)
{
    checkAlpha(alpha);
    const TraceSpan span("matching.blocking_scan", "matching");
    auto pair = firstScan(
        matching,
        [&](AgentId a, AgentId b) { return disutility(a, b); }, alpha,
        TableRowBound{&disutility, alpha});
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("matching.blocking_scans").add(1);
    return pair;
}

bool
isStableMatching(const Matching &matching, const PreferenceProfile &prefs)
{
    const std::size_t n = matching.size();
    fatalIf(prefs.agents() != n, "isStableMatching: size mismatch");
    for (AgentId i = 0; i < n; ++i) {
        for (AgentId j = i + 1; j < n; ++j) {
            if (matching.partnerOf(i) == j)
                continue;
            if (!prefs.hasCandidate(i, j) || !prefs.hasCandidate(j, i))
                continue;
            const bool i_wants =
                !matching.isMatched(i) ||
                prefs.prefers(i, j, matching.partnerOf(i));
            const bool j_wants =
                !matching.isMatched(j) ||
                prefs.prefers(j, i, matching.partnerOf(j));
            if (i_wants && j_wants)
                return false;
        }
    }
    return true;
}

} // namespace cooper
