#include "blocking.hh"

#include "util/error.hh"

namespace cooper {

std::vector<BlockingPair>
findBlockingPairs(const Matching &matching, const DisutilityFn &disutility,
                  double alpha)
{
    fatalIf(alpha < 0.0, "findBlockingPairs: negative alpha ", alpha);
    const std::size_t n = matching.size();
    std::vector<BlockingPair> out;

    // Cache each agent's current penalty.
    std::vector<double> current(n, 0.0);
    for (AgentId i = 0; i < n; ++i)
        if (matching.isMatched(i))
            current[i] = disutility(i, matching.partnerOf(i));

    for (AgentId i = 0; i < n; ++i) {
        if (!matching.isMatched(i))
            continue; // running alone cannot be improved upon
        for (AgentId j = i + 1; j < n; ++j) {
            if (!matching.isMatched(j) || matching.partnerOf(i) == j)
                continue;
            const double gain_i = current[i] - disutility(i, j);
            const double gain_j = current[j] - disutility(j, i);
            // With alpha = 0 any strict mutual improvement blocks; a
            // positive alpha demands at least that much from both.
            const bool blocks = alpha > 0.0
                                    ? (gain_i >= alpha && gain_j >= alpha)
                                    : (gain_i > 0.0 && gain_j > 0.0);
            if (blocks)
                out.push_back(BlockingPair{i, j, gain_i, gain_j});
        }
    }
    return out;
}

std::size_t
countBlockingPairs(const Matching &matching, const DisutilityFn &disutility,
                   double alpha)
{
    return findBlockingPairs(matching, disutility, alpha).size();
}

bool
isStableMatching(const Matching &matching, const PreferenceProfile &prefs)
{
    const std::size_t n = matching.size();
    fatalIf(prefs.agents() != n, "isStableMatching: size mismatch");
    for (AgentId i = 0; i < n; ++i) {
        for (AgentId j = i + 1; j < n; ++j) {
            if (matching.partnerOf(i) == j)
                continue;
            if (!prefs.hasCandidate(i, j) || !prefs.hasCandidate(j, i))
                continue;
            const bool i_wants =
                !matching.isMatched(i) ||
                prefs.prefers(i, j, matching.partnerOf(i));
            const bool j_wants =
                !matching.isMatched(j) ||
                prefs.prefers(j, i, matching.partnerOf(j));
            if (i_wants && j_wants)
                return false;
        }
    }
    return true;
}

} // namespace cooper
