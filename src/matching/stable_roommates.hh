/**
 * @file
 * Irving's stable-roommates algorithm and Cooper's adaptation.
 *
 * Roommate assignment matches agents within a single set: any agent
 * may pair with any other. Irving's algorithm (1985) finds a perfectly
 * stable matching when one exists via proposal (phase 1) and rotation
 * elimination (phase 2). Perfect stability often does not exist for
 * large populations, so Cooper's SR policy adapts the algorithm: when
 * an agent is rejected by all others it is set aside, the remainder
 * continues, and set-aside agents are greedily paired at the end to
 * minimize their disutilities (Section III.C).
 */

#ifndef COOPER_MATCHING_STABLE_ROOMMATES_HH
#define COOPER_MATCHING_STABLE_ROOMMATES_HH

#include <functional>
#include <optional>

#include "matching/disutility.hh"
#include "matching/matching.hh"
#include "matching/preferences.hh"

namespace cooper {

/** Outcome of the adapted roommates procedure. */
struct RoommatesResult
{
    Matching matching;

    /** True when Irving succeeded outright (no fallback pairing). */
    bool perfectlyStable = false;

    /** Agents rejected by all others and paired greedily. */
    std::vector<AgentId> fallbackAgents;

    /** Proposals issued across all proposal rounds. */
    std::size_t proposals = 0;

    /** Rotations eliminated in phase 2. */
    std::size_t rotations = 0;
};

/**
 * Strict Irving: a perfectly stable matching, or nullopt when none
 * exists. Requires an even number of agents with complete preference
 * lists.
 */
std::optional<Matching> stableRoommates(const PreferenceProfile &prefs);

/**
 * Cooper's adapted roommates. Runs Irving; agents whose lists empty
 * are set aside and the algorithm continues on the rest. Set-aside
 * agents are then paired greedily, each new pair minimizing the sum of
 * both agents' disutilities.
 *
 * @param prefs Complete preference lists over all other agents.
 * @param disutility d(agent, partner) used for the greedy fallback.
 */
RoommatesResult
adaptedRoommates(const PreferenceProfile &prefs,
                 const std::function<double(AgentId, AgentId)> &disutility);

/** Memoized variant: greedy fallback reads the table directly. */
RoommatesResult adaptedRoommates(const PreferenceProfile &prefs,
                                 const DisutilityTable &disutility);

} // namespace cooper

#endif // COOPER_MATCHING_STABLE_ROOMMATES_HH
