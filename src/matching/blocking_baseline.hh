/**
 * @file
 * The pre-optimization blocking-pair scan, verbatim.
 *
 * Seed implementation kept (unused by production code) so the
 * kernel-equivalence tests can prove the mode-aware table-backed scan
 * in blocking.cc returns the identical pair sequence, and so
 * bench_regression can measure old vs. new instead of asserting a
 * speedup. Records no metrics and emits no spans.
 */

#ifndef COOPER_MATCHING_BLOCKING_BASELINE_HH
#define COOPER_MATCHING_BLOCKING_BASELINE_HH

#include "matching/blocking.hh"

namespace cooper {

/** Seed scan: std::function oracle per cell, full vector always. */
std::vector<BlockingPair>
baselineFindBlockingPairs(const Matching &matching,
                          const DisutilityFn &disutility, double alpha,
                          std::size_t threads = 1);

/** Seed count: materializes the vector just to take .size(). */
std::size_t baselineCountBlockingPairs(const Matching &matching,
                                       const DisutilityFn &disutility,
                                       double alpha,
                                       std::size_t threads = 1);

} // namespace cooper

#endif // COOPER_MATCHING_BLOCKING_BASELINE_HH
