#include "disutility.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

DisutilityTable::DisutilityTable(std::size_t agents,
                                 std::size_t candidates,
                                 const DisutilityFn &fn,
                                 std::size_t threads)
    : agents_(agents), candidates_(candidates),
      data_(agents * candidates, 0.0), rowMin_(agents, 0.0)
{
    fatalIf(agents == 0 || candidates == 0,
            "DisutilityTable: empty shape ", agents, "x", candidates);
    // Row r is written by exactly one iteration.
    parallelFor(0, agents_, threads, [&](std::size_t a) {
        double *row = data_.data() + a * candidates_;
        for (std::size_t b = 0; b < candidates_; ++b)
            row[b] = fn(a, b);
        rowMin_[a] = *std::min_element(row, row + candidates_);
    });
}

void
DisutilityTable::refreshRows(const std::vector<AgentId> &rows,
                             const DisutilityFn &fn,
                             std::size_t threads)
{
    fatalIf(empty(), "DisutilityTable::refreshRows: table not built");
    // Deduplicate so a row is written by exactly one iteration.
    std::vector<AgentId> todo(rows);
    std::sort(todo.begin(), todo.end());
    todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
    fatalIf(!todo.empty() && todo.back() >= agents_,
            "DisutilityTable::refreshRows: row ", todo.back(),
            " out of range (", agents_, " agents)");
    parallelFor(0, todo.size(), threads, [&](std::size_t k) {
        const AgentId a = todo[k];
        double *row = data_.data() + a * candidates_;
        for (std::size_t b = 0; b < candidates_; ++b)
            row[b] = fn(a, b);
        rowMin_[a] = *std::min_element(row, row + candidates_);
    });
}

DisutilityFn
DisutilityTable::fn() const
{
    return [this](AgentId a, AgentId b) { return (*this)(a, b); };
}

} // namespace cooper
