#include "disutility.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

DisutilityTable::DisutilityTable(std::size_t agents,
                                 std::size_t candidates,
                                 const DisutilityFn &fn,
                                 std::size_t threads)
    : agents_(agents), candidates_(candidates),
      data_(agents * candidates, 0.0), rowMin_(agents, 0.0)
{
    fatalIf(agents == 0 || candidates == 0,
            "DisutilityTable: empty shape ", agents, "x", candidates);
    // Row r is written by exactly one iteration.
    parallelFor(0, agents_, threads, [&](std::size_t a) {
        double *row = data_.data() + a * candidates_;
        for (std::size_t b = 0; b < candidates_; ++b)
            row[b] = fn(a, b);
        rowMin_[a] = *std::min_element(row, row + candidates_);
    });
}

DisutilityFn
DisutilityTable::fn() const
{
    return [this](AgentId a, AgentId b) { return (*this)(a, b); };
}

} // namespace cooper
