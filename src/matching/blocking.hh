/**
 * @file
 * Blocking-pair analysis (Section III.B and Figure 10).
 *
 * Agents i and j block a matching when each prefers the other over its
 * assigned co-runner; such pairs would break away to a separate
 * subsystem. The stability analysis parameterizes this with alpha, the
 * minimum performance benefit for which an agent bothers to break
 * away: with alpha = 2%, agents defect only for colocations improving
 * both penalties by at least two points.
 */

#ifndef COOPER_MATCHING_BLOCKING_HH
#define COOPER_MATCHING_BLOCKING_HH

#include <functional>
#include <vector>

#include "matching/matching.hh"
#include "matching/preferences.hh"

namespace cooper {

/** Disutility oracle: d(agent, co-runner) in [0, 1]. */
using DisutilityFn = std::function<double(AgentId, AgentId)>;

/** One blocking pair with both sides' gains. */
struct BlockingPair
{
    AgentId a = 0;
    AgentId b = 0;
    double gainA = 0.0; //!< penalty reduction a would see
    double gainB = 0.0; //!< penalty reduction b would see
};

/**
 * All pairs that would break away for a benefit of at least alpha.
 *
 * Unmatched agents run alone with zero penalty and therefore never
 * join a blocking pair.
 *
 * The O(n^2) scan parallelizes over the first agent's index; chunk
 * results are concatenated in index order, so the returned pairs are
 * in exactly the serial scan's order for any thread count. The
 * disutility oracle must be safe to call concurrently.
 *
 * @param matching Current colocations.
 * @param disutility True disutility oracle.
 * @param alpha Minimum penalty reduction for both agents.
 * @param threads Worker threads; 0 = hardware, 1 = serial.
 */
std::vector<BlockingPair> findBlockingPairs(const Matching &matching,
                                            const DisutilityFn &disutility,
                                            double alpha,
                                            std::size_t threads = 1);

/** Count of blocking pairs (same semantics as findBlockingPairs). */
std::size_t countBlockingPairs(const Matching &matching,
                               const DisutilityFn &disutility,
                               double alpha, std::size_t threads = 1);

/**
 * Preference-based stability check for roommate matchings: true when
 * no pair of agents prefers each other over their partners (the
 * textbook, alpha-free notion used to verify Irving's output).
 */
bool isStableMatching(const Matching &matching,
                      const PreferenceProfile &prefs);

} // namespace cooper

#endif // COOPER_MATCHING_BLOCKING_HH
