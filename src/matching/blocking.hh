/**
 * @file
 * Blocking-pair analysis (Section III.B and Figure 10).
 *
 * Agents i and j block a matching when each prefers the other over its
 * assigned co-runner; such pairs would break away to a separate
 * subsystem. The stability analysis parameterizes this with alpha, the
 * minimum performance benefit for which an agent bothers to break
 * away: with alpha = 2%, agents defect only for colocations improving
 * both penalties by at least two points.
 */

#ifndef COOPER_MATCHING_BLOCKING_HH
#define COOPER_MATCHING_BLOCKING_HH

#include <functional>
#include <optional>
#include <vector>

#include "matching/disutility.hh"
#include "matching/matching.hh"
#include "matching/preferences.hh"

namespace cooper {

/** One blocking pair with both sides' gains. */
struct BlockingPair
{
    AgentId a = 0;
    AgentId b = 0;
    double gainA = 0.0; //!< penalty reduction a would see
    double gainB = 0.0; //!< penalty reduction b would see
};

/**
 * All pairs that would break away for a benefit of at least alpha.
 *
 * Unmatched agents run alone with zero penalty and therefore never
 * join a blocking pair.
 *
 * The O(n^2) scan parallelizes over the first agent's index; chunk
 * results are concatenated in index order, so the returned pairs are
 * in exactly the serial scan's order for any thread count. The
 * disutility oracle must be safe to call concurrently.
 *
 * @param matching Current colocations.
 * @param disutility True disutility oracle.
 * @param alpha Minimum penalty reduction for both agents.
 * @param threads Worker threads; 0 = hardware, 1 = serial.
 */
std::vector<BlockingPair> findBlockingPairs(const Matching &matching,
                                            const DisutilityFn &disutility,
                                            double alpha,
                                            std::size_t threads = 1);

/**
 * Memoized-table variant: identical pairs in the identical order, but
 * every lookup is one flat-array load and rows whose best possible
 * gain (via DisutilityTable::rowMin) cannot reach alpha are skipped
 * without touching their candidates.
 */
std::vector<BlockingPair> findBlockingPairs(const Matching &matching,
                                            const DisutilityTable &disutility,
                                            double alpha,
                                            std::size_t threads = 1);

/**
 * Count of blocking pairs (same semantics as findBlockingPairs).
 *
 * Runs the scan in count-only mode: per-chunk integer tallies are
 * summed in chunk order, so no pair vector is ever materialized and
 * the count is exact for any thread count.
 */
std::size_t countBlockingPairs(const Matching &matching,
                               const DisutilityFn &disutility,
                               double alpha, std::size_t threads = 1);

/** Table-backed count; same count, O(1) lookups, row early exit. */
std::size_t countBlockingPairs(const Matching &matching,
                               const DisutilityTable &disutility,
                               double alpha, std::size_t threads = 1);

/**
 * First blocking pair in scan order, or nullopt when the matching is
 * alpha-stable. Serial with early exit: stops at the first hit, so a
 * very unstable matching answers in O(1) pairs instead of O(n^2).
 */
std::optional<BlockingPair> firstBlockingPair(const Matching &matching,
                                              const DisutilityFn &disutility,
                                              double alpha);

/** Table-backed first-pair probe. */
std::optional<BlockingPair> firstBlockingPair(const Matching &matching,
                                              const DisutilityTable &disutility,
                                              double alpha);

/**
 * Preference-based stability check for roommate matchings: true when
 * no pair of agents prefers each other over their partners (the
 * textbook, alpha-free notion used to verify Irving's output).
 */
bool isStableMatching(const Matching &matching,
                      const PreferenceProfile &prefs);

} // namespace cooper

#endif // COOPER_MATCHING_BLOCKING_HH
