#include "blocking_baseline.hh"

#include <iterator>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

std::vector<BlockingPair>
baselineFindBlockingPairs(const Matching &matching,
                          const DisutilityFn &disutility, double alpha,
                          std::size_t threads)
{
    fatalIf(alpha < 0.0, "findBlockingPairs: negative alpha ", alpha);
    const std::size_t n = matching.size();

    // Cache each agent's current penalty.
    std::vector<double> current(n, 0.0);
    parallelFor(0, n, threads, [&](std::size_t i) {
        if (matching.isMatched(i))
            current[i] = disutility(i, matching.partnerOf(i));
    });

    // Chunks of i-rows, concatenated in row order: the output matches
    // the serial (i, then j) scan exactly.
    constexpr std::size_t kGrain = 16;
    return parallelReduce(
        std::size_t(0), n, threads, kGrain, std::vector<BlockingPair>{},
        [&](std::size_t row_begin, std::size_t row_end) {
            std::vector<BlockingPair> local;
            for (AgentId i = row_begin; i < row_end; ++i) {
                if (!matching.isMatched(i))
                    continue;
                for (AgentId j = i + 1; j < n; ++j) {
                    if (!matching.isMatched(j) ||
                        matching.partnerOf(i) == j) {
                        continue;
                    }
                    const double gain_i = current[i] - disutility(i, j);
                    const double gain_j = current[j] - disutility(j, i);
                    const bool blocks =
                        alpha > 0.0 ? (gain_i >= alpha && gain_j >= alpha)
                                    : (gain_i > 0.0 && gain_j > 0.0);
                    if (blocks)
                        local.push_back(
                            BlockingPair{i, j, gain_i, gain_j});
                }
            }
            return local;
        },
        [](std::vector<BlockingPair> &acc,
           std::vector<BlockingPair> &&part) {
            acc.insert(acc.end(),
                       std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
        });
}

std::size_t
baselineCountBlockingPairs(const Matching &matching,
                           const DisutilityFn &disutility, double alpha,
                           std::size_t threads)
{
    return baselineFindBlockingPairs(matching, disutility, alpha, threads)
        .size();
}

} // namespace cooper
