/**
 * @file
 * Memoized pairwise-disutility table.
 *
 * Every phase of an epoch — preference construction, stable marriage,
 * roommates completion, blocking-pair scans, agent assessment — asks
 * the same d(agent, candidate) questions, and the oracles behind them
 * (believed-penalty lookups plus the tie-breaking jitter hash, or a
 * prediction-backed mix) are pure within an epoch. Evaluating the
 * oracle once per ordered pair into a flat row-major table turns every
 * later query into one cache-friendly load and removes the
 * std::function indirection from the O(n^2) inner loops.
 *
 * Ownership and invalidation: the table snapshots the oracle at
 * construction. It is built per epoch, after the profiler refresh and
 * the predictor fill produce that epoch's believed penalties, and
 * must be rebuilt whenever re-profiling or a matching change alters
 * what the oracle would answer (the framework rebuilds its assessment
 * table after the matching is fixed for exactly that reason). Helpers
 * that take a DisutilityFn keep working — fn() adapts a table back to
 * the functional interface — but the table must outlive any fn() it
 * hands out.
 */

#ifndef COOPER_MATCHING_DISUTILITY_HH
#define COOPER_MATCHING_DISUTILITY_HH

#include <cstddef>
#include <vector>

#include "matching/matching.hh"

namespace cooper {

/** Flat row-major memo of d(agent, candidate). */
class DisutilityTable
{
  public:
    DisutilityTable() = default;

    /**
     * Evaluate `fn` for every (agent, candidate) pair.
     *
     * @param agents Number of agents (rows).
     * @param candidates Number of candidates (columns).
     * @param fn Disutility oracle; must be safe to call concurrently
     *        when threads != 1.
     * @param threads Worker threads for the fill; 0 = hardware,
     *        1 = serial.
     */
    DisutilityTable(std::size_t agents, std::size_t candidates,
                    const DisutilityFn &fn, std::size_t threads = 1);

    std::size_t agents() const { return agents_; }
    std::size_t candidates() const { return candidates_; }
    bool empty() const { return data_.empty(); }

    double operator()(AgentId a, AgentId b) const
    {
        return data_[a * candidates_ + b];
    }

    /** Agent a's candidates() disutilities, contiguous. */
    const double *row(AgentId a) const
    {
        return data_.data() + a * candidates_;
    }

    /**
     * Smallest entry in agent a's row (over all candidates, self
     * included). A sound lower bound for "best co-runner a could
     * get", which lets blocking scans skip whole rows.
     */
    double rowMin(AgentId a) const { return rowMin_[a]; }

    /**
     * Re-evaluate `fn` over just the listed rows (duplicates fine),
     * refreshing their rowMin bounds; all other rows keep their
     * snapshot. After the call the refreshed rows are exactly what a
     * full rebuild against `fn` would hold, so a caller that lists
     * every row whose answers changed ends with a table bit-identical
     * to a from-scratch build — at O(rows * candidates) cost.
     */
    void refreshRows(const std::vector<AgentId> &rows,
                     const DisutilityFn &fn, std::size_t threads = 1);

    /** Adapter to the functional interface; the table must outlive
     *  the returned closure. */
    DisutilityFn fn() const;

  private:
    std::size_t agents_ = 0;
    std::size_t candidates_ = 0;
    std::vector<double> data_;
    std::vector<double> rowMin_;
};

} // namespace cooper

#endif // COOPER_MATCHING_DISUTILITY_HH
