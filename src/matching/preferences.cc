#include "preferences.hh"

#include <algorithm>
#include <limits>

#include "util/error.hh"

namespace cooper {

namespace {

constexpr std::size_t kNoRank = std::numeric_limits<std::size_t>::max();

/**
 * Sort one agent's candidate list by precomputed keys. The comparator
 * reads two doubles instead of calling the disutility oracle twice per
 * comparison, turning O(n log n) oracle calls per agent into O(n);
 * stable_sort on identical key values yields the identical order.
 */
std::vector<AgentId>
orderByKeys(AgentId self, std::size_t candidates,
            const double *keys, bool exclude_self)
{
    std::vector<AgentId> list;
    list.reserve(candidates);
    for (AgentId j = 0; j < candidates; ++j)
        if (!(exclude_self && j == self))
            list.push_back(j);
    std::stable_sort(list.begin(), list.end(),
                     [&](AgentId a, AgentId b) {
                         return keys[a] < keys[b];
                     });
    return list;
}

} // namespace

PreferenceProfile::PreferenceProfile(
    std::vector<std::vector<AgentId>> lists, std::size_t candidates)
    : lists_(std::move(lists)), candidates_(candidates)
{
    ranks_.assign(lists_.size() * candidates_, kNoRank);
    for (AgentId i = 0; i < lists_.size(); ++i) {
        for (std::size_t r = 0; r < lists_[i].size(); ++r) {
            const AgentId j = lists_[i][r];
            fatalIf(j >= candidates_, "PreferenceProfile: agent ", i,
                    " lists candidate ", j, " >= ", candidates_);
            fatalIf(ranks_[i * candidates_ + j] != kNoRank,
                    "PreferenceProfile: agent ", i,
                    " lists candidate ", j, " twice");
            ranks_[i * candidates_ + j] = r;
        }
    }
}

PreferenceProfile
PreferenceProfile::fromDisutility(
    std::size_t agents, std::size_t candidates,
    const std::function<double(AgentId, AgentId)> &disutility,
    bool exclude_self)
{
    std::vector<std::vector<AgentId>> lists(agents);
    std::vector<double> keys(candidates, 0.0);
    for (AgentId i = 0; i < agents; ++i) {
        for (AgentId j = 0; j < candidates; ++j)
            keys[j] = disutility(i, j);
        lists[i] = orderByKeys(i, candidates, keys.data(), exclude_self);
    }
    return PreferenceProfile(std::move(lists), candidates);
}

PreferenceProfile
PreferenceProfile::fromTable(const DisutilityTable &table,
                             bool exclude_self)
{
    std::vector<std::vector<AgentId>> lists(table.agents());
    for (AgentId i = 0; i < table.agents(); ++i)
        lists[i] = orderByKeys(i, table.candidates(), table.row(i),
                               exclude_self);
    return PreferenceProfile(std::move(lists), table.candidates());
}

std::size_t
PreferenceProfile::rankOf(AgentId i, AgentId j) const
{
    fatalIf(i >= lists_.size(), "rankOf: agent ", i, " out of range");
    fatalIf(j >= candidates_, "rankOf: candidate ", j, " out of range");
    const std::size_t r = ranks_[i * candidates_ + j];
    fatalIf(r == kNoRank, "rankOf: candidate ", j,
            " not on agent ", i, "'s list");
    return r;
}

bool
PreferenceProfile::hasCandidate(AgentId i, AgentId j) const
{
    fatalIf(i >= lists_.size(), "hasCandidate: agent out of range");
    fatalIf(j >= candidates_, "hasCandidate: candidate out of range");
    return ranks_[i * candidates_ + j] != kNoRank;
}

bool
PreferenceProfile::prefers(AgentId i, AgentId a, AgentId b) const
{
    return rankOf(i, a) < rankOf(i, b);
}

} // namespace cooper
