#include "preferences.hh"

#include <algorithm>

#include "util/error.hh"

namespace cooper {

namespace {

constexpr std::size_t kNoRank = std::numeric_limits<std::size_t>::max();

} // namespace

PreferenceProfile::PreferenceProfile(
    std::vector<std::vector<AgentId>> lists, std::size_t candidates)
    : lists_(std::move(lists)), candidates_(candidates)
{
    ranks_.assign(lists_.size(),
                  std::vector<std::size_t>(candidates_, kNoRank));
    for (AgentId i = 0; i < lists_.size(); ++i) {
        for (std::size_t r = 0; r < lists_[i].size(); ++r) {
            const AgentId j = lists_[i][r];
            fatalIf(j >= candidates_, "PreferenceProfile: agent ", i,
                    " lists candidate ", j, " >= ", candidates_);
            fatalIf(ranks_[i][j] != kNoRank,
                    "PreferenceProfile: agent ", i,
                    " lists candidate ", j, " twice");
            ranks_[i][j] = r;
        }
    }
}

PreferenceProfile
PreferenceProfile::fromDisutility(
    std::size_t agents, std::size_t candidates,
    const std::function<double(AgentId, AgentId)> &disutility,
    bool exclude_self)
{
    std::vector<std::vector<AgentId>> lists(agents);
    for (AgentId i = 0; i < agents; ++i) {
        auto &list = lists[i];
        list.reserve(candidates);
        for (AgentId j = 0; j < candidates; ++j)
            if (!(exclude_self && j == i))
                list.push_back(j);
        std::stable_sort(list.begin(), list.end(),
                         [&](AgentId a, AgentId b) {
                             return disutility(i, a) < disutility(i, b);
                         });
    }
    return PreferenceProfile(std::move(lists), candidates);
}

std::size_t
PreferenceProfile::rankOf(AgentId i, AgentId j) const
{
    fatalIf(i >= lists_.size(), "rankOf: agent ", i, " out of range");
    fatalIf(j >= candidates_, "rankOf: candidate ", j, " out of range");
    const std::size_t r = ranks_[i][j];
    fatalIf(r == kNoRank, "rankOf: candidate ", j,
            " not on agent ", i, "'s list");
    return r;
}

bool
PreferenceProfile::hasCandidate(AgentId i, AgentId j) const
{
    fatalIf(i >= lists_.size(), "hasCandidate: agent out of range");
    fatalIf(j >= candidates_, "hasCandidate: candidate out of range");
    return ranks_[i][j] != kNoRank;
}

bool
PreferenceProfile::prefers(AgentId i, AgentId a, AgentId b) const
{
    return rankOf(i, a) < rankOf(i, b);
}

} // namespace cooper
