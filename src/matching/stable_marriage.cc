#include "stable_marriage.hh"

#include <deque>

#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

namespace {

void
checkSides(const PreferenceProfile &proposers,
           const PreferenceProfile &acceptors)
{
    fatalIf(proposers.candidates() != acceptors.agents(),
            "stableMarriage: proposers rank ", proposers.candidates(),
            " candidates but there are ", acceptors.agents(),
            " acceptors");
    fatalIf(acceptors.candidates() != proposers.agents(),
            "stableMarriage: acceptors rank ", acceptors.candidates(),
            " candidates but there are ", proposers.agents(),
            " proposers");
}

} // namespace

MarriageResult
stableMarriage(const PreferenceProfile &proposers,
               const PreferenceProfile &acceptors)
{
    checkSides(proposers, acceptors);
    const std::size_t np = proposers.agents();
    const std::size_t na = acceptors.agents();

    MarriageResult result;
    result.proposerPartner.assign(np, kUnmatched);
    std::vector<AgentId> held(na, kUnmatched);
    std::vector<std::size_t> next(np, 0); // next list index to try

    std::deque<AgentId> free;
    for (AgentId m = 0; m < np; ++m)
        free.push_back(m);

    while (!free.empty()) {
        const AgentId m = free.front();
        free.pop_front();
        if (next[m] >= proposers.list(m).size())
            continue; // exhausted: stays single
        const AgentId w = proposers.list(m)[next[m]++];
        ++result.proposals;
        if (!acceptors.hasCandidate(w, m)) {
            free.push_back(m); // w would never accept m
            continue;
        }
        const AgentId current = held[w];
        if (current == kUnmatched) {
            held[w] = m;
        } else if (acceptors.prefers(w, m, current)) {
            held[w] = m;
            result.proposerPartner[current] = kUnmatched;
            free.push_back(current);
        } else {
            free.push_back(m);
            continue;
        }
        result.proposerPartner[m] = w;
    }
    result.rounds = 0; // sequential formulation has no round structure
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("matching.proposals").add(result.proposals);
    return result;
}

MarriageResult
stableMarriageParallel(const PreferenceProfile &proposers,
                       const PreferenceProfile &acceptors)
{
    checkSides(proposers, acceptors);
    const std::size_t np = proposers.agents();
    const std::size_t na = acceptors.agents();

    MarriageResult result;
    result.proposerPartner.assign(np, kUnmatched);
    std::vector<AgentId> held(na, kUnmatched);
    std::vector<std::size_t> next(np, 0);

    bool progressed = true;
    while (progressed) {
        progressed = false;
        // All free proposers with list remaining propose "at once".
        std::vector<std::vector<AgentId>> inbox(na);
        for (AgentId m = 0; m < np; ++m) {
            if (result.proposerPartner[m] != kUnmatched)
                continue;
            while (next[m] < proposers.list(m).size()) {
                const AgentId w = proposers.list(m)[next[m]];
                if (acceptors.hasCandidate(w, m))
                    break;
                ++next[m]; // skip acceptors that would never accept
            }
            if (next[m] >= proposers.list(m).size())
                continue;
            const AgentId w = proposers.list(m)[next[m]++];
            inbox[w].push_back(m);
            ++result.proposals;
            progressed = true;
        }
        if (!progressed)
            break;
        ++result.rounds;
        // Each acceptor keeps the best proposal in hand.
        for (AgentId w = 0; w < na; ++w) {
            AgentId best = held[w];
            for (AgentId m : inbox[w])
                if (best == kUnmatched || acceptors.prefers(w, m, best))
                    best = m;
            if (best != held[w]) {
                if (held[w] != kUnmatched)
                    result.proposerPartner[held[w]] = kUnmatched;
                held[w] = best;
                result.proposerPartner[best] = w;
            }
        }
    }
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("matching.proposals").add(result.proposals);
    return result;
}

std::size_t
marriageBlockingPairs(const PreferenceProfile &proposers,
                      const PreferenceProfile &acceptors,
                      const std::vector<AgentId> &match)
{
    checkSides(proposers, acceptors);
    fatalIf(match.size() != proposers.agents(),
            "marriageBlockingPairs: match size mismatch");
    const std::size_t np = proposers.agents();
    const std::size_t na = acceptors.agents();

    // Invert the match for acceptor lookups.
    std::vector<AgentId> held(na, kUnmatched);
    for (AgentId m = 0; m < np; ++m)
        if (match[m] != kUnmatched)
            held[match[m]] = m;

    std::size_t blocking = 0;
    for (AgentId m = 0; m < np; ++m) {
        for (AgentId w = 0; w < na; ++w) {
            if (match[m] == w)
                continue;
            if (!proposers.hasCandidate(m, w) ||
                !acceptors.hasCandidate(w, m)) {
                continue;
            }
            const bool m_wants = match[m] == kUnmatched ||
                                 proposers.prefers(m, w, match[m]);
            const bool w_wants = held[w] == kUnmatched ||
                                 acceptors.prefers(w, m, held[w]);
            if (m_wants && w_wants)
                ++blocking;
        }
    }
    return blocking;
}

} // namespace cooper
