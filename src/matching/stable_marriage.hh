/**
 * @file
 * Gale-Shapley stable marriage for the colocation game (Algorithm 1).
 *
 * Two disjoint task sets; one side proposes down its preference list,
 * the other holds its best proposal so far. The result is stable (no
 * cross-set pair prefers each other over their partners) and optimal
 * for the proposing side.
 */

#ifndef COOPER_MATCHING_STABLE_MARRIAGE_HH
#define COOPER_MATCHING_STABLE_MARRIAGE_HH

#include <vector>

#include "matching/preferences.hh"

namespace cooper {

/** Result of a marriage run, in side-local indices. */
struct MarriageResult
{
    /** For each proposer, the acceptor it married (or kUnmatched). */
    std::vector<AgentId> proposerPartner;

    /** Proposal rounds executed by the round-parallel formulation. */
    std::size_t rounds = 0;

    /** Total proposals issued. */
    std::size_t proposals = 0;
};

/**
 * Classic sequential Gale-Shapley.
 *
 * @param proposers Preferences of the proposing side over acceptors.
 * @param acceptors Preferences of the accepting side over proposers.
 */
MarriageResult stableMarriage(const PreferenceProfile &proposers,
                              const PreferenceProfile &acceptors);

/**
 * Round-parallel formulation (Section III.C): in each round every
 * free proposer proposes to its best remaining acceptor and every
 * acceptor keeps the best proposal in hand. Produces the same
 * proposer-optimal matching as the sequential form; exposed so tests
 * can confirm that equivalence and so `rounds` can be reported.
 */
MarriageResult stableMarriageParallel(const PreferenceProfile &proposers,
                                      const PreferenceProfile &acceptors);

/**
 * Count cross-set blocking pairs of a marriage outcome (0 certifies
 * stability).
 */
std::size_t marriageBlockingPairs(const PreferenceProfile &proposers,
                                  const PreferenceProfile &acceptors,
                                  const std::vector<AgentId> &match);

} // namespace cooper

#endif // COOPER_MATCHING_STABLE_MARRIAGE_HH
