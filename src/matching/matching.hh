/**
 * @file
 * Common types for pairwise matchings over agents.
 */

#ifndef COOPER_MATCHING_MATCHING_HH
#define COOPER_MATCHING_MATCHING_HH

#include <cstddef>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

namespace cooper {

/** Index of an agent within a matching instance. */
using AgentId = std::size_t;

/** Disutility oracle: d(agent, co-runner) in [0, 1]. */
using DisutilityFn = std::function<double(AgentId, AgentId)>;

/** Sentinel for an unmatched agent. */
inline constexpr AgentId kUnmatched =
    std::numeric_limits<AgentId>::max();

/**
 * A (partial) pairing of agents: partner[i] is i's co-runner or
 * kUnmatched.
 */
class Matching
{
  public:
    Matching() = default;

    /** All agents initially unmatched. */
    explicit Matching(std::size_t n)
        : partner_(n, kUnmatched)
    {}

    std::size_t size() const { return partner_.size(); }

    AgentId partnerOf(AgentId i) const { return partner_[i]; }

    bool isMatched(AgentId i) const { return partner_[i] != kUnmatched; }

    /** Pair two distinct agents, unpairing any previous partners. */
    void pair(AgentId a, AgentId b);

    /** Remove i (and its partner) from the matching. */
    void unpair(AgentId a);

    /** Number of matched pairs. */
    std::size_t pairCount() const;

    /** True when every agent has a partner. */
    bool isPerfect() const;

    /** All pairs with first < second, in ascending order. */
    std::vector<std::pair<AgentId, AgentId>> pairs() const;

    /**
     * Internal-consistency check: partner symmetry and no
     * self-pairing. Returns true when consistent.
     */
    bool consistent() const;

  private:
    std::vector<AgentId> partner_;
};

} // namespace cooper

#endif // COOPER_MATCHING_MATCHING_HH
