#include "stable_roommates.hh"

#include <algorithm>
#include <deque>

#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper {

namespace {

/**
 * Mutable preference table shared by both roommates entry points.
 *
 * The table maintains Irving's "stable table" invariant after every
 * proposal round: each live agent is semiengaged to the first agent on
 * its reduced list, and an agent's list holds exactly the partners
 * that would not immediately reject it. Deletions are symmetric.
 */
class RoommateEngine
{
  public:
    RoommateEngine(const PreferenceProfile &prefs, bool strict)
        : prefs_(&prefs), strict_(strict), n_(prefs.agents()),
          active_(n_ * n_, 0), count_(n_, 0),
          headIdx_(n_, 0), tailIdx_(n_, 0),
          engagedTo_(n_, kUnmatched), holder_(n_, kUnmatched),
          alive_(n_, 1)
    {
        for (AgentId i = 0; i < n_; ++i) {
            const auto &list = prefs.list(i);
            for (AgentId j : list) {
                panicIf(j == i, "roommates: agent ", i, " lists itself");
                active_[i * n_ + j] = 1;
            }
            count_[i] = list.size();
            tailIdx_[i] = list.empty() ? 0 : list.size() - 1;
        }
        // Lists must be mutually consistent: (i, j) live implies
        // (j, i) live, otherwise symmetric deletion breaks.
        for (AgentId i = 0; i < n_; ++i)
            for (AgentId j : prefs.list(i))
                fatalIf(!active_[j * n_ + i],
                        "roommates: agent ", i, " lists ", j,
                        " but not vice versa");
    }

    /** Run phase 1 + phase 2; false when strict mode hit a dead end. */
    bool
    run(RoommatesResult &result)
    {
        for (AgentId i = 0; i < n_; ++i)
            free_.push_back(i);
        if (!proposeAll(result))
            return false;
        while (true) {
            const AgentId pivot = agentWithChoice();
            if (pivot == kUnmatched)
                break;
            eliminateRotation(pivot, result);
            if (strict_ && failed_)
                return false;
            if (!proposeAll(result))
                return false;
        }
        return !failed_ || !strict_;
    }

    /** Extract the final matching; engaged pairs only. */
    Matching
    extract() const
    {
        Matching m(n_);
        for (AgentId i = 0; i < n_; ++i) {
            const AgentId j = engagedTo_[i];
            if (j == kUnmatched)
                continue;
            panicIf(engagedTo_[j] != i,
                    "roommates: asymmetric engagement ", i, " -> ", j);
            if (i < j)
                m.pair(i, j);
        }
        return m;
    }

    const std::vector<AgentId> &setAside() const { return setAside_; }

  private:
    bool pairActive(AgentId a, AgentId b) const
    {
        return active_[a * n_ + b] != 0;
    }

    /** First live candidate on a's list, or kUnmatched. */
    AgentId
    first(AgentId a)
    {
        const auto &list = prefs_->list(a);
        while (headIdx_[a] < list.size() &&
               !pairActive(a, list[headIdx_[a]])) {
            ++headIdx_[a];
        }
        return headIdx_[a] < list.size() ? list[headIdx_[a]]
                                         : kUnmatched;
    }

    /** Second live candidate on a's list, or kUnmatched. */
    AgentId
    second(AgentId a)
    {
        const auto &list = prefs_->list(a);
        if (first(a) == kUnmatched)
            return kUnmatched;
        for (std::size_t idx = headIdx_[a] + 1; idx < list.size(); ++idx)
            if (pairActive(a, list[idx]))
                return list[idx];
        return kUnmatched;
    }

    /** Last live candidate on a's list, or kUnmatched. */
    AgentId
    last(AgentId a)
    {
        const auto &list = prefs_->list(a);
        if (list.empty())
            return kUnmatched;
        std::size_t idx = tailIdx_[a];
        while (!pairActive(a, list[idx])) {
            if (idx == 0)
                return kUnmatched;
            --idx;
        }
        tailIdx_[a] = idx;
        return list[idx];
    }

    /**
     * Symmetric deletion. Breaks any semiengagement across the pair
     * and requeues the agent that lost its proposal.
     */
    void
    deletePair(AgentId a, AgentId b)
    {
        panicIf(!pairActive(a, b), "roommates: deleting dead pair ",
                a, "-", b);
        active_[a * n_ + b] = 0;
        active_[b * n_ + a] = 0;
        --count_[a];
        --count_[b];
        if (engagedTo_[a] == b) {
            engagedTo_[a] = kUnmatched;
            holder_[b] = kUnmatched;
            free_.push_back(a);
        }
        if (engagedTo_[b] == a) {
            engagedTo_[b] = kUnmatched;
            holder_[a] = kUnmatched;
            free_.push_back(b);
        }
    }

    /**
     * Proposal loop: every free agent proposes down its list until
     * held or exhausted. Returns false only when strict mode proves
     * the instance unsolvable.
     */
    bool
    proposeAll(RoommatesResult &result)
    {
        while (!free_.empty()) {
            const AgentId x = free_.front();
            free_.pop_front();
            if (!alive_[x] || engagedTo_[x] != kUnmatched)
                continue;
            const AgentId y = first(x);
            if (y == kUnmatched) {
                // Rejected by everyone.
                if (strict_) {
                    failed_ = true;
                    return false;
                }
                alive_[x] = 0;
                setAside_.push_back(x);
                continue;
            }
            ++result.proposals;
            const AgentId z = holder_[y];
            if (z != kUnmatched && prefs_->prefers(y, z, x)) {
                deletePair(x, y); // y rejects x outright
                free_.push_back(x);
                continue;
            }
            // y accepts x: everyone y likes less than x is deleted
            // (this frees z, the displaced holder, via deletePair).
            const auto &ylist = prefs_->list(y);
            const std::size_t cut = prefs_->rankOf(y, x);
            for (std::size_t idx = ylist.size(); idx-- > cut + 1;) {
                const AgentId w = ylist[idx];
                if (pairActive(y, w))
                    deletePair(y, w);
            }
            holder_[y] = x;
            engagedTo_[x] = y;
        }
        return true;
    }

    /** Any live agent with at least two live candidates. */
    AgentId
    agentWithChoice()
    {
        for (AgentId i = 0; i < n_; ++i)
            if (alive_[i] && count_[i] >= 2)
                return i;
        return kUnmatched;
    }

    /**
     * Find and eliminate the rotation exposed at `start`.
     *
     * Follow x_{k+1} = last(second(x_k)) until an agent repeats; the
     * portion from its first occurrence is the rotation. Eliminating
     * deletes each pair (x_{k+1}, y_k), freeing those agents to
     * propose again.
     */
    void
    eliminateRotation(AgentId start, RoommatesResult &result)
    {
        std::vector<AgentId> xs, ys;
        std::vector<std::size_t> seen_at(n_, kUnmatched);
        AgentId x = start;
        std::size_t cycle_start = kUnmatched;
        while (true) {
            if (seen_at[x] != kUnmatched) {
                cycle_start = seen_at[x];
                break;
            }
            seen_at[x] = xs.size();
            const AgentId y = second(x);
            panicIf(y == kUnmatched,
                    "roommates: rotation walk hit a singleton list");
            xs.push_back(x);
            ys.push_back(y);
            x = last(y);
            panicIf(x == kUnmatched,
                    "roommates: rotation walk hit an empty list");
        }
        ++result.rotations;
        const std::size_t len = xs.size() - cycle_start;
        for (std::size_t k = 0; k < len; ++k) {
            const AgentId yk = ys[cycle_start + k];
            const AgentId xnext = xs[cycle_start + (k + 1) % len];
            // first(xnext) == yk in a stable table; deleting the pair
            // frees xnext to propose to its next candidate.
            if (pairActive(xnext, yk))
                deletePair(xnext, yk);
        }
    }

    const PreferenceProfile *prefs_;
    bool strict_;
    std::size_t n_;
    std::vector<std::uint8_t> active_;
    std::vector<std::size_t> count_;
    std::vector<std::size_t> headIdx_;
    std::vector<std::size_t> tailIdx_;
    std::vector<AgentId> engagedTo_;
    std::vector<AgentId> holder_;
    std::vector<std::uint8_t> alive_;
    std::vector<AgentId> setAside_;
    std::deque<AgentId> free_;
    bool failed_ = false;
};

/**
 * Shared adapted-roommates body; D is any pure d(a, b) callable (the
 * std::function oracle or the memoized table).
 */
template <typename D>
RoommatesResult
adaptedRoommatesImpl(const PreferenceProfile &prefs, const D &disutility)
{
    const ScopedTimer timer("matching.roommates_seconds");
    RoommatesResult result;
    RoommateEngine engine(prefs, /*strict=*/false);
    engine.run(result);
    result.matching = engine.extract();
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("matching.proposals").add(result.proposals);
        metrics->counter("matching.rotations").add(result.rotations);
    }

    // Pool every agent Irving could not place.
    std::vector<AgentId> pool;
    for (AgentId i = 0; i < prefs.agents(); ++i)
        if (!result.matching.isMatched(i))
            pool.push_back(i);
    result.fallbackAgents = pool;
    result.perfectlyStable = pool.empty();

    // Greedy completion, GR applied to the rejects: take set-aside
    // agents in order and give each the remaining partner that
    // minimizes the pair's combined disutility.
    std::vector<std::uint8_t> used(prefs.agents(), 0);
    for (std::size_t ai = 0; ai + 1 < pool.size(); ++ai) {
        const AgentId a = pool[ai];
        if (used[a])
            continue;
        double best = 0.0;
        AgentId best_b = kUnmatched;
        for (std::size_t bi = ai + 1; bi < pool.size(); ++bi) {
            const AgentId b = pool[bi];
            if (used[b])
                continue;
            const double cost = disutility(a, b) + disutility(b, a);
            if (best_b == kUnmatched || cost < best) {
                best = cost;
                best_b = b;
            }
        }
        if (best_b == kUnmatched)
            break; // a is the single odd agent left
        result.matching.pair(a, best_b);
        used[a] = 1;
        used[best_b] = 1;
    }
    return result;
}

} // namespace

std::optional<Matching>
stableRoommates(const PreferenceProfile &prefs)
{
    const std::size_t n = prefs.agents();
    if (n == 0)
        return Matching(0);
    fatalIf(n % 2 != 0,
            "stableRoommates: odd population (", n, ") cannot pair up");
    for (AgentId i = 0; i < n; ++i)
        fatalIf(prefs.list(i).size() != n - 1,
                "stableRoommates: agent ", i,
                " has an incomplete preference list");

    RoommatesResult scratch;
    RoommateEngine engine(prefs, /*strict=*/true);
    const bool solved = engine.run(scratch);
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("matching.proposals").add(scratch.proposals);
        metrics->counter("matching.rotations").add(scratch.rotations);
    }
    if (!solved)
        return std::nullopt;
    Matching m = engine.extract();
    if (!m.isPerfect())
        return std::nullopt;
    return m;
}

RoommatesResult
adaptedRoommates(
    const PreferenceProfile &prefs,
    const std::function<double(AgentId, AgentId)> &disutility)
{
    return adaptedRoommatesImpl(prefs, disutility);
}

RoommatesResult
adaptedRoommates(const PreferenceProfile &prefs,
                 const DisutilityTable &disutility)
{
    return adaptedRoommatesImpl(
        prefs, [&](AgentId a, AgentId b) { return disutility(a, b); });
}

} // namespace cooper
