#include "blocking_incremental.hh"

#include <algorithm>
#include <bit>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace cooper {

namespace {

/** The scans' threshold test, verbatim (see blocking.cc). */
inline bool
clears(double gain_i, double gain_j, double alpha)
{
    return alpha > 0.0 ? (gain_i >= alpha && gain_j >= alpha)
                       : (gain_i > 0.0 && gain_j > 0.0);
}

/** Bits 0..i (inclusive) cleared: keeps only the j > i half. */
inline std::uint64_t
aboveDiagonalMask(std::size_t i_in_word)
{
    return i_in_word == 63
               ? 0
               : ~std::uint64_t(0) << (i_in_word + 1);
}

void
checkShape(const DisutilityTable &table, std::size_t n)
{
    panicIf(table.agents() != n || table.candidates() != n,
            "BlockingBounds: table is ", table.agents(), "x",
            table.candidates(), ", matching has ", n, " agents");
}

} // namespace

void
BlockingBounds::deriveRow(const Matching &matching,
                          const DisutilityTable &table, AgentId i,
                          std::uint64_t *row) const
{
    if (!matching.isMatched(i))
        return; // running alone cannot be improved upon
    // Same row prune as the table-backed scans: if even the row's
    // best disutility cannot clear the threshold, no pair with i
    // blocks (the test is symmetric, so this covers both sides).
    const double best_gain = current_[i] - table.rowMin(i);
    if (!(alpha_ > 0.0 ? best_gain >= alpha_ : best_gain > 0.0))
        return;
    const double *ri = table.row(i);
    const AgentId partner = matching.partnerOf(i);
    for (AgentId j = 0; j < n_; ++j) {
        if (j == i || j == partner || !matching.isMatched(j))
            continue;
        const double gain_i = current_[i] - ri[j];
        const double gain_j = current_[j] - table(j, i);
        if (clears(gain_i, gain_j, alpha_))
            row[j / 64] |= std::uint64_t(1) << (j % 64);
    }
}

void
BlockingBounds::rebuild(const Matching &matching,
                        const DisutilityTable &table, double alpha,
                        std::size_t threads)
{
    const ScopedTimer timer("matching.blocking_bound_seconds");
    n_ = matching.size();
    words_ = (n_ + 63) / 64;
    alpha_ = alpha;
    if (n_ > 0)
        checkShape(table, n_);

    partner_.assign(n_, kUnmatched);
    current_.assign(n_, 0.0);
    parallelFor(0, n_, threads, [&](std::size_t i) {
        partner_[i] = matching.partnerOf(i);
        if (matching.isMatched(i))
            current_[i] = table(i, partner_[i]);
    });

    bits_.assign(n_ * words_, 0);
    std::vector<std::size_t> row_count(n_, 0);
    parallelFor(0, n_, threads, [&](std::size_t i) {
        std::vector<std::uint64_t> row(words_, 0);
        deriveRow(matching, table, i, row.data());
        // Store only the j > i half; the j < i bits are the mirror
        // pairs, owned by those rows.
        std::uint64_t *dst = bits_.data() + i * words_;
        const std::size_t wi = i / 64;
        std::size_t found = 0;
        for (std::size_t w = wi; w < words_; ++w) {
            std::uint64_t word = row[w];
            if (w == wi)
                word &= aboveDiagonalMask(i % 64);
            dst[w] = word;
            found += static_cast<std::size_t>(std::popcount(word));
        }
        row_count[i] = found;
    });
    count_ = 0;
    for (std::size_t c : row_count)
        count_ += c;
    lastRescanned_ = n_;
    ready_ = true;
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter("matching.blocking_bound_rebuilds").add(1);
}

void
BlockingBounds::update(const Matching &matching,
                       const DisutilityTable &table, double alpha,
                       const std::vector<AgentId> &dirty_rows,
                       std::size_t threads)
{
    if (!ready_ || matching.size() != n_ || alpha != alpha_) {
        rebuild(matching, table, alpha, threads);
        return;
    }
    const ScopedTimer timer("matching.blocking_bound_seconds");
    checkShape(table, n_);

    std::vector<std::uint8_t> is_dirty(n_, 0);
    for (AgentId a : dirty_rows) {
        panicIf(a >= n_, "BlockingBounds::update: dirty row ", a,
                " out of range (", n_, " agents)");
        is_dirty[a] = 1;
    }
    for (AgentId i = 0; i < n_; ++i)
        if (matching.partnerOf(i) != partner_[i])
            is_dirty[i] = 1;
    std::vector<AgentId> dirty;
    for (AgentId i = 0; i < n_; ++i)
        if (is_dirty[i])
            dirty.push_back(i);

    lastRescanned_ = dirty.size();
    if (MetricsRegistry *metrics = obsMetrics()) {
        metrics->counter("matching.blocking_incremental_updates").add(1);
        metrics->counter("matching.blocking_rescanned_rows")
            .add(dirty.size());
    }
    if (dirty.empty())
        return;

    // Stage 1: refresh the snapshots of every dirty agent, before any
    // row is re-derived — a pair of two dirty agents must see both
    // sides' new current penalties.
    for (AgentId i : dirty) {
        partner_[i] = matching.partnerOf(i);
        current_[i] =
            matching.isMatched(i) ? table(i, partner_[i]) : 0.0;
    }

    // Stage 2: re-derive each dirty row against ALL other agents into
    // a scratch buffer (pure reads, safe in parallel).
    std::vector<std::uint64_t> rows(dirty.size() * words_, 0);
    parallelFor(0, dirty.size(), threads, [&](std::size_t k) {
        deriveRow(matching, table, dirty[k], rows.data() + k * words_);
    });

    // Stage 3: apply serially. A pair shared by two dirty agents is
    // derived twice with the same result, so the second application
    // is a no-op and the final bitset (and count) is deterministic
    // for any thread count.
    for (std::size_t k = 0; k < dirty.size(); ++k) {
        const AgentId i = dirty[k];
        const std::uint64_t *row = rows.data() + k * words_;
        for (std::size_t w = 0; w < words_; ++w) {
            // Every bit that may flip: the new status word OR the old
            // bits (old set bits absent from the new word must clear).
            for (AgentId j = w * 64;
                 j < std::min(n_, (w + 1) * 64); ++j) {
                if (j == i)
                    continue;
                const bool now = (row[w] >> (j % 64) & 1) != 0;
                const AgentId lo = std::min<AgentId>(i, j);
                const AgentId hi = std::max<AgentId>(i, j);
                if (now == testPair(lo, hi))
                    continue;
                bits_[pairWord(lo, hi)] ^= std::uint64_t(1)
                                           << (hi % 64);
                if (now)
                    ++count_;
                else
                    --count_;
            }
        }
    }
}

std::optional<BlockingPair>
BlockingBounds::first(const DisutilityTable &table) const
{
    panicIf(!ready_, "BlockingBounds::first: not built");
    if (n_ > 0)
        checkShape(table, n_);
    for (AgentId i = 0; i < n_; ++i) {
        const std::uint64_t *row = bits_.data() + i * words_;
        for (std::size_t w = i / 64; w < words_; ++w) {
            std::uint64_t word = row[w];
            while (word) {
                const AgentId j =
                    w * 64 + static_cast<std::size_t>(
                                 std::countr_zero(word));
                return BlockingPair{i, j, current_[i] - table(i, j),
                                    current_[j] - table(j, i)};
            }
        }
    }
    return std::nullopt;
}

std::vector<BlockingPair>
BlockingBounds::pairs(const DisutilityTable &table) const
{
    panicIf(!ready_, "BlockingBounds::pairs: not built");
    if (n_ > 0)
        checkShape(table, n_);
    std::vector<BlockingPair> out;
    out.reserve(count_);
    for (AgentId i = 0; i < n_; ++i) {
        const std::uint64_t *row = bits_.data() + i * words_;
        for (std::size_t w = i / 64; w < words_; ++w) {
            std::uint64_t word = row[w];
            while (word) {
                const AgentId j =
                    w * 64 + static_cast<std::size_t>(
                                 std::countr_zero(word));
                word &= word - 1;
                out.push_back(
                    BlockingPair{i, j, current_[i] - table(i, j),
                                 current_[j] - table(j, i)});
            }
        }
    }
    return out;
}

} // namespace cooper
