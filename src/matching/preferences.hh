/**
 * @file
 * Preference profiles over candidate co-runners.
 *
 * An agent prefers co-runner x over y when its predicted disutility
 * with x is lower (Section III.B). Profiles store each agent's strict
 * preference order plus an O(1) rank lookup.
 */

#ifndef COOPER_MATCHING_PREFERENCES_HH
#define COOPER_MATCHING_PREFERENCES_HH

#include <functional>
#include <vector>

#include "matching/disutility.hh"
#include "matching/matching.hh"

namespace cooper {

/**
 * Strict preference lists for a set of agents over a candidate set.
 *
 * For the roommates setting, candidates are the agents themselves
 * (self excluded). For the marriage setting, the candidates of one
 * side are the agents of the other.
 */
class PreferenceProfile
{
  public:
    PreferenceProfile() = default;

    /**
     * @param lists lists[i] is agent i's candidate order, most
     *        preferred first. Lists may cover any subset of candidate
     *        ids but must not repeat entries.
     * @param candidates Total number of candidate ids (rank table
     *        width).
     */
    PreferenceProfile(std::vector<std::vector<AgentId>> lists,
                      std::size_t candidates);

    /**
     * Build from a disutility function: agent i ranks candidate j by
     * increasing disutility(i, j), excluding self when
     * `exclude_self`. Ties break toward the lower candidate id.
     *
     * @param agents Number of agents.
     * @param candidates Number of candidates.
     * @param disutility d(agent, candidate).
     * @param exclude_self Omit candidate == agent (roommates setting).
     */
    static PreferenceProfile
    fromDisutility(std::size_t agents, std::size_t candidates,
                   const std::function<double(AgentId, AgentId)> &disutility,
                   bool exclude_self);

    /**
     * Build from a memoized disutility table: same ordering contract
     * as fromDisutility, but the sort keys come straight from the
     * table's rows instead of per-comparison oracle calls.
     */
    static PreferenceProfile fromTable(const DisutilityTable &table,
                                       bool exclude_self);

    std::size_t agents() const { return lists_.size(); }
    std::size_t candidates() const { return candidates_; }

    /** Agent i's full order, most preferred first. */
    const std::vector<AgentId> &list(AgentId i) const { return lists_[i]; }

    /**
     * Rank of candidate j for agent i (0 = most preferred); fatal if
     * j is not on i's list.
     */
    std::size_t rankOf(AgentId i, AgentId j) const;

    /** True when candidate j appears on agent i's list. */
    bool hasCandidate(AgentId i, AgentId j) const;

    /** True when agent i strictly prefers a over b (both listed). */
    bool prefers(AgentId i, AgentId a, AgentId b) const;

  private:
    std::vector<std::vector<AgentId>> lists_;

    /**
     * Rank table in one flat row-major block (agent i's row starts at
     * i * candidates_): the matching inner loops hammer rankOf, and a
     * single contiguous allocation keeps those lookups on hot cache
     * lines instead of chasing per-agent vectors.
     */
    std::vector<std::size_t> ranks_;
    std::size_t candidates_ = 0;
};

} // namespace cooper

#endif // COOPER_MATCHING_PREFERENCES_HH
