#include "matching.hh"

#include "util/error.hh"

namespace cooper {

void
Matching::pair(AgentId a, AgentId b)
{
    fatalIf(a >= partner_.size() || b >= partner_.size(),
            "Matching::pair: agent out of range");
    fatalIf(a == b, "Matching::pair: cannot pair agent ", a,
            " with itself");
    unpair(a);
    unpair(b);
    partner_[a] = b;
    partner_[b] = a;
}

void
Matching::unpair(AgentId a)
{
    fatalIf(a >= partner_.size(), "Matching::unpair: agent out of range");
    const AgentId b = partner_[a];
    if (b != kUnmatched) {
        partner_[a] = kUnmatched;
        partner_[b] = kUnmatched;
    }
}

std::size_t
Matching::pairCount() const
{
    std::size_t matched = 0;
    for (AgentId p : partner_)
        if (p != kUnmatched)
            ++matched;
    return matched / 2;
}

bool
Matching::isPerfect() const
{
    for (AgentId p : partner_)
        if (p == kUnmatched)
            return false;
    return true;
}

std::vector<std::pair<AgentId, AgentId>>
Matching::pairs() const
{
    std::vector<std::pair<AgentId, AgentId>> out;
    out.reserve(partner_.size() / 2);
    for (AgentId i = 0; i < partner_.size(); ++i)
        if (partner_[i] != kUnmatched && i < partner_[i])
            out.emplace_back(i, partner_[i]);
    return out;
}

bool
Matching::consistent() const
{
    for (AgentId i = 0; i < partner_.size(); ++i) {
        const AgentId p = partner_[i];
        if (p == kUnmatched)
            continue;
        if (p == i || p >= partner_.size() || partner_[p] != i)
            return false;
    }
    return true;
}

} // namespace cooper
