/**
 * @file
 * Incrementally maintained blocking-pair bounds.
 *
 * The per-epoch blocking scan is O(n^2) even when almost nothing
 * changed: a quiet online epoch departs nobody, admits nobody, and
 * refreshes a handful of profile cells, yet the repairing policy
 * re-derives every pair's status from scratch. BlockingBounds keeps
 * the full pair-status bitset alive across epochs and refreshes only
 * the rows that could have changed:
 *
 *  - callers report the agents whose disutility rows churned (for the
 *    online driver: agents whose believed-penalty row was re-predicted
 *    or whose slot now holds a different job);
 *  - partner churn is detected internally against a matching snapshot.
 *
 * Every query (count / first / pairs) answers exactly what the
 * blocking.hh scans would: the same pairs, in the same scan order,
 * with bit-identical gains. A pair's status depends only on its two
 * endpoints' current penalties and the two directed disutilities
 * between them, so pairs with both endpoints clean are provably
 * unchanged and a quiet epoch costs O(changed agents * n) instead of
 * O(n^2).
 */

#ifndef COOPER_MATCHING_BLOCKING_INCREMENTAL_HH
#define COOPER_MATCHING_BLOCKING_INCREMENTAL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "matching/blocking.hh"
#include "matching/disutility.hh"
#include "matching/matching.hh"

namespace cooper {

/**
 * Pair-status bitset over a matching plus a disutility table,
 * refreshable in O(dirty agents * n).
 */
class BlockingBounds
{
  public:
    BlockingBounds() = default;

    /** A rebuild or update has run and the bitset is coherent. */
    bool ready() const { return ready_; }

    /** Drop all state; the next update() falls back to a rebuild. */
    void invalidate() { ready_ = false; }

    /** Agents covered (0 until the first rebuild). */
    std::size_t agents() const { return n_; }

    /**
     * Full O(n^2) rescan of every pair against `matching` and
     * `table`. The fill parallelizes over first-agent rows exactly
     * like the blocking.hh scans; the resulting bitset is identical
     * for any thread count.
     */
    void rebuild(const Matching &matching, const DisutilityTable &table,
                 double alpha, std::size_t threads = 1);

    /**
     * Incremental refresh after a batch of changes.
     *
     * `dirty_rows` lists the agents whose table rows changed since
     * the last rebuild/update (duplicates are fine); agents whose
     * partner differs from the snapshot are picked up internally.
     * Every pair touching a dirty agent is re-derived; pairs between
     * two clean agents are untouched — sound because a pair's status
     * reads nothing else. Falls back to rebuild() when not ready or
     * when the agent count or alpha changed.
     */
    void update(const Matching &matching, const DisutilityTable &table,
                double alpha, const std::vector<AgentId> &dirty_rows,
                std::size_t threads = 1);

    /** Blocking-pair count; equals countBlockingPairs. */
    std::size_t count() const { return count_; }

    /**
     * First blocking pair in scan order (ascending i, then ascending
     * j > i), gains recomputed from `table`; equals firstBlockingPair.
     */
    std::optional<BlockingPair>
    first(const DisutilityTable &table) const;

    /** All blocking pairs in scan order; equals findBlockingPairs. */
    std::vector<BlockingPair>
    pairs(const DisutilityTable &table) const;

    /** Agents re-derived by the last rebuild()/update(); 0 after a
     *  no-change update — the quiet-epoch fast path. */
    std::size_t lastRescanned() const { return lastRescanned_; }

  private:
    /** Word index of pair (i, j), i < j, in the row-aligned bitset. */
    std::size_t pairWord(AgentId i, AgentId j) const
    {
        return i * words_ + j / 64;
    }

    bool testPair(AgentId i, AgentId j) const
    {
        return (bits_[pairWord(i, j)] >> (j % 64) & 1) != 0;
    }

    /** Recompute one row's statuses into `row` (words_ words, zeroed
     *  by the caller): bit j set iff (i, j) blocks, for ALL j != i. */
    void deriveRow(const Matching &matching,
                   const DisutilityTable &table, AgentId i,
                   std::uint64_t *row) const;

    bool ready_ = false;
    std::size_t n_ = 0;
    std::size_t words_ = 0;
    double alpha_ = 0.0;
    std::size_t count_ = 0;
    std::size_t lastRescanned_ = 0;

    /** Partner snapshot at the last refresh (kUnmatched when alone). */
    std::vector<AgentId> partner_;

    /** d(i, partner_[i]), or 0 when unmatched — the scans'
     *  currentPenalties, maintained instead of recomputed. */
    std::vector<double> current_;

    /** Row-aligned status bits: pair (i, j), i < j, lives at word
     *  i * words_ + j/64, bit j%64. Bits at or below the diagonal
     *  stay zero. */
    std::vector<std::uint64_t> bits_;
};

} // namespace cooper

#endif // COOPER_MATCHING_BLOCKING_INCREMENTAL_HH
