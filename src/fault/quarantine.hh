/**
 * @file
 * Quarantine of jobs whose probes fail repeatedly.
 *
 * A job whose arrival probes keep timing out cannot be characterized,
 * so pairing it would be guesswork; the driver parks it here instead
 * of admitting it. Quarantined jobs sit out a configured number of
 * epochs, then re-enter through the normal admission queue for a
 * fresh probe round. A job that keeps failing across too many rounds
 * is abandoned (counted, never silently dropped) so a permanently
 * unreachable node cannot wedge the service.
 *
 * The table is plain deterministic state: entries are keyed by uid in
 * a sorted map, releases happen in ascending uid order, and the whole
 * table round-trips through the online checkpoint (io/serialize).
 */

#ifndef COOPER_FAULT_QUARANTINE_HH
#define COOPER_FAULT_QUARANTINE_HH

#include <cstdint>
#include <map>
#include <vector>

namespace cooper {

/** One quarantined job. */
struct QuarantinedJob
{
    std::uint64_t uid = 0;
    std::uint64_t type = 0; //!< catalog type, needed to re-admit

    /** Probe cells that failed in the round that quarantined it. */
    std::uint64_t failures = 0;

    /** First epoch the job may be re-admitted. */
    std::uint64_t untilEpoch = 0;

    /** Quarantine rounds served so far (for the abandonment cap). */
    std::uint64_t rounds = 0;

    friend bool
    operator==(const QuarantinedJob &a, const QuarantinedJob &b)
    {
        return a.uid == b.uid && a.type == b.type &&
               a.failures == b.failures &&
               a.untilEpoch == b.untilEpoch && a.rounds == b.rounds;
    }
};

/**
 * Deterministic quarantine table.
 */
class QuarantineTable
{
  public:
    std::size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    bool
    contains(std::uint64_t uid) const
    {
        return jobs_.count(uid) != 0;
    }

    /** Park a job; replaces any previous entry for the uid. */
    void add(const QuarantinedJob &job);

    /** Remove a quarantined job (it departed); false when absent. */
    bool remove(std::uint64_t uid);

    /** Pop every job whose untilEpoch <= `epoch`, ascending by uid. */
    std::vector<QuarantinedJob> releaseDue(std::uint64_t epoch);

    /** All entries, ascending by uid (checkpointing). */
    std::vector<QuarantinedJob> snapshot() const;

    /** Replace the table's contents (checkpoint restore). */
    void restore(const std::vector<QuarantinedJob> &jobs);

  private:
    std::map<std::uint64_t, QuarantinedJob> jobs_;
};

} // namespace cooper

#endif // COOPER_FAULT_QUARANTINE_HH
