#include "quarantine.hh"

namespace cooper {

void
QuarantineTable::add(const QuarantinedJob &job)
{
    jobs_[job.uid] = job;
}

bool
QuarantineTable::remove(std::uint64_t uid)
{
    return jobs_.erase(uid) != 0;
}

std::vector<QuarantinedJob>
QuarantineTable::releaseDue(std::uint64_t epoch)
{
    std::vector<QuarantinedJob> due;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
        if (it->second.untilEpoch <= epoch) {
            due.push_back(it->second);
            it = jobs_.erase(it);
        } else {
            ++it;
        }
    }
    return due; // map order: ascending uid
}

std::vector<QuarantinedJob>
QuarantineTable::snapshot() const
{
    std::vector<QuarantinedJob> out;
    out.reserve(jobs_.size());
    for (const auto &[uid, job] : jobs_)
        out.push_back(job);
    return out;
}

void
QuarantineTable::restore(const std::vector<QuarantinedJob> &jobs)
{
    jobs_.clear();
    for (const QuarantinedJob &job : jobs)
        jobs_[job.uid] = job;
}

} // namespace cooper
