/**
 * @file
 * Fault-injection rates for the online service.
 *
 * Kept dependency-free (like online_config.hh) so configuration
 * plumbing can carry a FaultSpec without pulling the fault plane into
 * every translation unit. The spec describes *how often* each fault
 * class fires; FaultPlan (plan.hh) turns it into a deterministic
 * per-epoch schedule.
 */

#ifndef COOPER_FAULT_FAULT_CONFIG_HH
#define COOPER_FAULT_FAULT_CONFIG_HH

#include <cstdint>

namespace cooper {

/**
 * Rates of the injectable fault classes.
 *
 * Every decision derived from a FaultSpec flows through
 * Rng::substream keyed by (fault class, epoch, uid, attempt), so the
 * schedule is a pure function of (spec, keys): no generator state is
 * carried across epochs, which keeps fault injection compatible with
 * checkpoint/restore and bit-identical at any thread count.
 */
struct FaultSpec
{
    /** Substream root for every rate-based draw. */
    std::uint64_t seed = 0;

    /** Probability one probe measurement attempt times out (the
     *  driver retries with exponential backoff, see OnlineConfig). */
    double probeTimeoutRate = 0.0;

    /** Probability a completed measurement is lost before it reaches
     *  the profile database (no retry: the coordinator never learns
     *  the measurement happened). */
    double measurementDropRate = 0.0;

    /** Probability a measurement lands corrupted. */
    double measurementCorruptRate = 0.0;

    /** Std. deviation of the additive corruption applied to a
     *  corrupted measurement. */
    double corruptSigma = 0.1;

    /** Probability some node crashes at an epoch boundary, evicting
     *  both jobs of the colocated pair running on it. */
    double crashRatePerEpoch = 0.0;

    /** Probability a scheduled checkpoint write fails. */
    double checkpointFailRate = 0.0;

    /** True when any rate is positive. */
    bool
    anyRate() const
    {
        return probeTimeoutRate > 0.0 || measurementDropRate > 0.0 ||
               measurementCorruptRate > 0.0 || crashRatePerEpoch > 0.0 ||
               checkpointFailRate > 0.0;
    }
};

} // namespace cooper

#endif // COOPER_FAULT_FAULT_CONFIG_HH
