#include "plan.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "obs/json.hh"
#include "util/error.hh"

namespace cooper {

namespace {

// Substream class tags; mirrors the driver's kPolicyStream /
// kProbeStream discipline so fault draws never collide with decision
// draws even under a shared root seed.
constexpr std::uint64_t kTimeoutClass = 0xF1;
constexpr std::uint64_t kDropClass = 0xF2;
constexpr std::uint64_t kCorruptClass = 0xF3;
constexpr std::uint64_t kCrashClass = 0xF4;
constexpr std::uint64_t kCheckpointClass = 0xF5;

constexpr const char *kScriptSchema = "cooper.faultplan.v1";

bool
scriptOrder(const ScriptedFault &a, const ScriptedFault &b)
{
    return std::tie(a.epoch, a.kind, a.uid) <
           std::tie(b.epoch, b.kind, b.uid);
}

void
checkRate(double rate, const char *name)
{
    fatalIf(rate < 0.0 || rate > 1.0, "FaultPlan: ", name, " rate ",
            rate, " outside [0, 1]");
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ProbeTimeout:
        return "probe_timeout";
      case FaultKind::MeasurementDrop:
        return "measurement_drop";
      case FaultKind::MeasurementCorrupt:
        return "measurement_corrupt";
      case FaultKind::NodeCrash:
        return "crash";
      case FaultKind::CheckpointFail:
        return "checkpoint_fail";
    }
    panic("faultKindName: unknown kind");
}

FaultKind
faultKindFromName(const std::string &name)
{
    for (FaultKind kind :
         {FaultKind::ProbeTimeout, FaultKind::MeasurementDrop,
          FaultKind::MeasurementCorrupt, FaultKind::NodeCrash,
          FaultKind::CheckpointFail})
        if (name == faultKindName(kind))
            return kind;
    fatal("FaultPlan: unknown fault kind \"", name, "\"");
}

FaultPlan::FaultPlan(FaultSpec spec, std::vector<ScriptedFault> script)
    : spec_(spec), script_(std::move(script))
{
    checkRate(spec_.probeTimeoutRate, "probe_timeout");
    checkRate(spec_.measurementDropRate, "measurement_drop");
    checkRate(spec_.measurementCorruptRate, "measurement_corrupt");
    checkRate(spec_.crashRatePerEpoch, "crash_per_epoch");
    checkRate(spec_.checkpointFailRate, "checkpoint_fail");
    fatalIf(spec_.corruptSigma < 0.0,
            "FaultPlan: negative corrupt_sigma");
    std::stable_sort(script_.begin(), script_.end(), scriptOrder);
}

Rng
FaultPlan::draw(std::uint64_t klass, std::uint64_t epoch,
                std::uint64_t uid, std::uint64_t attempt) const
{
    return Rng(spec_.seed)
        .substream(klass)
        .substream(epoch)
        .substream(uid)
        .substream(attempt);
}

std::vector<const ScriptedFault *>
FaultPlan::scripted(std::uint64_t epoch, FaultKind kind) const
{
    std::vector<const ScriptedFault *> out;
    // script_ is sorted by (epoch, kind, uid): binary-search the
    // epoch run, then filter by kind.
    const auto lo = std::lower_bound(
        script_.begin(), script_.end(), epoch,
        [](const ScriptedFault &s, std::uint64_t e) {
            return s.epoch < e;
        });
    for (auto it = lo; it != script_.end() && it->epoch == epoch; ++it)
        if (it->kind == kind)
            out.push_back(&*it);
    return out;
}

bool
FaultPlan::probeTimesOut(std::uint64_t epoch, std::uint64_t uid,
                         std::uint64_t attempt) const
{
    for (const ScriptedFault *s :
         scripted(epoch, FaultKind::ProbeTimeout))
        if (!s->hasUid || s->uid == uid)
            return true;
    if (spec_.probeTimeoutRate <= 0.0)
        return false;
    Rng rng = draw(kTimeoutClass, epoch, uid, attempt);
    return rng.bernoulli(spec_.probeTimeoutRate);
}

bool
FaultPlan::measurementDrops(std::uint64_t epoch, std::uint64_t uid,
                            std::uint64_t seq) const
{
    for (const ScriptedFault *s :
         scripted(epoch, FaultKind::MeasurementDrop))
        if (!s->hasUid || s->uid == uid)
            return true;
    if (spec_.measurementDropRate <= 0.0)
        return false;
    Rng rng = draw(kDropClass, epoch, uid, seq);
    return rng.bernoulli(spec_.measurementDropRate);
}

double
FaultPlan::corruption(std::uint64_t epoch, std::uint64_t uid,
                      std::uint64_t seq) const
{
    for (const ScriptedFault *s :
         scripted(epoch, FaultKind::MeasurementCorrupt))
        if (!s->hasUid || s->uid == uid)
            return s->magnitude;
    if (spec_.measurementCorruptRate <= 0.0)
        return 0.0;
    Rng rng = draw(kCorruptClass, epoch, uid, seq);
    if (!rng.bernoulli(spec_.measurementCorruptRate))
        return 0.0;
    return rng.gaussian(0.0, spec_.corruptSigma);
}

std::vector<std::uint64_t>
FaultPlan::crashVictims(std::uint64_t epoch,
                        const std::vector<std::uint64_t> &live) const
{
    std::vector<std::uint64_t> victims;
    if (live.empty())
        return victims;
    for (const ScriptedFault *s : scripted(epoch, FaultKind::NodeCrash)) {
        if (s->hasUid) {
            if (std::find(live.begin(), live.end(), s->uid) !=
                live.end())
                victims.push_back(s->uid);
        } else {
            // Untargeted scripted crash: deterministic victim drawn
            // from the crash substream, like a rate-based firing.
            Rng rng = draw(kCrashClass, epoch, /*uid=*/0, /*attempt=*/1);
            victims.push_back(live[rng.uniformInt(live.size())]);
        }
    }
    if (spec_.crashRatePerEpoch > 0.0) {
        Rng rng = draw(kCrashClass, epoch, /*uid=*/0, /*attempt=*/0);
        if (rng.bernoulli(spec_.crashRatePerEpoch))
            victims.push_back(live[rng.uniformInt(live.size())]);
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    return victims;
}

bool
FaultPlan::checkpointFails(std::uint64_t epoch) const
{
    if (!scripted(epoch, FaultKind::CheckpointFail).empty())
        return true;
    if (spec_.checkpointFailRate <= 0.0)
        return false;
    Rng rng = draw(kCheckpointClass, epoch, /*uid=*/0, /*attempt=*/0);
    return rng.bernoulli(spec_.checkpointFailRate);
}

namespace {

double
rateField(const JsonValue &rates, const char *name, double fallback)
{
    const JsonValue *value = rates.find(name);
    if (value == nullptr)
        return fallback;
    fatalIf(!value->isNumber(), "FaultPlan: rates.", name,
            " is not a number");
    return value->number;
}

} // namespace

FaultPlan
parseFaultPlan(const std::string &text, std::uint64_t default_seed)
{
    const JsonValue root = parseJson(text);
    fatalIf(!root.isObject(), "FaultPlan: script is not a JSON object");

    const JsonValue *schema = root.find("schema");
    fatalIf(schema == nullptr || !schema->isString() ||
                schema->text != kScriptSchema,
            "FaultPlan: script schema must be \"", kScriptSchema, "\"");

    FaultSpec spec;
    spec.seed = default_seed;
    if (const JsonValue *seed = root.find("seed")) {
        fatalIf(!seed->isNumber() || seed->number < 0.0,
                "FaultPlan: seed is not a non-negative number");
        spec.seed = static_cast<std::uint64_t>(seed->number);
    }
    if (const JsonValue *rates = root.find("rates")) {
        fatalIf(!rates->isObject(), "FaultPlan: rates is not an object");
        spec.probeTimeoutRate = rateField(*rates, "probe_timeout", 0.0);
        spec.measurementDropRate =
            rateField(*rates, "measurement_drop", 0.0);
        spec.measurementCorruptRate =
            rateField(*rates, "measurement_corrupt", 0.0);
        spec.corruptSigma =
            rateField(*rates, "corrupt_sigma", spec.corruptSigma);
        spec.crashRatePerEpoch =
            rateField(*rates, "crash_per_epoch", 0.0);
        spec.checkpointFailRate =
            rateField(*rates, "checkpoint_fail", 0.0);
    }

    std::vector<ScriptedFault> script;
    if (const JsonValue *events = root.find("events")) {
        fatalIf(!events->isArray(),
                "FaultPlan: events is not an array");
        for (std::size_t i = 0; i < events->items.size(); ++i) {
            const JsonValue &event = events->items[i];
            fatalIf(!event.isObject(), "FaultPlan: events[", i,
                    "] is not an object");
            ScriptedFault fault;
            const JsonValue *epoch = event.find("epoch");
            fatalIf(epoch == nullptr || !epoch->isNumber() ||
                        epoch->number < 0.0,
                    "FaultPlan: events[", i,
                    "].epoch is not a non-negative number");
            fault.epoch = static_cast<std::uint64_t>(epoch->number);
            const JsonValue *kind = event.find("kind");
            fatalIf(kind == nullptr || !kind->isString(),
                    "FaultPlan: events[", i, "].kind is not a string");
            fault.kind = faultKindFromName(kind->text);
            if (const JsonValue *uid = event.find("uid")) {
                fatalIf(!uid->isNumber() || uid->number < 0.0,
                        "FaultPlan: events[", i,
                        "].uid is not a non-negative number");
                fault.hasUid = true;
                fault.uid = static_cast<std::uint64_t>(uid->number);
            }
            if (const JsonValue *mag = event.find("magnitude")) {
                fatalIf(!mag->isNumber(), "FaultPlan: events[", i,
                        "].magnitude is not a number");
                fault.magnitude = mag->number;
            }
            script.push_back(fault);
        }
    }
    return FaultPlan(spec, std::move(script));
}

FaultPlan
loadFaultPlan(const std::string &path, std::uint64_t default_seed)
{
    std::ifstream in(path);
    fatalIf(!in, "loadFaultPlan: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalIf(in.bad(), "loadFaultPlan: read from '", path, "' failed");
    return parseFaultPlan(buffer.str(), default_seed);
}

} // namespace cooper
