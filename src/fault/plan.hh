/**
 * @file
 * Deterministic fault-injection plan for the online service.
 *
 * A FaultPlan answers "does fault X fire at key K?" for the five
 * injectable fault classes: probe timeouts, dropped measurements,
 * corrupted measurements, node crashes, and checkpoint-write
 * failures. Answers come from two composable sources:
 *
 *  - a rate-based FaultSpec, sampled through Rng::substream keyed by
 *    (fault class, epoch, uid, attempt) — a pure function of the
 *    keys, so the schedule replays exactly across thread counts and
 *    checkpoint/restore splits;
 *  - a scripted event list (optionally loaded from a JSON file, see
 *    readFaultPlan) that forces specific faults at specific epochs,
 *    for tests that need an exact failure at an exact moment.
 *
 * The plan itself is immutable and stateless; all degradation state
 * (retry counters, quarantine, budgets) lives in the OnlineDriver and
 * its checkpoint, where it can round-trip through io/serialize.
 */

#ifndef COOPER_FAULT_PLAN_HH
#define COOPER_FAULT_PLAN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault_config.hh"
#include "util/rng.hh"

namespace cooper {

/** Injectable fault classes. */
enum class FaultKind
{
    ProbeTimeout,     //!< a probe measurement attempt never returns
    MeasurementDrop,  //!< a finished measurement is lost in transit
    MeasurementCorrupt, //!< a measurement lands with an offset
    NodeCrash,        //!< a node dies, evicting its colocated pair
    CheckpointFail,   //!< a scheduled checkpoint write fails
};

/** Stable script name of a fault kind (JSON `kind` field). */
const char *faultKindName(FaultKind kind);

/** Parse a script name; raises FatalError on an unknown name. */
FaultKind faultKindFromName(const std::string &name);

/**
 * One scripted fault: fire `kind` at `epoch`, targeting `uid` where
 * the kind is per-job (timeout/drop/corrupt hit every attempt of that
 * job's probes that epoch; a crash evicts that uid's node). Kinds
 * without a target (checkpoint_fail, untargeted crash) leave
 * `hasUid` false.
 */
struct ScriptedFault
{
    std::uint64_t epoch = 0;
    FaultKind kind = FaultKind::ProbeTimeout;
    bool hasUid = false;
    std::uint64_t uid = 0;

    /** Corruption offset for scripted measurement_corrupt events. */
    double magnitude = 0.0;

    friend bool
    operator==(const ScriptedFault &a, const ScriptedFault &b)
    {
        return a.epoch == b.epoch && a.kind == b.kind &&
               a.hasUid == b.hasUid && a.uid == b.uid &&
               a.magnitude == b.magnitude;
    }
};

/**
 * Immutable, deterministic per-epoch fault schedule.
 */
class FaultPlan
{
  public:
    /** The inert plan: nothing ever fires. */
    FaultPlan() = default;

    /** Rate-based plan, optionally overlaid with scripted events
     *  (script entries are sorted by (epoch, kind, uid) so equal
     *  plans serialize identically). */
    explicit FaultPlan(FaultSpec spec,
                       std::vector<ScriptedFault> script = {});

    /** True when any fault can ever fire. */
    bool enabled() const { return spec_.anyRate() || !script_.empty(); }

    const FaultSpec &spec() const { return spec_; }
    const std::vector<ScriptedFault> &script() const { return script_; }

    /** Does attempt `attempt` of a probe for job `uid` time out? */
    bool probeTimesOut(std::uint64_t epoch, std::uint64_t uid,
                       std::uint64_t attempt) const;

    /** Is measurement `seq` of job `uid`'s probes lost in transit? */
    bool measurementDrops(std::uint64_t epoch, std::uint64_t uid,
                          std::uint64_t seq) const;

    /** Additive corruption applied to measurement `seq` of job
     *  `uid`'s probes; 0.0 when the measurement lands clean. */
    double corruption(std::uint64_t epoch, std::uint64_t uid,
                      std::uint64_t seq) const;

    /**
     * Uids whose node crashes at the boundary of `epoch`, drawn from
     * `live` (ascending uid order). Rate-based crashes pick one
     * victim per firing epoch; scripted crashes name their victim
     * (ignored when not live). The driver evicts each victim's whole
     * pair.
     */
    std::vector<std::uint64_t>
    crashVictims(std::uint64_t epoch,
                 const std::vector<std::uint64_t> &live) const;

    /** Does the checkpoint write scheduled at `epoch` fail? */
    bool checkpointFails(std::uint64_t epoch) const;

    friend bool
    operator==(const FaultPlan &a, const FaultPlan &b)
    {
        const FaultSpec &x = a.spec_, &y = b.spec_;
        return x.seed == y.seed &&
               x.probeTimeoutRate == y.probeTimeoutRate &&
               x.measurementDropRate == y.measurementDropRate &&
               x.measurementCorruptRate == y.measurementCorruptRate &&
               x.corruptSigma == y.corruptSigma &&
               x.crashRatePerEpoch == y.crashRatePerEpoch &&
               x.checkpointFailRate == y.checkpointFailRate &&
               a.script_ == b.script_;
    }

  private:
    /** The substream for one (class, epoch, uid, attempt) key. */
    Rng draw(std::uint64_t klass, std::uint64_t epoch, std::uint64_t uid,
             std::uint64_t attempt) const;

    /** Scripted events of `kind` at `epoch`. */
    std::vector<const ScriptedFault *>
    scripted(std::uint64_t epoch, FaultKind kind) const;

    FaultSpec spec_;
    std::vector<ScriptedFault> script_; //!< sorted by (epoch, kind, uid)
};

/**
 * Parse a fault-plan script (schema "cooper.faultplan.v1"):
 *
 *   { "schema": "cooper.faultplan.v1",
 *     "seed": 7,
 *     "rates": { "probe_timeout": 0.2, "measurement_drop": 0.0,
 *                "measurement_corrupt": 0.0, "corrupt_sigma": 0.1,
 *                "crash_per_epoch": 0.0, "checkpoint_fail": 0.0 },
 *     "events": [ { "epoch": 3, "kind": "crash", "uid": 7 },
 *                 { "epoch": 2, "kind": "probe_timeout", "uid": 5 },
 *                 { "epoch": 4, "kind": "checkpoint_fail" } ] }
 *
 * Everything but "schema" is optional; an absent "seed" falls back to
 * `default_seed` (the driver passes its own seed, so a script that
 * omits the field still replays exactly). Raises FatalError on
 * malformed input, unknown kinds, or rates outside [0, 1].
 */
FaultPlan parseFaultPlan(const std::string &text,
                         std::uint64_t default_seed = 0);

/** File wrapper; raises FatalError on I/O failure. */
FaultPlan loadFaultPlan(const std::string &path,
                        std::uint64_t default_seed = 0);

} // namespace cooper

#endif // COOPER_FAULT_PLAN_HH
