#include "net/frame.hh"

#include <cstring>

#include "util/error.hh"

namespace cooper::net {

namespace {

std::uint16_t
loadU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0]) |
           static_cast<std::uint16_t>(p[1]) << 8;
}

std::uint32_t
loadU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(loadU32(p)) |
           static_cast<std::uint64_t>(loadU32(p + 4)) << 32;
}

} // namespace

bool
validMsgType(std::uint8_t type)
{
    return type >= static_cast<std::uint8_t>(MsgType::Hello) &&
           type <= static_cast<std::uint8_t>(MsgType::Busy);
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloAck: return "HelloAck";
    case MsgType::Event: return "Event";
    case MsgType::Ack: return "Ack";
    case MsgType::EpochComplete: return "EpochComplete";
    case MsgType::ProbeResult: return "ProbeResult";
    case MsgType::Assignment: return "Assignment";
    case MsgType::CheckpointRequest: return "CheckpointRequest";
    case MsgType::CheckpointAck: return "CheckpointAck";
    case MsgType::Finished: return "Finished";
    case MsgType::Summary: return "Summary";
    case MsgType::Error: return "Error";
    case MsgType::Bye: return "Bye";
    case MsgType::Busy: return "Busy";
    }
    return "Unknown";
}

DecodeStatus
tryDecodeFrame(const std::uint8_t *data, std::size_t size,
               FrameView &frame, std::size_t &consumed,
               std::string &error)
{
    if (size < kHeaderSize)
        return DecodeStatus::NeedMore;

    const std::uint32_t magic = loadU32(data);
    if (magic != kMagic) {
        error = formatMessage("bad frame magic 0x", std::hex, magic);
        return DecodeStatus::Bad;
    }
    const std::uint8_t version = data[4];
    if (version != kProtocolVersion) {
        error = formatMessage("unsupported protocol version ",
                              unsigned{version}, " (want ",
                              unsigned{kProtocolVersion}, ")");
        return DecodeStatus::Bad;
    }
    const std::uint8_t type = data[5];
    if (!validMsgType(type)) {
        error = formatMessage("unknown message type ", unsigned{type});
        return DecodeStatus::Bad;
    }
    const std::size_t length = loadU32(data + 8);
    if (length > kMaxFramePayload) {
        error = formatMessage("declared payload of ", length,
                              " bytes exceeds the ", kMaxFramePayload,
                              "-byte frame cap");
        return DecodeStatus::Bad;
    }
    if (size < kHeaderSize + length)
        return DecodeStatus::NeedMore;

    frame.type = static_cast<MsgType>(type);
    frame.flags = loadU16(data + 6);
    frame.payload = data + kHeaderSize;
    frame.size = length;
    consumed = kHeaderSize + length;
    return DecodeStatus::Ok;
}

void
encodeFrame(std::vector<std::uint8_t> &out, MsgType type,
            std::uint16_t flags, const std::uint8_t *payload,
            std::size_t size)
{
    panicIf(size > kMaxFramePayload,
            "encodeFrame: payload exceeds the frame cap");
    const std::size_t base = out.size();
    out.resize(base + kHeaderSize + size);
    std::uint8_t *p = out.data() + base;
    p[0] = static_cast<std::uint8_t>(kMagic);
    p[1] = static_cast<std::uint8_t>(kMagic >> 8);
    p[2] = static_cast<std::uint8_t>(kMagic >> 16);
    p[3] = static_cast<std::uint8_t>(kMagic >> 24);
    p[4] = kProtocolVersion;
    p[5] = static_cast<std::uint8_t>(type);
    p[6] = static_cast<std::uint8_t>(flags);
    p[7] = static_cast<std::uint8_t>(flags >> 8);
    const auto length = static_cast<std::uint32_t>(size);
    p[8] = static_cast<std::uint8_t>(length);
    p[9] = static_cast<std::uint8_t>(length >> 8);
    p[10] = static_cast<std::uint8_t>(length >> 16);
    p[11] = static_cast<std::uint8_t>(length >> 24);
    if (size > 0)
        std::memcpy(p + kHeaderSize, payload, size);
}

void
WireWriter::u16(std::uint16_t v)
{
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void
WireWriter::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
WireWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
WireWriter::str(const std::string &v)
{
    fatalIf(v.size() > kMaxFramePayload,
            "WireWriter: string exceeds the frame cap");
    u32(static_cast<std::uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
}

void
WireReader::need(std::size_t bytes) const
{
    fatalIf(size_ - pos_ < bytes, context_,
            ": truncated payload (need ", bytes, " bytes at offset ",
            pos_, " of ", size_, ")");
}

std::uint8_t
WireReader::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint16_t
WireReader::u16()
{
    need(2);
    const std::uint16_t v = loadU16(data_ + pos_);
    pos_ += 2;
    return v;
}

std::uint32_t
WireReader::u32()
{
    need(4);
    const std::uint32_t v = loadU32(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
WireReader::u64()
{
    need(8);
    const std::uint64_t v = loadU64(data_ + pos_);
    pos_ += 8;
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t length = u32();
    fatalIf(length > kMaxFramePayload, context_,
            ": declared string length ", length,
            " exceeds the frame cap");
    need(length);
    std::string v(reinterpret_cast<const char *>(data_ + pos_),
                  length);
    pos_ += length;
    return v;
}

void
WireReader::done() const
{
    fatalIf(pos_ != size_, context_, ": ", size_ - pos_,
            " trailing payload bytes");
}

void
HelloMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u32(clientId);
    w.u32(protocol);
    w.u32(subscriptions);
    w.u64(runId);
}

HelloMsg
HelloMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Hello");
    HelloMsg msg;
    msg.clientId = r.u32();
    msg.protocol = r.u32();
    msg.subscriptions = r.u32();
    msg.runId = r.u64();
    r.done();
    fatalIf(msg.protocol != kProtocolVersion,
            "Hello: client speaks protocol ", msg.protocol,
            ", server speaks ", unsigned{kProtocolVersion});
    return msg;
}

void
HelloAckMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(seed);
    w.u64(epochTicks);
    w.u64(shards);
    w.u64(catalogTypes);
}

HelloAckMsg
HelloAckMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "HelloAck");
    HelloAckMsg msg;
    msg.seed = r.u64();
    msg.epochTicks = r.u64();
    msg.shards = r.u64();
    msg.catalogTypes = r.u64();
    r.done();
    return msg;
}

void
EventMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(seq);
    w.u64(tick);
    w.u8(kind);
    w.u64(uid);
    w.u32(type);
}

EventMsg
EventMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Event");
    EventMsg msg;
    msg.seq = r.u64();
    msg.tick = r.u64();
    msg.kind = r.u8();
    msg.uid = r.u64();
    msg.type = r.u32();
    r.done();
    fatalIf(msg.kind > 1, "Event: unknown event kind ",
            unsigned{msg.kind});
    return msg;
}

void
AckMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(seq);
    w.u64(epochsCommitted);
}

AckMsg
AckMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Ack");
    AckMsg msg;
    msg.seq = r.u64();
    msg.epochsCommitted = r.u64();
    r.done();
    return msg;
}

void
EpochCompleteMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(epoch);
    w.u64(tick);
    w.u64(population);
    w.u64(admitted);
}

EpochCompleteMsg
EpochCompleteMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "EpochComplete");
    EpochCompleteMsg msg;
    msg.epoch = r.u64();
    msg.tick = r.u64();
    msg.population = r.u64();
    msg.admitted = r.u64();
    r.done();
    return msg;
}

void
ProbeResultMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(epoch);
    w.u64(probes);
    w.u64(retries);
    w.u64(cfFallbacks);
    w.u64(faultsInjected);
}

ProbeResultMsg
ProbeResultMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "ProbeResult");
    ProbeResultMsg msg;
    msg.epoch = r.u64();
    msg.probes = r.u64();
    msg.retries = r.u64();
    msg.cfFallbacks = r.u64();
    msg.faultsInjected = r.u64();
    r.done();
    return msg;
}

void
AssignmentMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(epoch);
    w.u32(static_cast<std::uint32_t>(pairs.size()));
    for (const auto &[a, b] : pairs) {
        w.u64(a);
        w.u64(b);
    }
}

AssignmentMsg
AssignmentMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Assignment");
    AssignmentMsg msg;
    msg.epoch = r.u64();
    const std::uint32_t count = r.u32();
    fatalIf(static_cast<std::size_t>(count) * 16 > r.remaining(),
            "Assignment: declared pair count ", count,
            " exceeds the payload");
    msg.pairs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t a = r.u64();
        const std::uint64_t b = r.u64();
        msg.pairs.emplace_back(a, b);
    }
    r.done();
    return msg;
}

void
CheckpointAckMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(epoch);
    w.u8(ok);
}

CheckpointAckMsg
CheckpointAckMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "CheckpointAck");
    CheckpointAckMsg msg;
    msg.epoch = r.u64();
    msg.ok = r.u8();
    r.done();
    return msg;
}

void
FinishedMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(eventsSent);
}

FinishedMsg
FinishedMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Finished");
    FinishedMsg msg;
    msg.eventsSent = r.u64();
    r.done();
    return msg;
}

void
BusyMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u64(seq);
    w.u32(retryAfterMs);
}

BusyMsg
BusyMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Busy");
    BusyMsg msg;
    msg.seq = r.u64();
    msg.retryAfterMs = r.u32();
    r.done();
    return msg;
}

void
ErrorMsg::encode(std::vector<std::uint8_t> &out) const
{
    WireWriter w(out);
    w.u32(code);
    w.str(message);
}

ErrorMsg
ErrorMsg::decode(const FrameView &frame)
{
    WireReader r(frame.payload, frame.size, "Error");
    ErrorMsg msg;
    msg.code = r.u32();
    msg.message = r.str();
    r.done();
    return msg;
}

} // namespace cooper::net
