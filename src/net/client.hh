/**
 * @file
 * Multi-connection load-generating client for the service plane.
 *
 * Splits a churn trace round-robin across N concurrent connections
 * (event i goes to connection i % N, stamped with seq = i so the
 * server's reorder buffer restores the canonical order), replays it
 * open-loop at a configurable aggregate rate, and measures what the
 * paper's tail-latency discussion asks for: per-message round-trip
 * time (Ack echoes the seq) and per-epoch completion latency (from
 * the last event this connection sent below an epoch's boundary to
 * the server's EpochComplete frame).
 *
 * Wall-clock timing lives entirely on this side of the socket; the
 * server's decisions never see it, so a load-generated run still
 * reproduces the in-process summary byte-for-byte.
 *
 * Against a multi-run server the Hello carries a runId and the client
 * honours Busy flow-control pushback: a refused event goes on a retry
 * queue and is resent after an exponential back-off (new sends pause
 * meanwhile — the server's backlog for this connection is full, so
 * more would only earn more refusals). Finished is declared only once
 * every event is Acked, so a late refusal can never strand an event
 * behind the declaration.
 */

#ifndef COOPER_NET_CLIENT_HH
#define COOPER_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "online/events.hh"

namespace cooper::net {

/** One load run's shape. */
struct LoadGenConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /** Concurrent connections the trace is split across. */
    std::size_t connections = 1;

    /** Aggregate open-loop send rate in events/second across all
     *  connections; 0 = as fast as the sockets accept. */
    double eventsPerSecond = 0.0;

    /** Subscription bits for the Hello frame (see frame.hh). */
    std::uint32_t subscriptions = 0;

    /** Which run in the server's table this replay feeds. */
    std::uint64_t runId = 0;

    /** Initial back-off after a Busy refusal; doubles per refusal up
     *  to the cap, resets on the next Ack. */
    double busyBackoffMs = 1.0;
    double busyBackoffMaxMs = 100.0;
};

/** Client-side latency and throughput measurements. */
struct LoadGenStats
{
    std::size_t eventsSent = 0;
    std::size_t acksReceived = 0;
    std::size_t epochsObserved = 0;

    /** Busy refusals received and the retransmits they caused. */
    std::size_t busyRefusals = 0;
    std::size_t retriesSent = 0;

    /** Wall-clock seconds from first send to summary received. */
    double wallSeconds = 0.0;

    /** eventsSent / wallSeconds. */
    double arrivalsPerSecond = 0.0;

    /** Ack round-trip percentiles, milliseconds (nearest-rank). */
    double rttP50Ms = 0.0;
    double rttP99Ms = 0.0;
    double rttP999Ms = 0.0;

    /** Epoch completion-latency percentiles, milliseconds. */
    double epochP50Ms = 0.0;
    double epochP99Ms = 0.0;
    double epochP999Ms = 0.0;
};

/** What a load run produced. */
struct LoadGenResult
{
    bool ok = false;
    std::string error; //!< set when !ok

    /** The server's summary bytes (identical on every connection;
     *  the run fails if they disagree). */
    std::string summary;

    LoadGenStats stats;
};

/**
 * Replay `trace` against a serving plane and collect the summary.
 * Blocks until the server says Bye (or any connection fails).
 */
LoadGenResult runLoadGen(const ChurnTrace &trace,
                         const LoadGenConfig &config);

} // namespace cooper::net

#endif // COOPER_NET_CLIENT_HH
