/**
 * @file
 * Non-blocking epoll TCP server for the Cooper service plane.
 *
 * One thread, one epoll set, per-connection read/write buffers. The
 * hot path is the batched drain: each EPOLLIN reads until EAGAIN into
 * the connection buffer, decodes every complete frame in a single
 * zero-copy pass (FrameViews point into the buffer; the undecoded
 * tail is compacted once per drain), and responses are coalesced into
 * writev() batches. `ServerConfig::batched = false` selects the
 * deliberately naive baseline — one frame per read, one write() per
 * response — which bench_serve contrasts against the batched path for
 * the syscall-batching speedup phase.
 *
 * One server hosts a table of runs: each run is an independent
 * (trace, seed, config) replay with its own ServicePlane and driver,
 * and a connection binds to one run via the Hello runId. Run
 * lifecycles are isolated — a protocol error, mid-run disconnect, or
 * idle reap kills only the offending run's connections while its
 * neighbors replay on. Flow control bounds each connection's parked
 * out-of-order events (Busy pushback instead of the hard SeqWindow
 * error), and an optional coarse timer wheel reaps idle connections
 * so a stalled tenant cannot wedge the loop.
 *
 * The server owns bytes and connection lifecycle only; ordering,
 * validation, and stepping live in the ServicePlane, which is what
 * keeps every served run byte-identical to its in-process replay.
 */

#ifndef COOPER_NET_SERVER_HH
#define COOPER_NET_SERVER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/service_plane.hh"

namespace cooper::net {

/** Socket-layer knobs; none of them affect the served decisions. */
struct ServerConfig
{
    std::string host = "127.0.0.1";

    /** Listen port; 0 binds an ephemeral port (see port()). */
    std::uint16_t port = 0;

    /** Batched drain + writev coalescing (the optimized path); false
     *  selects the per-message-syscall baseline. */
    bool batched = true;

    /** Read chunk size for the batched drain. */
    std::size_t readChunk = 64 * 1024;

    /** Summary frames are chunked to this payload size. */
    std::size_t summaryChunk = 64 * 1024;

    /** Per-connection bound on parked out-of-order events before the
     *  server answers Busy instead of growing the reorder buffer.
     *  0 disables the soft bound (the hard SeqWindow stays). */
    std::uint64_t maxPendingPerConn = 4096;

    /** Back-off hint carried in Busy frames, milliseconds. */
    std::uint32_t busyRetryHintMs = 1;

    /** Reap connections silent for this long; 0 disables the timer
     *  wheel (a dead peer then only fails via TCP). */
    std::uint32_t idleTimeoutMs = 0;
};

/**
 * Serves a table of runs over one epoll loop: accept clients, route
 * their frames to the run named in their Hello, broadcast epoch
 * outputs per run, and deliver each run's summary once every one of
 * its clients finishes. Linux-only (epoll); constructing on another
 * platform is fatal.
 */
class EpollServer
{
  public:
    /** Binds and listens immediately; fatal on socket errors. Add at
     *  least one run before runUntilServed(). */
    explicit EpollServer(ServerConfig config);

    /** Single-run convenience: binds and registers `plane` as run 0. */
    EpollServer(ServicePlane &plane, ServerConfig config);

    ~EpollServer();

    EpollServer(const EpollServer &) = delete;
    EpollServer &operator=(const EpollServer &) = delete;

    /**
     * Register one run. `runId` is what clients name in their Hello;
     * registering the same id twice is fatal. The plane inherits the
     * server's per-connection flow-control bound.
     */
    void addRun(std::uint64_t runId, ServicePlane &plane);

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return port_; }

    /**
     * Serve until every run resolves: true when all runs completed
     * and every client got its summary; false when any run died to a
     * protocol error, client abort, or idle reap (see lastError() and
     * the per-run accessors — surviving runs still serve to
     * completion).
     */
    bool runUntilServed();

    /** Why runUntilServed() returned false (first failed run). */
    const std::string &lastError() const { return lastError_; }

    /** Did this run complete and deliver its summary? Fatal on an
     *  unknown run id. */
    bool runServed(std::uint64_t runId) const;

    /** The failed run's error ("" when it served). */
    const std::string &runError(std::uint64_t runId) const;

  private:
    /** One replay's lifecycle inside the run table. */
    struct Run
    {
        std::uint64_t id = 0;
        ServicePlane *plane = nullptr;
        std::size_t handshakedEver = 0;
        std::size_t finishedClients = 0;
        bool summaryQueued = false;
        bool aborted = false;
        std::string error;

        bool resolved() const { return summaryQueued || aborted; }
    };

    struct Conn
    {
        int fd = -1;
        std::uint64_t serial = 0; //!< flow-control source token
        std::vector<std::uint8_t> rbuf;
        std::deque<std::vector<std::uint8_t>> wqueue;
        std::size_t wfront = 0; //!< bytes of wqueue.front() written
        bool wantWrite = false; //!< EPOLLOUT currently armed
        bool handshaked = false;
        std::uint64_t runId = 0; //!< valid once handshaked
        std::uint32_t subscriptions = 0;
        bool finishedSent = false; //!< client sent Finished
        bool closeAfterFlush = false;
        std::uint64_t lastActivityMs = 0;
    };

    void acceptReady();
    void readReady(Conn &conn);
    bool drainBatched(Conn &conn);
    bool drainPerMessage(Conn &conn);

    /** Decode and dispatch every complete frame in conn.rbuf; at most
     *  one frame when `single`. Returns false when the connection
     *  must close. */
    bool processBuffered(Conn &conn, bool single);
    bool handleFrame(Conn &conn, const FrameView &frame);

    void queueFrame(Conn &conn, MsgType type, std::uint16_t flags,
                    const std::vector<std::uint8_t> &payload);
    void broadcastOutputs(Run &run);
    void sendError(Conn &conn, const PlaneOutcome &outcome);
    void finishRunIfReady(Run &run);
    void queueSummaryAndBye(Run &run);

    void flushWrites(Conn &conn);
    void updateWriteInterest(Conn &conn);
    void closeConn(int fd);

    /** The run a handshaked connection feeds (never null then). */
    Run *connRun(const Conn &conn);

    /** Kill one run: record the error; the main-loop sweep closes
     *  its connections. The rest of the table keeps serving. */
    void abortRun(Run &run, const std::string &why);
    bool allRunsResolved() const;
    bool onAbandonedEof(Conn &conn);

    /** Milliseconds since server construction (timer-wheel clock). */
    std::uint64_t nowMs() const;
    void scheduleIdleCheck(int fd, std::uint64_t deadlineMs);
    void reapIdle(std::uint64_t now);

    ServerConfig config_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    std::uint16_t port_ = 0;

    std::map<std::uint64_t, Run> runs_;
    std::map<int, std::unique_ptr<Conn>> conns_;
    std::uint64_t connSerial_ = 0;
    bool started_ = false;
    std::string lastError_;

    /** Coarse timer wheel: slots hold candidate fds; entries are
     *  lazily revalidated against lastActivityMs when their slot
     *  fires, so activity never has to reschedule anything. */
    std::chrono::steady_clock::time_point epoch_;
    std::uint64_t wheelGranularityMs_ = 0;
    std::uint64_t wheelNextSlot_ = 0; //!< next absolute slot to fire
    std::vector<std::vector<int>> wheel_;
};

} // namespace cooper::net

#endif // COOPER_NET_SERVER_HH
