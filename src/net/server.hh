/**
 * @file
 * Non-blocking epoll TCP server for the Cooper service plane.
 *
 * One thread, one epoll set, per-connection read/write buffers. The
 * hot path is the batched drain: each EPOLLIN reads until EAGAIN into
 * the connection buffer, decodes every complete frame in a single
 * zero-copy pass (FrameViews point into the buffer; the undecoded
 * tail is compacted once per drain), and responses are coalesced into
 * writev() batches. `ServerConfig::batched = false` selects the
 * deliberately naive baseline — one frame per read, one write() per
 * response — which bench_serve contrasts against the batched path for
 * the syscall-batching speedup phase.
 *
 * The server owns bytes and connection lifecycle only; ordering,
 * validation, and stepping live in the ServicePlane, which is what
 * keeps a served run byte-identical to the in-process replay.
 */

#ifndef COOPER_NET_SERVER_HH
#define COOPER_NET_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/service_plane.hh"

namespace cooper::net {

/** Socket-layer knobs; none of them affect the served decisions. */
struct ServerConfig
{
    std::string host = "127.0.0.1";

    /** Listen port; 0 binds an ephemeral port (see port()). */
    std::uint16_t port = 0;

    /** Batched drain + writev coalescing (the optimized path); false
     *  selects the per-message-syscall baseline. */
    bool batched = true;

    /** Read chunk size for the batched drain. */
    std::size_t readChunk = 64 * 1024;

    /** Summary frames are chunked to this payload size. */
    std::size_t summaryChunk = 64 * 1024;
};

/**
 * Serves exactly one run: accept clients, feed their frames to the
 * plane, broadcast epoch outputs, and after every client finishes,
 * deliver the summary and close. Linux-only (epoll); constructing on
 * another platform is fatal.
 */
class EpollServer
{
  public:
    /** Binds and listens immediately; fatal on socket errors. */
    EpollServer(ServicePlane &plane, ServerConfig config);
    ~EpollServer();

    EpollServer(const EpollServer &) = delete;
    EpollServer &operator=(const EpollServer &) = delete;

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return port_; }

    /**
     * Serve until the run completes and every client got the summary
     * (true), or until a protocol error / client abort kills the run
     * (false; see lastError()).
     */
    bool runUntilServed();

    /** Why runUntilServed() returned false. */
    const std::string &lastError() const { return lastError_; }

  private:
    struct Conn
    {
        int fd = -1;
        std::vector<std::uint8_t> rbuf;
        std::deque<std::vector<std::uint8_t>> wqueue;
        std::size_t wfront = 0; //!< bytes of wqueue.front() written
        bool wantWrite = false; //!< EPOLLOUT currently armed
        bool handshaked = false;
        std::uint32_t subscriptions = 0;
        bool finishedSent = false; //!< client sent Finished
        bool closeAfterFlush = false;
    };

    void acceptReady();
    void readReady(Conn &conn);
    bool drainBatched(Conn &conn);
    bool drainPerMessage(Conn &conn);

    /** Decode and dispatch every complete frame in conn.rbuf; at most
     *  one frame when `single`. Returns false when the connection
     *  must close. */
    bool processBuffered(Conn &conn, bool single);
    bool handleFrame(Conn &conn, const FrameView &frame);

    void queueFrame(Conn &conn, MsgType type, std::uint16_t flags,
                    const std::vector<std::uint8_t> &payload);
    void broadcastOutputs();
    void sendError(Conn &conn, const PlaneOutcome &outcome);
    void finishRunIfReady();
    void queueSummaryAndBye();

    void flushWrites(Conn &conn);
    void updateWriteInterest(Conn &conn);
    void closeConn(int fd);
    void abortRun(const std::string &why);

    ServicePlane *plane_;
    ServerConfig config_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    std::uint16_t port_ = 0;

    std::map<int, std::unique_ptr<Conn>> conns_;
    std::size_t handshakedEver_ = 0;
    std::size_t finishedClients_ = 0;
    bool summaryQueued_ = false;
    bool aborted_ = false;
    std::string lastError_;
};

} // namespace cooper::net

#endif // COOPER_NET_SERVER_HH
