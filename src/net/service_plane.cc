#include "net/service_plane.hh"

#include <algorithm>
#include <sstream>

#include "obs/obs.hh"
#include "util/error.hh"

namespace cooper::net {

namespace {

void
countMetric(const char *name)
{
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter(name).add(1);
}

} // namespace

ServicePlane::ServicePlane(const Catalog &catalog, OnlineDriver &driver)
    : catalog_(&catalog), flat_(&driver)
{
    flatReport_ = flat_->beginReport();
}

ServicePlane::ServicePlane(const Catalog &catalog, ShardedDriver &driver)
    : catalog_(&catalog), sharded_(&driver)
{
    shardedReport_ = sharded_->beginReport();
}

void
ServicePlane::setCheckpointHook(CheckpointHook hook)
{
    checkpointHook_ = std::move(hook);
}

HelloAckMsg
ServicePlane::helloAck() const
{
    HelloAckMsg ack;
    if (flat_) {
        ack.seed = flat_->seed();
        ack.epochTicks = flat_->config().execution.online.epochTicks;
        ack.shards = 0;
    } else {
        ack.seed = sharded_->seed();
        ack.epochTicks =
            sharded_->config().execution.online.epochTicks;
        ack.shards = sharded_->shards();
    }
    ack.catalogTypes = catalog_->size();
    return ack;
}

std::uint64_t
ServicePlane::epochsCommitted() const
{
    return flat_ ? flat_->epoch() : sharded_->epoch();
}

Tick
ServicePlane::driverClock() const
{
    return flat_ ? flat_->clockTick() : sharded_->clockTick();
}

Tick
ServicePlane::epochBoundary() const
{
    const std::uint64_t ticks =
        flat_ ? flat_->config().execution.online.epochTicks
              : sharded_->config().execution.online.epochTicks;
    return (epochsCommitted() + 1) * ticks;
}

bool
ServicePlane::driverIdle() const
{
    return flat_ ? flat_->idle(queue_) : sharded_->idle(queue_);
}

void
ServicePlane::setFlowControl(std::uint64_t maxPendingPerSource)
{
    maxPendingPerSource_ = maxPendingPerSource;
}

PlaneOutcome
ServicePlane::ingest(const EventMsg &event)
{
    // Unattributed ingest: one anonymous source. With the default
    // unlimited bound this can never come back Busy, so the outcome
    // alone describes the verdict.
    return ingest(event, 0).outcome;
}

IngestResult
ServicePlane::ingest(const EventMsg &event, std::uint64_t source)
{
    if (poisoned_)
        return {IngestStatus::Failed, poison_};
    if (finished_) {
        poison_ = PlaneOutcome::fail(
            PlaneError::AfterFinish,
            formatMessage("event seq ", event.seq,
                          " arrived after the run completed"));
        poisoned_ = true;
        return {IngestStatus::Failed, poison_};
    }
    if (event.seq < nextSeq_ || pending_.count(event.seq) != 0) {
        poison_ = PlaneOutcome::fail(
            PlaneError::DuplicateSeq,
            formatMessage("duplicate or replayed event seq ",
                          event.seq, " (frontier ", nextSeq_, ")"));
        poisoned_ = true;
        return {IngestStatus::Failed, poison_};
    }
    if (event.seq - nextSeq_ >= kMaxPendingEvents) {
        poison_ = PlaneOutcome::fail(
            PlaneError::SeqWindow,
            formatMessage("event seq ", event.seq, " is ",
                          event.seq - nextSeq_,
                          " ahead of the frontier (window ",
                          kMaxPendingEvents, ")"));
        poisoned_ = true;
        return {IngestStatus::Failed, poison_};
    }
    if (event.seq != nextSeq_ && maxPendingPerSource_ > 0) {
        // Soft refusal: the frontier event itself is always taken
        // (progress), but a source at its parked bound must wait for
        // the gap to fill before adding more out-of-order events.
        const auto it = parkedBySource_.find(source);
        if (it != parkedBySource_.end() &&
            it->second >= maxPendingPerSource_) {
            countMetric("net.events_busy");
            return {IngestStatus::Busy, {}};
        }
    }

    pending_.emplace(event.seq, Parked{event, source});
    ++parkedBySource_[source];
    while (!pending_.empty() &&
           pending_.begin()->first == nextSeq_) {
        const Parked next = pending_.begin()->second;
        pending_.erase(pending_.begin());
        auto parked = parkedBySource_.find(next.source);
        if (parked != parkedBySource_.end() && --parked->second == 0)
            parkedBySource_.erase(parked);
        const PlaneOutcome outcome = deliver(next.event);
        if (!outcome.ok) {
            poison_ = outcome;
            poisoned_ = true;
            return {IngestStatus::Failed, poison_};
        }
    }
    stepReadyEpochs();
    countMetric("net.events_ingested");
    return {IngestStatus::Accepted, {}};
}

PlaneOutcome
ServicePlane::deliver(const EventMsg &event)
{
    if (anyDelivered_ && event.tick < lastDeliveredTick_)
        return PlaneOutcome::fail(
            PlaneError::TickRegression,
            formatMessage("event seq ", event.seq, " tick ",
                          event.tick, " regresses below tick ",
                          lastDeliveredTick_));
    if (event.tick < driverClock())
        return PlaneOutcome::fail(
            PlaneError::BeforeClock,
            formatMessage("event seq ", event.seq, " tick ",
                          event.tick,
                          " predates the service clock (tick ",
                          driverClock(), ")"));

    ChurnEvent churn;
    churn.tick = event.tick;
    churn.uid = event.uid;
    if (event.kind == 0) {
        if (event.type >= catalog_->size())
            return PlaneOutcome::fail(
                PlaneError::BadType,
                formatMessage("arrival uid ", event.uid,
                              " names job type ", event.type,
                              " outside the catalog (",
                              catalog_->size(), " types)"));
        if (!seenUids_.insert(event.uid).second)
            return PlaneOutcome::fail(
                PlaneError::UidReuse,
                formatMessage("arrival reuses uid ", event.uid));
        activeUids_.insert(event.uid);
        churn.kind = EventKind::Arrival;
        churn.type = event.type;
    } else {
        if (activeUids_.erase(event.uid) == 0)
            return PlaneOutcome::fail(
                PlaneError::UnknownUid,
                formatMessage("departure of unknown or already-"
                              "departed uid ",
                              event.uid));
        churn.kind = EventKind::Departure;
    }

    queue_.push(churn);
    lastDeliveredTick_ = event.tick;
    anyDelivered_ = true;
    ++nextSeq_;
    ++eventsIngested_;
    return {};
}

void
ServicePlane::stepReadyEpochs()
{
    // An epoch may commit once its boundary is at or behind the
    // delivered frontier: every undelivered event has tick >=
    // lastDeliveredTick_ >= boundary, so none of them belongs to it.
    // The frontier event itself (tick >= boundary) is still queued,
    // so run() would have stepped here too — never an extra epoch.
    while (anyDelivered_ && epochBoundary() <= lastDeliveredTick_)
        stepOne();
}

void
ServicePlane::stepOne()
{
    const TraceSpan span("net.plane_epoch", "net");
    if (flat_)
        flat_->stepEpoch(queue_, flatReport_);
    else
        sharded_->stepEpoch(queue_, shardedReport_);
    outputs_.push_back(makeOutput());
    countMetric("net.epochs_served");
}

EpochOutput
ServicePlane::makeOutput() const
{
    EpochOutput out;
    if (flat_) {
        const OnlineEpochStats &stats = flatReport_.epochs.back();
        out.complete = {stats.epoch, stats.tick, stats.population,
                        stats.admitted};
        out.probes = {stats.epoch, stats.probes, stats.retries,
                      stats.cfFallbacks, stats.faultsInjected};
        out.assignment.epoch = stats.epoch;
        out.assignment.pairs = flat_->pairsSnapshot();
    } else {
        const ShardEpochStats &stats = shardedReport_.epochs.back();
        out.complete.epoch = stats.epoch;
        out.complete.tick = stats.tick;
        out.complete.population = stats.population;
        out.probes.epoch = stats.epoch;
        for (std::size_t s = 0; s < sharded_->shards(); ++s) {
            const OnlineEpochStats &shard =
                shardedReport_.perShard[s].epochs.back();
            out.complete.admitted += shard.admitted;
            out.probes.probes += shard.probes;
            out.probes.retries += shard.retries;
            out.probes.cfFallbacks += shard.cfFallbacks;
            out.probes.faultsInjected += shard.faultsInjected;
            const auto pairs = sharded_->shard(s).pairsSnapshot();
            out.assignment.pairs.insert(out.assignment.pairs.end(),
                                        pairs.begin(), pairs.end());
        }
        out.assignment.epoch = stats.epoch;
        std::sort(out.assignment.pairs.begin(),
                  out.assignment.pairs.end());
    }
    return out;
}

void
ServicePlane::declareFinished(std::uint64_t eventsSent)
{
    declaredTotal_ += eventsSent;
}

PlaneOutcome
ServicePlane::completeRun()
{
    if (poisoned_)
        return poison_;
    if (finished_)
        return {};
    if (!pending_.empty()) {
        poison_ = PlaneOutcome::fail(
            PlaneError::MissingEvents,
            formatMessage("run finished with ", pending_.size(),
                          " events stranded past a gap at seq ",
                          nextSeq_));
        poisoned_ = true;
        return poison_;
    }
    if (declaredTotal_ != eventsIngested_) {
        poison_ = PlaneOutcome::fail(
            PlaneError::CountMismatch,
            formatMessage("clients declared ", declaredTotal_,
                          " events but ", eventsIngested_,
                          " were ingested"));
        poisoned_ = true;
        return poison_;
    }

    // The tail of run(): epochs advance until the queue, admission
    // backlog, and quarantine are all drained.
    while (!driverIdle())
        stepOne();

    std::ostringstream os;
    if (flat_) {
        flat_->finalizeReport(flatReport_);
        writeOnlineSummary(os, flatReport_);
    } else {
        sharded_->finalizeReport(shardedReport_);
        writeShardedSummary(os, shardedReport_);
    }
    summary_ = os.str();
    finished_ = true;
    return {};
}

CheckpointAckMsg
ServicePlane::checkpointNow()
{
    CheckpointAckMsg ack;
    ack.epoch = epochsCommitted();
    ack.ok = checkpointHook_ && checkpointHook_() ? 1 : 0;
    return ack;
}

std::vector<EpochOutput>
ServicePlane::takeOutputs()
{
    std::vector<EpochOutput> out;
    out.swap(outputs_);
    return out;
}

const std::string &
ServicePlane::summary() const
{
    fatalIf(!finished_,
            "ServicePlane: summary requested before the run completed");
    return summary_;
}

} // namespace cooper::net
