#include "net/server.hh"

#include "obs/obs.hh"
#include "util/error.hh"

#ifdef __linux__

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace cooper::net {

namespace {

/** Iovec spans coalesced per writev() call. */
constexpr std::size_t kMaxIov = 64;

/** Per-drain syscall/byte tallies, folded into obs counters once. */
struct DrainTally
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t framesIn = 0;
    std::uint64_t framesOut = 0;

    void
    fold() const
    {
        MetricsRegistry *metrics = obsMetrics();
        if (metrics == nullptr)
            return;
        if (reads)
            metrics->counter("net.read_syscalls").add(reads);
        if (writes)
            metrics->counter("net.write_syscalls").add(writes);
        if (bytesIn)
            metrics->counter("net.bytes_in").add(bytesIn);
        if (bytesOut)
            metrics->counter("net.bytes_out").add(bytesOut);
        if (framesIn)
            metrics->counter("net.frames_in").add(framesIn);
        if (framesOut)
            metrics->counter("net.frames_out").add(framesOut);
    }
};

thread_local DrainTally tally;

void
countMetric(const char *name)
{
    if (MetricsRegistry *metrics = obsMetrics())
        metrics->counter(name).add(1);
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

EpollServer::EpollServer(ServerConfig config)
    : config_(std::move(config))
{
    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    fatalIf(listenFd_ < 0, "EpollServer: socket: ",
            std::strerror(errno));

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    fatalIf(::inet_pton(AF_INET, config_.host.c_str(),
                        &addr.sin_addr) != 1,
            "EpollServer: bad listen address '", config_.host, "'");
    fatalIf(::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0,
            "EpollServer: bind ", config_.host, ":", config_.port,
            ": ", std::strerror(errno));
    fatalIf(::listen(listenFd_, 64) != 0, "EpollServer: listen: ",
            std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    fatalIf(::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0,
            "EpollServer: getsockname: ", std::strerror(errno));
    port_ = ntohs(bound.sin_port);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    fatalIf(epollFd_ < 0, "EpollServer: epoll_create1: ",
            std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    fatalIf(::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) != 0,
            "EpollServer: epoll_ctl(listen): ", std::strerror(errno));

    epoch_ = std::chrono::steady_clock::now();
    if (config_.idleTimeoutMs > 0) {
        // Coarse wheel: fire every quarter timeout; enough slots to
        // park any deadline inside one full timeout plus slack.
        wheelGranularityMs_ = std::max<std::uint64_t>(
            1, config_.idleTimeoutMs / 4);
        const std::size_t slots =
            config_.idleTimeoutMs / wheelGranularityMs_ + 3;
        wheel_.assign(slots, {});
    }
}

EpollServer::EpollServer(ServicePlane &plane, ServerConfig config)
    : EpollServer(std::move(config))
{
    addRun(0, plane);
}

EpollServer::~EpollServer()
{
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    conns_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
EpollServer::addRun(std::uint64_t runId, ServicePlane &plane)
{
    fatalIf(started_,
            "EpollServer: addRun(", runId, ") after serving started");
    Run run;
    run.id = runId;
    run.plane = &plane;
    fatalIf(!runs_.emplace(runId, std::move(run)).second,
            "EpollServer: duplicate run id ", runId);
    plane.setFlowControl(config_.maxPendingPerConn);
}

std::uint64_t
EpollServer::nowMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

EpollServer::Run *
EpollServer::connRun(const Conn &conn)
{
    const auto it = runs_.find(conn.runId);
    fatalIf(it == runs_.end(),
            "EpollServer: connection bound to unknown run ",
            conn.runId);
    return &it->second;
}

bool
EpollServer::allRunsResolved() const
{
    for (const auto &[id, run] : runs_)
        if (!run.resolved())
            return false;
    return true;
}

bool
EpollServer::runServed(std::uint64_t runId) const
{
    const auto it = runs_.find(runId);
    fatalIf(it == runs_.end(), "EpollServer: unknown run id ", runId);
    return it->second.summaryQueued && !it->second.aborted;
}

const std::string &
EpollServer::runError(std::uint64_t runId) const
{
    const auto it = runs_.find(runId);
    fatalIf(it == runs_.end(), "EpollServer: unknown run id ", runId);
    return it->second.error;
}

bool
EpollServer::runUntilServed()
{
    fatalIf(runs_.empty(),
            "EpollServer: runUntilServed with no runs registered");
    started_ = true;
    epoll_event events[64];
    while (true) {
        // Sweep connections of runs that died since the last pass
        // (aborts are recorded mid-drain but closed here, where no
        // Conn is borrowed). Once every run is resolved, strangers
        // can no longer join anything — drop them too.
        const bool resolved = allRunsResolved();
        std::vector<int> dead;
        for (const auto &[fd, conn] : conns_) {
            if (!conn->handshaked) {
                if (resolved)
                    dead.push_back(fd);
                continue;
            }
            if (connRun(*conn)->aborted)
                dead.push_back(fd);
        }
        for (const int fd : dead)
            closeConn(fd);
        if (resolved && conns_.empty()) {
            for (const auto &[id, run] : runs_)
                if (run.aborted)
                    return false;
            return true;
        }

        const int timeout =
            config_.idleTimeoutMs > 0
                ? static_cast<int>(wheelGranularityMs_)
                : -1;
        const int n = ::epoll_wait(epollFd_, events, 64, timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // The loop itself is broken; no run can be served.
            const std::string why = formatMessage(
                "epoll_wait: ", std::strerror(errno));
            for (auto &[id, run] : runs_)
                abortRun(run, why);
            continue;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            const auto it = conns_.find(fd);
            if (it == conns_.end())
                continue; // closed by an earlier event this batch
            Conn &conn = *it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                readReady(conn);
                continue;
            }
            if (events[i].events & EPOLLIN)
                readReady(conn);
            if (conns_.count(fd) != 0 &&
                (events[i].events & EPOLLOUT)) {
                flushWrites(conn);
                if (conns_.count(fd) != 0)
                    updateWriteInterest(conn);
            }
        }
        if (config_.idleTimeoutMs > 0)
            reapIdle(nowMs());
        tally.fold();
        tally = DrainTally{};
    }
}

void
EpollServer::acceptReady()
{
    while (true) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            return;
        }
        if (allRunsResolved()) {
            ::close(fd); // every run is over; no late joiners
            continue;
        }
        setNoDelay(fd);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->serial = ++connSerial_;
        conn->lastActivityMs = nowMs();
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        if (config_.idleTimeoutMs > 0)
            scheduleIdleCheck(
                fd, conn->lastActivityMs + config_.idleTimeoutMs);
        conns_.emplace(fd, std::move(conn));
        if (MetricsRegistry *metrics = obsMetrics())
            metrics->counter("net.accepts").add(1);
    }
}

void
EpollServer::scheduleIdleCheck(int fd, std::uint64_t deadlineMs)
{
    // +1 so the slot fires at-or-after the deadline; clamp into the
    // unfired region (a deadline in an already-swept slot is checked
    // on the very next tick).
    std::uint64_t slot = deadlineMs / wheelGranularityMs_ + 1;
    if (slot < wheelNextSlot_)
        slot = wheelNextSlot_;
    wheel_[slot % wheel_.size()].push_back(fd);
}

void
EpollServer::reapIdle(std::uint64_t now)
{
    const std::uint64_t current = now / wheelGranularityMs_;
    while (wheelNextSlot_ <= current) {
        std::vector<int> due;
        due.swap(wheel_[wheelNextSlot_ % wheel_.size()]);
        ++wheelNextSlot_;
        for (const int fd : due) {
            const auto it = conns_.find(fd);
            if (it == conns_.end())
                continue; // already closed; stale wheel entry
            Conn &conn = *it->second;
            const std::uint64_t deadline =
                conn.lastActivityMs + config_.idleTimeoutMs;
            if (deadline > now) {
                scheduleIdleCheck(fd, deadline);
                continue;
            }
            countMetric("net.idle_reaped");
            if (conn.handshaked && !conn.finishedSent) {
                Run *run = connRun(conn);
                if (!run->resolved())
                    abortRun(*run,
                             formatMessage(
                                 "run ", run->id,
                                 ": connection idle past ",
                                 config_.idleTimeoutMs,
                                 " ms before Finished"));
            }
            closeConn(fd);
        }
    }
}

bool
EpollServer::onAbandonedEof(Conn &conn)
{
    if (!conn.handshaked || conn.finishedSent)
        return false;
    Run *run = connRun(conn);
    if (run->resolved())
        return false;
    abortRun(*run, formatMessage(
                       "run ", run->id,
                       ": client disconnected mid-run before "
                       "Finished"));
    return true;
}

void
EpollServer::readReady(Conn &conn)
{
    const int fd = conn.fd;
    if (config_.idleTimeoutMs > 0)
        conn.lastActivityMs = nowMs();
    const bool alive = config_.batched ? drainBatched(conn)
                                       : drainPerMessage(conn);
    if (!alive || conns_.count(fd) == 0)
        return; // connection already closed
    flushWrites(conn);
    const auto it = conns_.find(fd);
    if (it != conns_.end())
        updateWriteInterest(*it->second);
}

bool
EpollServer::drainBatched(Conn &conn)
{
    const TraceSpan span("net.drain", "net");
    bool eof = false;
    while (true) {
        const std::size_t base = conn.rbuf.size();
        conn.rbuf.resize(base + config_.readChunk);
        const ssize_t r = ::read(conn.fd, conn.rbuf.data() + base,
                                 config_.readChunk);
        if (r > 0) {
            conn.rbuf.resize(base + static_cast<std::size_t>(r));
            ++tally.reads;
            tally.bytesIn += static_cast<std::uint64_t>(r);
            continue;
        }
        conn.rbuf.resize(base);
        if (r == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        eof = true; // hard socket error: treat as a disconnect
        break;
    }

    if (!processBuffered(conn, false))
        return false;

    if (eof) {
        const int fd = conn.fd;
        if (!conn.rbuf.empty()) {
            if (MetricsRegistry *metrics = obsMetrics())
                metrics->counter("net.dirty_disconnects").add(1);
        }
        onAbandonedEof(conn);
        closeConn(fd);
        return false;
    }
    return true;
}

bool
EpollServer::drainPerMessage(Conn &conn)
{
    // The deliberately naive baseline: one recv per header/payload
    // step, at most one frame processed per wakeup, one write() per
    // queued response. Level-triggered epoll re-arms for the rest.
    while (true) {
        std::size_t need = kHeaderSize;
        if (conn.rbuf.size() >= kHeaderSize) {
            const std::uint32_t length =
                static_cast<std::uint32_t>(conn.rbuf[8]) |
                static_cast<std::uint32_t>(conn.rbuf[9]) << 8 |
                static_cast<std::uint32_t>(conn.rbuf[10]) << 16 |
                static_cast<std::uint32_t>(conn.rbuf[11]) << 24;
            if (length > kMaxFramePayload)
                return processBuffered(conn, true); // reject via codec
            need = kHeaderSize + length;
        }
        if (conn.rbuf.size() >= need)
            return processBuffered(conn, true);

        const std::size_t base = conn.rbuf.size();
        conn.rbuf.resize(need);
        const ssize_t r =
            ::read(conn.fd, conn.rbuf.data() + base, need - base);
        conn.rbuf.resize(base +
                         (r > 0 ? static_cast<std::size_t>(r) : 0));
        if (r > 0) {
            ++tally.reads;
            tally.bytesIn += static_cast<std::uint64_t>(r);
            continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (r < 0 && errno == EINTR)
            continue;
        const int fd = conn.fd;
        if (!conn.rbuf.empty()) {
            if (MetricsRegistry *metrics = obsMetrics())
                metrics->counter("net.dirty_disconnects").add(1);
        }
        onAbandonedEof(conn);
        closeConn(fd);
        return false;
    }
}

bool
EpollServer::processBuffered(Conn &conn, bool single)
{
    const int fd = conn.fd;
    std::size_t offset = 0;
    bool keep = true;
    while (keep) {
        FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        const DecodeStatus status = tryDecodeFrame(
            conn.rbuf.data() + offset, conn.rbuf.size() - offset,
            frame, consumed, error);
        if (status == DecodeStatus::NeedMore)
            break;
        if (status == DecodeStatus::Bad) {
            PlaneOutcome outcome = PlaneOutcome::fail(
                PlaneError::None, "malformed frame: " + error);
            sendError(conn, outcome);
            if (conn.handshaked)
                abortRun(*connRun(conn), outcome.message);
            keep = false;
            break;
        }
        offset += consumed;
        ++tally.framesIn;
        keep = handleFrame(conn, frame);
        if (conns_.count(fd) == 0)
            return false; // closed underneath us (e.g. after Bye)
        if (single)
            break;
    }
    // One compaction per drain pass, after the batch decode.
    if (offset > 0)
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() +
                            static_cast<std::ptrdiff_t>(offset));
    if (keep)
        return true;
    if (conn.wqueue.empty()) {
        closeConn(fd);
        return false;
    }
    conn.closeAfterFlush = true;
    flushWrites(conn);
    const auto it = conns_.find(fd);
    if (it != conns_.end())
        updateWriteInterest(*it->second);
    return false;
}

bool
EpollServer::handleFrame(Conn &conn, const FrameView &frame)
{
    const int fd = conn.fd;
    try {
        if (!conn.handshaked && frame.type != MsgType::Hello) {
            sendError(conn,
                      PlaneOutcome::fail(
                          PlaneError::None,
                          formatMessage(msgTypeName(frame.type),
                                        " before Hello")));
            return false;
        }
        if (conn.handshaked && connRun(conn)->aborted) {
            // The run died earlier in this drain batch; the sweep
            // has not closed this sibling yet.
            sendError(conn,
                      PlaneOutcome::fail(
                          PlaneError::None,
                          formatMessage("run ", conn.runId,
                                        " was aborted")));
            return false;
        }
        switch (frame.type) {
        case MsgType::Hello: {
            if (conn.handshaked) {
                sendError(conn, PlaneOutcome::fail(
                                    PlaneError::None,
                                    "duplicate Hello"));
                return false;
            }
            const HelloMsg hello = HelloMsg::decode(frame);
            const auto it = runs_.find(hello.runId);
            if (it == runs_.end()) {
                sendError(conn,
                          PlaneOutcome::fail(
                              PlaneError::None,
                              formatMessage(
                                  "Hello names unknown run ",
                                  hello.runId)));
                return false;
            }
            Run &run = it->second;
            if (run.resolved()) {
                sendError(conn,
                          PlaneOutcome::fail(
                              PlaneError::None,
                              formatMessage(
                                  "run ", run.id,
                                  run.aborted ? " was aborted"
                                              : " already completed")));
                return false;
            }
            conn.handshaked = true;
            conn.runId = run.id;
            conn.subscriptions = hello.subscriptions;
            ++run.handshakedEver;
            std::vector<std::uint8_t> payload;
            run.plane->helloAck().encode(payload);
            queueFrame(conn, MsgType::HelloAck, 0, payload);
            return true;
        }
        case MsgType::Event: {
            const EventMsg event = EventMsg::decode(frame);
            Run *run = connRun(conn);
            const IngestResult result =
                run->plane->ingest(event, conn.serial);
            if (result.status == IngestStatus::Busy) {
                BusyMsg busy{event.seq, config_.busyRetryHintMs};
                std::vector<std::uint8_t> payload;
                busy.encode(payload);
                queueFrame(conn, MsgType::Busy, 0, payload);
                countMetric("net.busy_sent");
                return true;
            }
            if (result.status == IngestStatus::Failed) {
                sendError(conn, result.outcome);
                abortRun(*run, result.outcome.message);
                return false;
            }
            AckMsg ack{event.seq, run->plane->epochsCommitted()};
            std::vector<std::uint8_t> payload;
            ack.encode(payload);
            queueFrame(conn, MsgType::Ack, 0, payload);
            broadcastOutputs(*run);
            return true;
        }
        case MsgType::CheckpointRequest: {
            std::vector<std::uint8_t> payload;
            connRun(conn)->plane->checkpointNow().encode(payload);
            queueFrame(conn, MsgType::CheckpointAck, 0, payload);
            return true;
        }
        case MsgType::Finished: {
            const FinishedMsg finished = FinishedMsg::decode(frame);
            if (!conn.finishedSent) {
                conn.finishedSent = true;
                Run *run = connRun(conn);
                ++run->finishedClients;
                run->plane->declareFinished(finished.eventsSent);
                finishRunIfReady(*run);
            }
            return conns_.count(fd) != 0;
        }
        default:
            sendError(conn,
                      PlaneOutcome::fail(
                          PlaneError::None,
                          formatMessage("unexpected ",
                                        msgTypeName(frame.type),
                                        " frame from a client")));
            if (conn.handshaked)
                abortRun(*connRun(conn),
                         "unexpected frame type from a client");
            return false;
        }
    } catch (const FatalError &err) {
        // Hostile payload: the codec refused it. Kill the connection,
        // and its run with it when the peer was a participant.
        const bool participant = conn.handshaked;
        sendError(conn, PlaneOutcome::fail(PlaneError::None,
                                           err.what()));
        if (participant)
            abortRun(*connRun(conn), err.what());
        return false;
    }
}

void
EpollServer::queueFrame(Conn &conn, MsgType type, std::uint16_t flags,
                        const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> buf;
    encodeFrame(buf, type, flags, payload.data(), payload.size());
    conn.wqueue.push_back(std::move(buf));
    ++tally.framesOut;
}

void
EpollServer::broadcastOutputs(Run &run)
{
    const std::vector<EpochOutput> outputs =
        run.plane->takeOutputs();
    if (outputs.empty())
        return;
    for (const EpochOutput &out : outputs) {
        std::vector<std::uint8_t> complete;
        out.complete.encode(complete);
        std::vector<std::uint8_t> probes;
        out.probes.encode(probes);
        std::vector<std::uint8_t> assignment;
        out.assignment.encode(assignment);
        for (auto &[fd, conn] : conns_) {
            if (!conn->handshaked || conn->runId != run.id)
                continue;
            queueFrame(*conn, MsgType::EpochComplete, 0, complete);
            if (conn->subscriptions & kSubscribeProbes)
                queueFrame(*conn, MsgType::ProbeResult, 0, probes);
            if (conn->subscriptions & kSubscribeAssignments)
                queueFrame(*conn, MsgType::Assignment, 0, assignment);
        }
    }
}

void
EpollServer::sendError(Conn &conn, const PlaneOutcome &outcome)
{
    ErrorMsg msg;
    msg.code = static_cast<std::uint32_t>(outcome.code);
    msg.message = outcome.message;
    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    queueFrame(conn, MsgType::Error, 0, payload);
    flushWrites(conn);
}

void
EpollServer::finishRunIfReady(Run &run)
{
    if (run.resolved() || run.finishedClients == 0 ||
        run.finishedClients < run.handshakedEver)
        return;
    const PlaneOutcome outcome = run.plane->completeRun();
    if (!outcome.ok) {
        std::vector<int> fds;
        fds.reserve(conns_.size());
        for (const auto &[fd, conn] : conns_)
            if (conn->handshaked && conn->runId == run.id)
                fds.push_back(fd);
        for (const int fd : fds) {
            const auto it = conns_.find(fd);
            if (it != conns_.end())
                sendError(*it->second, outcome);
        }
        abortRun(run, outcome.message);
        return;
    }
    broadcastOutputs(run);
    queueSummaryAndBye(run);
}

void
EpollServer::queueSummaryAndBye(Run &run)
{
    const std::string &summary = run.plane->summary();
    for (auto &[fd, conn] : conns_) {
        if (!conn->handshaked || conn->runId != run.id)
            continue;
        std::size_t offset = 0;
        do {
            const std::size_t chunk = std::min(
                config_.summaryChunk, summary.size() - offset);
            const bool last = offset + chunk >= summary.size();
            std::vector<std::uint8_t> buf;
            encodeFrame(buf, MsgType::Summary,
                        last ? kFlagLastChunk : 0,
                        reinterpret_cast<const std::uint8_t *>(
                            summary.data() + offset),
                        chunk);
            conn->wqueue.push_back(std::move(buf));
            ++tally.framesOut;
            offset += chunk;
        } while (offset < summary.size());
        queueFrame(*conn, MsgType::Bye, 0, {});
        conn->closeAfterFlush = true;
    }
    run.summaryQueued = true;
    countMetric("net.runs_served");
    // Flush everything we can now; EPOLLOUT covers the rest.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto &[fd, conn] : conns_)
        if (conn->handshaked && conn->runId == run.id)
            fds.push_back(fd);
    for (const int fd : fds) {
        const auto it = conns_.find(fd);
        if (it == conns_.end())
            continue;
        flushWrites(*it->second);
        if (conns_.count(fd) != 0)
            updateWriteInterest(*it->second);
    }
}

void
EpollServer::flushWrites(Conn &conn)
{
    while (!conn.wqueue.empty()) {
        ssize_t written = 0;
        if (config_.batched) {
            // Coalesce queued frames into one writev.
            iovec iov[kMaxIov];
            std::size_t niov = 0;
            std::size_t front = conn.wfront;
            for (const auto &buf : conn.wqueue) {
                if (niov == kMaxIov)
                    break;
                iov[niov].iov_base =
                    const_cast<std::uint8_t *>(buf.data()) + front;
                iov[niov].iov_len = buf.size() - front;
                ++niov;
                front = 0;
            }
            written = ::writev(conn.fd, iov,
                               static_cast<int>(niov));
        } else {
            const auto &buf = conn.wqueue.front();
            written = ::write(conn.fd, buf.data() + conn.wfront,
                              buf.size() - conn.wfront);
        }
        if (written < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                conn.wantWrite = true;
                return;
            }
            if (errno == EINTR)
                continue;
            closeConn(conn.fd); // peer is gone; drop the backlog
            return;
        }
        ++tally.writes;
        tally.bytesOut += static_cast<std::uint64_t>(written);
        std::size_t left = static_cast<std::size_t>(written);
        while (left > 0) {
            auto &buf = conn.wqueue.front();
            const std::size_t remain = buf.size() - conn.wfront;
            if (left >= remain) {
                left -= remain;
                conn.wfront = 0;
                conn.wqueue.pop_front();
            } else {
                conn.wfront += left;
                left = 0;
            }
        }
    }
    conn.wantWrite = false;
    if (conn.closeAfterFlush)
        closeConn(conn.fd);
}

void
EpollServer::updateWriteInterest(Conn &conn)
{
    const bool want = !conn.wqueue.empty();
    epoll_event ev{};
    ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.wantWrite = want;
}

void
EpollServer::closeConn(int fd)
{
    const auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
}

void
EpollServer::abortRun(Run &run, const std::string &why)
{
    if (run.resolved())
        return;
    run.aborted = true;
    run.error = why;
    if (lastError_.empty())
        lastError_ = why;
    countMetric("net.runs_aborted");
    // Connections are closed by the main-loop sweep — never here,
    // where a Conn may be borrowed by the drain path.
}

} // namespace cooper::net

#else // !__linux__

namespace cooper::net {

EpollServer::EpollServer(ServerConfig config)
    : config_(std::move(config))
{
    fatal("EpollServer: the service plane requires Linux epoll");
}

EpollServer::EpollServer(ServicePlane &plane, ServerConfig config)
    : EpollServer(std::move(config))
{
    addRun(0, plane);
}

EpollServer::~EpollServer() = default;

void EpollServer::addRun(std::uint64_t, ServicePlane &) {}

bool
EpollServer::runUntilServed()
{
    return false;
}

bool EpollServer::runServed(std::uint64_t) const { return false; }
const std::string &
EpollServer::runError(std::uint64_t) const
{
    return lastError_;
}
void EpollServer::acceptReady() {}
void EpollServer::readReady(Conn &) {}
bool EpollServer::drainBatched(Conn &) { return false; }
bool EpollServer::drainPerMessage(Conn &) { return false; }
bool EpollServer::processBuffered(Conn &, bool) { return false; }
bool EpollServer::handleFrame(Conn &, const FrameView &)
{
    return false;
}
void EpollServer::queueFrame(Conn &, MsgType, std::uint16_t,
                             const std::vector<std::uint8_t> &)
{}
void EpollServer::broadcastOutputs(Run &) {}
void EpollServer::sendError(Conn &, const PlaneOutcome &) {}
void EpollServer::finishRunIfReady(Run &) {}
void EpollServer::queueSummaryAndBye(Run &) {}
void EpollServer::flushWrites(Conn &) {}
void EpollServer::updateWriteInterest(Conn &) {}
void EpollServer::closeConn(int) {}
EpollServer::Run *EpollServer::connRun(const Conn &)
{
    return nullptr;
}
void EpollServer::abortRun(Run &, const std::string &) {}
bool EpollServer::allRunsResolved() const { return false; }
bool EpollServer::onAbandonedEof(Conn &) { return false; }
std::uint64_t EpollServer::nowMs() const { return 0; }
void EpollServer::scheduleIdleCheck(int, std::uint64_t) {}
void EpollServer::reapIdle(std::uint64_t) {}

} // namespace cooper::net

#endif // __linux__
