#include "net/client.hh"

#include "net/frame.hh"
#include "util/error.hh"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace cooper::net {

#ifdef __linux__

namespace {

using Clock = std::chrono::steady_clock;

/** Frames coalesced per client-side send when unpaced. */
constexpr std::size_t kSendBatch = 64;

/** Stop encoding ahead once this much is waiting on the socket. */
constexpr std::size_t kSendHighWater = 1u << 20;

/** Poll timeout guard so a dead server fails a run instead of
 *  hanging it. */
constexpr int kIdlePollMs = 60 * 1000;

double
toMs(Clock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

/** Nearest-rank percentile of an unsorted sample set. */
double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p / 100.0 * static_cast<double>(samples.size());
    std::size_t index = static_cast<std::size_t>(std::ceil(rank));
    if (index > 0)
        --index;
    if (index >= samples.size())
        index = samples.size() - 1;
    return samples[index];
}

/** One connection's share of the replay and its measurements. */
struct Worker
{
    std::size_t id = 0;
    const LoadGenConfig *config = nullptr;

    /** (global seq, event) pairs owned by this connection, in seq
     *  order (so ticks are non-decreasing). */
    std::vector<std::pair<std::uint64_t, ChurnEvent>> events;

    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;

    std::size_t nextSend = 0; //!< next events[] index to encode
    std::vector<Clock::time_point> sendTimes;
    std::size_t epochPtr = 0; //!< two-pointer for epoch latency
    bool finishedQueued = false;

    /** Busy-refused local indices awaiting retransmit (seq order). */
    std::deque<std::size_t> retryQueue;
    Clock::time_point retryAt{};
    double backoffMs = 0.0; //!< current back-off; 0 = none pending
    std::size_t busyRefusals = 0;
    std::size_t retriesSent = 0;

    Clock::time_point start;
    Clock::time_point lastDone;

    std::vector<double> rttMs;
    std::vector<double> epochMs;
    std::size_t acks = 0;
    std::size_t epochs = 0;
    std::string summary;
    bool byeSeen = false;
    std::string error;

    bool
    fail(std::string why)
    {
        error = std::move(why);
        return false;
    }

    bool connect();
    bool handshake();
    bool pump();
    bool handle(const FrameView &frame);
    void encodeEvent(std::size_t local);
    void queueDueEvents(Clock::time_point now);
    bool flushSends();
    int pollTimeoutMs(Clock::time_point now) const;
};

void
Worker::encodeEvent(std::size_t local)
{
    const auto &[seq, event] = events[local];
    EventMsg msg;
    msg.seq = seq;
    msg.tick = event.tick;
    msg.kind = event.kind == EventKind::Arrival ? 0 : 1;
    msg.uid = event.uid;
    msg.type = event.type;
    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    encodeFrame(wbuf, MsgType::Event, 0, payload.data(),
                payload.size());
}

bool
Worker::connect()
{
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return fail(formatMessage("socket: ", std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config->port);
    if (::inet_pton(AF_INET, config->host.c_str(), &addr.sin_addr) !=
        1)
        return fail(formatMessage("bad host '", config->host, "'"));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return fail(formatMessage("connect ", config->host, ":",
                                  config->port, ": ",
                                  std::strerror(errno)));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

bool
Worker::handshake()
{
    HelloMsg hello;
    hello.clientId = static_cast<std::uint32_t>(id);
    hello.subscriptions = config->subscriptions;
    hello.runId = config->runId;
    std::vector<std::uint8_t> payload;
    hello.encode(payload);
    std::vector<std::uint8_t> frame;
    encodeFrame(frame, MsgType::Hello, 0, payload.data(),
                payload.size());
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t w =
            ::write(fd, frame.data() + sent, frame.size() - sent);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return fail(formatMessage("Hello write: ",
                                      std::strerror(errno)));
        }
        sent += static_cast<std::size_t>(w);
    }

    // Block (with a deadline) until the HelloAck lands.
    while (true) {
        FrameView view;
        std::size_t consumed = 0;
        std::string decodeError;
        const DecodeStatus status =
            tryDecodeFrame(rbuf.data(), rbuf.size(), view, consumed,
                           decodeError);
        if (status == DecodeStatus::Bad)
            return fail("handshake: " + decodeError);
        if (status == DecodeStatus::Ok) {
            if (view.type == MsgType::Error) {
                const ErrorMsg msg = ErrorMsg::decode(view);
                return fail("server error: " + msg.message);
            }
            if (view.type != MsgType::HelloAck)
                return fail(formatMessage("expected HelloAck, got ",
                                          msgTypeName(view.type)));
            HelloAckMsg::decode(view);
            rbuf.erase(rbuf.begin(),
                       rbuf.begin() +
                           static_cast<std::ptrdiff_t>(consumed));
            // The pump loop interleaves sends and reads; it needs
            // EAGAIN, not blocking writes.
            const int fl = ::fcntl(fd, F_GETFL, 0);
            if (fl < 0 ||
                ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0)
                return fail(formatMessage("fcntl: ",
                                          std::strerror(errno)));
            return true;
        }
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, kIdlePollMs);
        if (pr == 0)
            return fail("timed out waiting for HelloAck");
        if (pr < 0 && errno != EINTR)
            return fail(formatMessage("poll: ",
                                      std::strerror(errno)));
        std::uint8_t chunk[4096];
        const ssize_t r = ::read(fd, chunk, sizeof(chunk));
        if (r == 0)
            return fail("server closed during handshake");
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return fail(formatMessage("read: ",
                                      std::strerror(errno)));
        }
        rbuf.insert(rbuf.end(), chunk,
                    chunk + static_cast<std::size_t>(r));
    }
}

void
Worker::queueDueEvents(Clock::time_point now)
{
    const double rate = config->eventsPerSecond;
    std::size_t batched = 0;
    if (!retryQueue.empty()) {
        // Refused events retransmit first, in seq order, once the
        // back-off expires. New sends stay paused meanwhile: the
        // server's backlog for this connection is full, so more
        // would only earn more refusals.
        if (now < retryAt)
            return;
        while (!retryQueue.empty() && batched < kSendBatch &&
               wbuf.size() - wpos < kSendHighWater) {
            const std::size_t local = retryQueue.front();
            retryQueue.pop_front();
            encodeEvent(local);
            sendTimes[local] = now; // RTT from the last transmit
            ++retriesSent;
            ++batched;
        }
        return;
    }
    while (nextSend < events.size() && batched < kSendBatch &&
           wbuf.size() - wpos < kSendHighWater) {
        const std::uint64_t seq = events[nextSend].first;
        if (rate > 0.0) {
            const auto target =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(seq) / rate));
            if (now < target)
                break;
        }
        encodeEvent(nextSend);
        sendTimes.push_back(now);
        ++nextSend;
        ++batched;
        if (rate > 0.0)
            break; // paced: one frame per deadline
    }
    if (nextSend == events.size() && acks == events.size() &&
        !finishedQueued) {
        // Declare only after every event is Acked: an Ack is the
        // server's acceptance, so no late Busy refusal can strand an
        // event behind the declaration.
        FinishedMsg done;
        done.eventsSent = events.size();
        std::vector<std::uint8_t> payload;
        done.encode(payload);
        encodeFrame(wbuf, MsgType::Finished, 0, payload.data(),
                    payload.size());
        finishedQueued = true;
    }
}

bool
Worker::flushSends()
{
    while (wpos < wbuf.size()) {
        const ssize_t w =
            ::write(fd, wbuf.data() + wpos, wbuf.size() - wpos);
        if (w > 0) {
            wpos += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (w < 0 && errno == EINTR)
            continue;
        return fail(formatMessage("write: ", std::strerror(errno)));
    }
    if (wpos == wbuf.size()) {
        wbuf.clear();
        wpos = 0;
    }
    return true;
}

int
Worker::pollTimeoutMs(Clock::time_point now) const
{
    if (!retryQueue.empty()) {
        if (retryAt <= now)
            return 0;
        const auto wait = std::chrono::duration_cast<
            std::chrono::milliseconds>(retryAt - now);
        return static_cast<int>(
            std::min<long long>(wait.count() + 1, kIdlePollMs));
    }
    if (nextSend >= events.size())
        return kIdlePollMs;
    if (config->eventsPerSecond <= 0.0)
        return 0; // unpaced: the next batch is due immediately
    const std::uint64_t seq = events[nextSend].first;
    const auto target =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(seq) /
                        config->eventsPerSecond));
    if (target <= now)
        return 0;
    const auto wait = std::chrono::duration_cast<
        std::chrono::milliseconds>(target - now);
    return static_cast<int>(
        std::min<long long>(wait.count() + 1, kIdlePollMs));
}

bool
Worker::handle(const FrameView &frame)
{
    const Clock::time_point now = Clock::now();
    switch (frame.type) {
    case MsgType::Ack: {
        const AckMsg ack = AckMsg::decode(frame);
        const std::uint64_t local =
            (ack.seq - id) / config->connections;
        if (ack.seq % config->connections != id ||
            local >= sendTimes.size())
            return fail(formatMessage("Ack for foreign seq ",
                                      ack.seq));
        rttMs.push_back(toMs(now - sendTimes[local]));
        ++acks;
        backoffMs = 0.0; // progress: the refusal pressure eased
        return true;
    }
    case MsgType::Busy: {
        const BusyMsg busy = BusyMsg::decode(frame);
        const std::uint64_t local =
            (busy.seq - id) / config->connections;
        if (busy.seq % config->connections != id ||
            local >= sendTimes.size())
            return fail(formatMessage("Busy for foreign seq ",
                                      busy.seq));
        retryQueue.push_back(static_cast<std::size_t>(local));
        ++busyRefusals;
        backoffMs =
            backoffMs <= 0.0
                ? std::max(config->busyBackoffMs,
                           static_cast<double>(busy.retryAfterMs))
                : std::min(backoffMs * 2.0,
                           config->busyBackoffMaxMs);
        retryAt = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                backoffMs));
        return true;
    }
    case MsgType::EpochComplete: {
        const EpochCompleteMsg epoch = EpochCompleteMsg::decode(frame);
        ++epochs;
        // Completion latency: from the last event this connection
        // sent below the epoch's boundary tick. Local events are in
        // seq order, so ticks never decrease — one pointer sweep.
        const std::size_t sent = sendTimes.size();
        while (epochPtr < sent &&
               events[epochPtr].second.tick < epoch.tick)
            ++epochPtr;
        if (epochPtr > 0 &&
            events[epochPtr - 1].second.tick < epoch.tick)
            epochMs.push_back(toMs(now - sendTimes[epochPtr - 1]));
        return true;
    }
    case MsgType::ProbeResult:
        ProbeResultMsg::decode(frame);
        return true;
    case MsgType::Assignment:
        AssignmentMsg::decode(frame);
        return true;
    case MsgType::CheckpointAck:
        CheckpointAckMsg::decode(frame);
        return true;
    case MsgType::Summary:
        summary.append(reinterpret_cast<const char *>(frame.payload),
                       frame.size);
        return true;
    case MsgType::Bye:
        byeSeen = true;
        lastDone = now;
        return true;
    case MsgType::Error: {
        const ErrorMsg msg = ErrorMsg::decode(frame);
        return fail("server error: " + msg.message);
    }
    default:
        return fail(formatMessage("unexpected ",
                                  msgTypeName(frame.type),
                                  " frame from the server"));
    }
}

bool
Worker::pump()
{
    while (!byeSeen) {
        const Clock::time_point now = Clock::now();
        queueDueEvents(now);
        if (!flushSends())
            return false;

        pollfd pfd{fd, POLLIN, 0};
        if (wpos < wbuf.size())
            pfd.events |= POLLOUT;
        // Progress comes from three places: encoding more frames
        // (possible until the high-water mark), the socket draining
        // (POLLOUT), or the server talking (POLLIN). Sleep only for
        // the pacing deadline — or the idle guard when everything
        // waits on the peer.
        const bool canQueueMore =
            (!retryQueue.empty() || nextSend < events.size()) &&
            wbuf.size() - wpos < kSendHighWater;
        const int timeout =
            canQueueMore ? pollTimeoutMs(now) : kIdlePollMs;
        const int pr = ::poll(&pfd, 1, timeout);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return fail(formatMessage("poll: ",
                                      std::strerror(errno)));
        }
        if (pr == 0 && timeout == kIdlePollMs)
            return fail("timed out waiting for the server");
        if (pfd.revents & POLLIN) {
            std::uint8_t chunk[64 * 1024];
            while (true) {
                const ssize_t r = ::read(fd, chunk, sizeof(chunk));
                if (r > 0) {
                    rbuf.insert(rbuf.end(), chunk,
                                chunk + static_cast<std::size_t>(r));
                    if (static_cast<std::size_t>(r) < sizeof(chunk))
                        break;
                    continue;
                }
                if (r == 0)
                    return byeSeen ||
                           fail("server closed before the summary");
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                return fail(formatMessage("read: ",
                                          std::strerror(errno)));
            }
            std::size_t offset = 0;
            while (true) {
                FrameView view;
                std::size_t consumed = 0;
                std::string decodeError;
                const DecodeStatus status = tryDecodeFrame(
                    rbuf.data() + offset, rbuf.size() - offset, view,
                    consumed, decodeError);
                if (status == DecodeStatus::NeedMore)
                    break;
                if (status == DecodeStatus::Bad)
                    return fail("frame decode: " + decodeError);
                offset += consumed;
                try {
                    if (!handle(view))
                        return false;
                } catch (const FatalError &err) {
                    return fail(err.what());
                }
                if (byeSeen)
                    break;
            }
            if (offset > 0)
                rbuf.erase(rbuf.begin(),
                           rbuf.begin() +
                               static_cast<std::ptrdiff_t>(offset));
        }
    }
    return true;
}

} // namespace

LoadGenResult
runLoadGen(const ChurnTrace &trace, const LoadGenConfig &config)
{
    LoadGenResult result;
    if (config.connections == 0) {
        result.error = "load_gen: connections must be >= 1";
        return result;
    }

    const std::size_t n = config.connections;
    std::vector<Worker> workers(n);
    for (std::size_t c = 0; c < n; ++c) {
        workers[c].id = c;
        workers[c].config = &config;
    }
    const auto &events = trace.events();
    for (std::size_t i = 0; i < events.size(); ++i)
        workers[i % n].events.emplace_back(i, events[i]);
    for (Worker &worker : workers)
        worker.sendTimes.reserve(worker.events.size());

    // Connect and handshake everyone, then release the replay from
    // one shared start instant so the aggregate pacing rate holds.
    Clock::time_point start{};
    std::barrier gate(static_cast<std::ptrdiff_t>(n),
                      [&start]() noexcept {
                          start = Clock::now();
                      });
    std::atomic<bool> connectFailed{false};

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        threads.emplace_back([&, c]() {
            Worker &worker = workers[c];
            if (!worker.connect() || !worker.handshake()) {
                connectFailed.store(true);
                gate.arrive_and_drop();
                return;
            }
            gate.arrive_and_wait();
            if (connectFailed.load()) {
                // A sibling never joined; the run cannot complete.
                worker.fail("a sibling connection failed to start");
                ::close(worker.fd);
                worker.fd = -1;
                return;
            }
            worker.start = start;
            worker.pump();
            ::close(worker.fd);
            worker.fd = -1;
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    std::vector<double> rtt;
    std::vector<double> epoch;
    Clock::time_point lastDone = start;
    for (Worker &worker : workers) {
        if (!worker.error.empty() && result.error.empty())
            result.error = formatMessage("connection ", worker.id,
                                         ": ", worker.error);
        result.stats.eventsSent += worker.sendTimes.size();
        result.stats.acksReceived += worker.acks;
        result.stats.busyRefusals += worker.busyRefusals;
        result.stats.retriesSent += worker.retriesSent;
        result.stats.epochsObserved =
            std::max(result.stats.epochsObserved, worker.epochs);
        rtt.insert(rtt.end(), worker.rttMs.begin(),
                   worker.rttMs.end());
        epoch.insert(epoch.end(), worker.epochMs.begin(),
                     worker.epochMs.end());
        if (worker.lastDone > lastDone)
            lastDone = worker.lastDone;
    }
    if (!result.error.empty())
        return result;

    for (std::size_t c = 1; c < n; ++c) {
        if (workers[c].summary != workers[0].summary) {
            result.error = formatMessage(
                "connections 0 and ", c,
                " received different summaries (",
                workers[0].summary.size(), " vs ",
                workers[c].summary.size(), " bytes)");
            return result;
        }
    }

    result.summary = workers[0].summary;
    result.stats.wallSeconds =
        std::chrono::duration<double>(lastDone - start).count();
    if (result.stats.wallSeconds > 0.0)
        result.stats.arrivalsPerSecond =
            static_cast<double>(result.stats.eventsSent) /
            result.stats.wallSeconds;
    result.stats.rttP50Ms = percentile(rtt, 50.0);
    result.stats.rttP99Ms = percentile(rtt, 99.0);
    result.stats.rttP999Ms = percentile(rtt, 99.9);
    result.stats.epochP50Ms = percentile(epoch, 50.0);
    result.stats.epochP99Ms = percentile(epoch, 99.0);
    result.stats.epochP999Ms = percentile(epoch, 99.9);
    result.ok = true;
    return result;
}

#else // !__linux__

LoadGenResult
runLoadGen(const ChurnTrace &, const LoadGenConfig &)
{
    LoadGenResult result;
    result.error = "load_gen requires Linux sockets";
    return result;
}

#endif // __linux__

} // namespace cooper::net
