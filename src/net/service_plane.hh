/**
 * @file
 * ServicePlane: the determinism boundary between the socket layer and
 * the online drivers.
 *
 * The plane turns an unordered, multi-connection stream of EventMsgs
 * back into the canonical churn order and drives an OnlineDriver or
 * ShardedDriver through exactly the stepEpoch() sequence that
 * run(trace) would have executed, so a served trace produces a
 * byte-identical summary to the in-process replay. Three rules make
 * this hold:
 *
 *  1. Events carry `seq`, their index in the canonical ChurnTrace
 *     order (ticks are non-decreasing in seq). A reorder buffer
 *     delivers contiguous runs into the driver's EventQueue in seq
 *     order, which matches queue.push(trace) exactly — the queue
 *     breaks tick ties by push order.
 *  2. Mid-stream, an epoch steps only when its boundary tick is <=
 *     the last delivered tick: every undelivered event has tick >=
 *     lastDeliveredTick >= boundary, so none of them belongs to the
 *     epoch being committed. When the condition holds the queue still
 *     contains the frontier event itself, so run() would also have
 *     stepped (never an extra empty epoch).
 *  3. After every client finishes (with a declared-count loss check),
 *     the plane drains to idle() just as run() does.
 *
 * Hostile streams are validated here, before the driver sees them —
 * unknown job types, replayed or duplicate seqs, uid reuse,
 * departures of unknown jobs, tick regressions, and events after
 * Finished all produce a protocol error (the server answers with an
 * Error frame), never a crash. Mirrors the io/serialize posture.
 *
 * Flow control (setFlowControl) bounds the parked out-of-order events
 * per source: a connection at its bound gets a soft Busy refusal and
 * retries, while the frontier event is always accepted so the run
 * keeps making progress. Busy never perturbs plane state, so served
 * summaries stay byte-identical whether or not pushback happened.
 */

#ifndef COOPER_NET_SERVICE_PLANE_HH
#define COOPER_NET_SERVICE_PLANE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/frame.hh"
#include "online/driver.hh"
#include "shard/sharded_driver.hh"

namespace cooper::net {

/** Protocol error codes carried by ErrorMsg. */
enum class PlaneError : std::uint32_t
{
    None = 0,
    BadType = 1,       //!< arrival names a type outside the catalog
    DuplicateSeq = 2,  //!< seq replayed or already pending
    UidReuse = 3,      //!< arrival uid was used before
    UnknownUid = 4,    //!< departure of an unknown/departed uid
    TickRegression = 5, //!< delivered tick went backwards
    BeforeClock = 6,   //!< event predates the driver's clock
    AfterFinish = 7,   //!< event after the run completed
    CountMismatch = 8, //!< declared counts != events ingested
    MissingEvents = 9, //!< finish with gaps in the seq space
    SeqWindow = 10,    //!< seq too far ahead of the frontier
};

/** Out-of-order events the plane will park before giving up — bounds
 *  the reorder buffer against a hostile sender that opens with a huge
 *  seq and never fills the gap. */
constexpr std::uint64_t kMaxPendingEvents = 1u << 20;

/** One ingest/finish verdict; ok == true means accepted. */
struct PlaneOutcome
{
    bool ok = true;
    PlaneError code = PlaneError::None;
    std::string message;

    static PlaneOutcome
    fail(PlaneError code, std::string message)
    {
        return {false, code, std::move(message)};
    }
};

/** What ingest did with an event when flow control is on. */
enum class IngestStatus
{
    Accepted, //!< delivered or parked; the sender gets an Ack
    Busy,     //!< refused softly; the sender backs off and resends
    Failed,   //!< protocol violation; the plane is poisoned
};

/** Flow-controlled ingest verdict: `outcome` carries the error when
 *  `status == Failed`. Busy leaves the plane untouched. */
struct IngestResult
{
    IngestStatus status = IngestStatus::Accepted;
    PlaneOutcome outcome;
};

/** Everything one committed epoch tells subscribed clients. */
struct EpochOutput
{
    EpochCompleteMsg complete;
    ProbeResultMsg probes;
    AssignmentMsg assignment;
};

/**
 * Drives one flat or sharded driver from decoded messages. Owns the
 * event queue and the report; the socket layer owns nothing but
 * bytes.
 */
class ServicePlane
{
  public:
    /** On-demand checkpoint hook (CheckpointRequest frames); returns
     *  whether the write landed. */
    using CheckpointHook = std::function<bool()>;

    /** Serve a flat driver. The driver must be freshly constructed or
     *  restored; the plane begins its report immediately. */
    ServicePlane(const Catalog &catalog, OnlineDriver &driver);

    /** Serve a sharded fleet. */
    ServicePlane(const Catalog &catalog, ShardedDriver &driver);

    void setCheckpointHook(CheckpointHook hook);

    /** Handshake parameters for HelloAck. */
    HelloAckMsg helloAck() const;

    /**
     * Soft per-source bound on parked (out-of-order) events. When a
     * source already holds `maxPending` parked events, further
     * out-of-order events from it come back Busy instead of growing
     * the reorder buffer. 0 (the default) disables the bound; the
     * hard kMaxPendingEvents window still poisons hostile gaps.
     */
    void setFlowControl(std::uint64_t maxPendingPerSource);

    /**
     * Accept one event. On success the reorder frontier may advance
     * and zero or more epochs commit (see takeOutputs()); on failure
     * the plane is poisoned and every later call fails too.
     */
    PlaneOutcome ingest(const EventMsg &event);

    /**
     * Flow-controlled ingest: `source` is an opaque per-connection
     * token for the parked-event accounting. Busy is a soft refusal —
     * nothing changes, the sender retries the same event later. An
     * in-order event (seq == frontier) is never refused, so the run
     * always makes progress.
     */
    IngestResult ingest(const EventMsg &event, std::uint64_t source);

    /** Record one client's declared event count (Finished frame). */
    void declareFinished(std::uint64_t eventsSent);

    /**
     * All clients are done: verify nothing was lost (no seq gaps,
     * declared counts match), then drain the driver to idle and
     * finalize the report. After this, summary() is available.
     */
    PlaneOutcome completeRun();

    /** Invoke the checkpoint hook now (CheckpointRequest). */
    CheckpointAckMsg checkpointNow();

    /** Epoch outputs committed since the last call (move-out). */
    std::vector<EpochOutput> takeOutputs();

    /** Fleet epochs committed so far (for Ack frames). */
    std::uint64_t epochsCommitted() const;

    /** Events accepted so far. */
    std::uint64_t eventsIngested() const { return eventsIngested_; }

    bool finished() const { return finished_; }

    /** The run summary (exact writeOnlineSummary/writeShardedSummary
     *  bytes); fatal before completeRun() succeeds. */
    const std::string &summary() const;

  private:
    PlaneOutcome deliver(const EventMsg &event);
    void stepReadyEpochs();
    void stepOne();
    Tick epochBoundary() const;
    bool driverIdle() const;
    Tick driverClock() const;
    EpochOutput makeOutput() const;

    const Catalog *catalog_ = nullptr;
    OnlineDriver *flat_ = nullptr;
    ShardedDriver *sharded_ = nullptr;
    PlaneOutcome poison_;

    EventQueue queue_;
    OnlineReport flatReport_;
    ShardedReport shardedReport_;

    /** One parked out-of-order event and who sent it. */
    struct Parked
    {
        EventMsg event;
        std::uint64_t source = 0;
    };

    /** Out-of-order events parked until their seq is next. */
    std::map<std::uint64_t, Parked> pending_;

    /** Parked-event counts per source (flow-control accounting). */
    std::unordered_map<std::uint64_t, std::uint64_t> parkedBySource_;
    std::uint64_t maxPendingPerSource_ = 0;
    std::uint64_t nextSeq_ = 0;
    Tick lastDeliveredTick_ = 0;
    bool anyDelivered_ = false;

    std::unordered_set<std::uint64_t> seenUids_;
    std::unordered_set<std::uint64_t> activeUids_;

    std::uint64_t eventsIngested_ = 0;
    std::uint64_t declaredTotal_ = 0;

    std::vector<EpochOutput> outputs_;
    CheckpointHook checkpointHook_;

    bool poisoned_ = false;
    bool finished_ = false;
    std::string summary_;
};

} // namespace cooper::net

#endif // COOPER_NET_SERVICE_PLANE_HH
