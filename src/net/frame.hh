/**
 * @file
 * Length-prefixed binary framing for the Cooper service plane.
 *
 * Every message on the wire is one frame: a fixed 12-byte
 * little-endian header (magic, version, type, flags, payload length)
 * followed by `length` payload bytes. The codec is symmetric with
 * io/serialize's hostile-input posture: every decode bounds-checks
 * before it reads, rejects bad magic/version/type and oversized
 * declared lengths, and raises FatalError instead of reading past the
 * buffer — a malicious peer can make a connection fail, never the
 * process.
 *
 * Decode is zero-copy: tryDecodeFrame() yields FrameViews that point
 * into the caller's receive buffer, so the batched server drains a
 * whole read() worth of frames in one pass without copying payloads.
 */

#ifndef COOPER_NET_FRAME_HH
#define COOPER_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cooper::net {

/** Frame header magic: "COOP" read as a little-endian u32. */
constexpr std::uint32_t kMagic = 0x504F4F43u;

/** Protocol version this build speaks. v2 added the Hello runId
 *  (multi-run servers) and the Busy flow-control frame. */
constexpr std::uint8_t kProtocolVersion = 2;

/** Bytes in the fixed frame header. */
constexpr std::size_t kHeaderSize = 12;

/** Hard cap on one frame's declared payload (hostile-input guard). */
constexpr std::size_t kMaxFramePayload = 1u << 20;

/** Frame flag bit: this Summary chunk is the last one. */
constexpr std::uint16_t kFlagLastChunk = 1u << 0;

/** Wire message types (the header's `type` byte). */
enum class MsgType : std::uint8_t
{
    Hello = 1,         //!< client -> server: handshake
    HelloAck = 2,      //!< server -> client: run parameters
    Event = 3,         //!< client -> server: one churn event
    Ack = 4,           //!< server -> client: event accepted
    EpochComplete = 5, //!< server -> client: epoch committed
    ProbeResult = 6,   //!< server -> client: epoch probe stats
    Assignment = 7,    //!< server -> client: epoch pairing
    CheckpointRequest = 8, //!< client -> server: checkpoint now
    CheckpointAck = 9,     //!< server -> client: checkpoint result
    Finished = 10,     //!< client -> server: no more events
    Summary = 11,      //!< server -> client: summary bytes (chunked)
    Error = 12,        //!< server -> client: fatal protocol error
    Bye = 13,          //!< server -> client: orderly close
    Busy = 14,         //!< server -> client: back off and resend seq
};

/** True when `type` is a value the protocol defines. */
bool validMsgType(std::uint8_t type);

/** Human-readable message-type name (diagnostics). */
const char *msgTypeName(MsgType type);

/** One decoded frame, pointing into the receive buffer (not owned). */
struct FrameView
{
    MsgType type = MsgType::Error;
    std::uint16_t flags = 0;
    const std::uint8_t *payload = nullptr;
    std::size_t size = 0;
};

/** What tryDecodeFrame found at the front of the buffer. */
enum class DecodeStatus
{
    NeedMore, //!< incomplete header or payload; read more bytes
    Ok,       //!< `frame` is valid; consume `consumed` bytes
    Bad,      //!< malformed header; the connection must die
};

/**
 * Decode one frame from the front of [data, data+size). On Ok, `frame`
 * views the payload in place and `consumed` is the total frame size;
 * on Bad, `error` says what was wrong (bad magic, unsupported version,
 * unknown type, oversized payload).
 */
DecodeStatus tryDecodeFrame(const std::uint8_t *data, std::size_t size,
                            FrameView &frame, std::size_t &consumed,
                            std::string &error);

/** Append one whole frame (header + payload) to `out`. */
void encodeFrame(std::vector<std::uint8_t> &out, MsgType type,
                 std::uint16_t flags,
                 const std::uint8_t *payload, std::size_t size);

/** Bounds-checked little-endian payload writer. */
class WireWriter
{
  public:
    explicit WireWriter(std::vector<std::uint8_t> &out) : out_(&out) {}

    void u8(std::uint8_t v) { out_->push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);

    /** Length-prefixed (u32) byte string. */
    void str(const std::string &v);

  private:
    std::vector<std::uint8_t> *out_;
};

/**
 * Bounds-checked little-endian payload reader. Every accessor raises
 * FatalError on a short or trailing-garbage payload, naming the
 * message being decoded.
 */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size,
               std::string context)
        : data_(data), size_(size), context_(std::move(context))
    {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::string str();

    std::size_t remaining() const { return size_ - pos_; }

    /** Fatal unless the whole payload was consumed. */
    void done() const;

  private:
    void need(std::size_t bytes) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string context_;
};

// -- Message payloads. Each struct encodes itself into a payload
// vector and decodes from a FrameView; decode validates as it reads.

/** Client handshake. */
struct HelloMsg
{
    std::uint32_t clientId = 0;
    std::uint32_t protocol = kProtocolVersion;

    /** Bit 0: send Assignment frames; bit 1: send ProbeResult
     *  frames. EpochComplete and Summary are always sent. */
    std::uint32_t subscriptions = 0;

    /** Which run in the server's run table this connection feeds.
     *  Single-run servers register run 0. */
    std::uint64_t runId = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static HelloMsg decode(const FrameView &frame);
};

constexpr std::uint32_t kSubscribeAssignments = 1u << 0;
constexpr std::uint32_t kSubscribeProbes = 1u << 1;

/** Server handshake reply: the run the plane is serving. */
struct HelloAckMsg
{
    std::uint64_t seed = 0;
    std::uint64_t epochTicks = 0;
    std::uint64_t shards = 0; //!< 0 = flat OnlineDriver
    std::uint64_t catalogTypes = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static HelloAckMsg decode(const FrameView &frame);
};

/** One churn event. `seq` is the event's index in the canonical
 *  trace order; the plane reorders by it, so N connections may split
 *  a trace round-robin and replay concurrently. */
struct EventMsg
{
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    std::uint8_t kind = 0; //!< 0 = arrival, 1 = departure
    std::uint64_t uid = 0;
    std::uint32_t type = 0; //!< job type (arrivals only)

    void encode(std::vector<std::uint8_t> &out) const;
    static EventMsg decode(const FrameView &frame);
};

/** Per-event acknowledgement (echoes seq for RTT measurement). */
struct AckMsg
{
    std::uint64_t seq = 0;
    std::uint64_t epochsCommitted = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static AckMsg decode(const FrameView &frame);
};

/** An epoch committed. */
struct EpochCompleteMsg
{
    std::uint64_t epoch = 0;
    std::uint64_t tick = 0;
    std::uint64_t population = 0;
    std::uint64_t admitted = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static EpochCompleteMsg decode(const FrameView &frame);
};

/** An epoch's probe/fault ladder stats. */
struct ProbeResultMsg
{
    std::uint64_t epoch = 0;
    std::uint64_t probes = 0;
    std::uint64_t retries = 0;
    std::uint64_t cfFallbacks = 0;
    std::uint64_t faultsInjected = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static ProbeResultMsg decode(const FrameView &frame);
};

/** An epoch's committed uid-level pairing. */
struct AssignmentMsg
{
    std::uint64_t epoch = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;

    void encode(std::vector<std::uint8_t> &out) const;
    static AssignmentMsg decode(const FrameView &frame);
};

/** Checkpoint-on-demand result. */
struct CheckpointAckMsg
{
    std::uint64_t epoch = 0;
    std::uint8_t ok = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static CheckpointAckMsg decode(const FrameView &frame);
};

/** Client is done sending; declares its event count for an
 *  end-to-end loss check. */
struct FinishedMsg
{
    std::uint64_t eventsSent = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static FinishedMsg decode(const FrameView &frame);
};

/** Flow-control pushback: the server refused event `seq` because the
 *  connection's reorder backlog is full. Not an error — the client
 *  backs off `retryAfterMs` and resends the same event. */
struct BusyMsg
{
    std::uint64_t seq = 0;
    std::uint32_t retryAfterMs = 0;

    void encode(std::vector<std::uint8_t> &out) const;
    static BusyMsg decode(const FrameView &frame);
};

/** Protocol failure the server reports before closing. */
struct ErrorMsg
{
    std::uint32_t code = 0;
    std::string message;

    void encode(std::vector<std::uint8_t> &out) const;
    static ErrorMsg decode(const FrameView &frame);
};

} // namespace cooper::net

#endif // COOPER_NET_FRAME_HH
