/**
 * @file
 * Unit and property tests for the metrics registry: counter/gauge
 * semantics, histogram bucket edges and the fixed-point sum contract,
 * rendering (table + JSON), and the shard-fold determinism property —
 * the same multiset of observations folds to bit-identical snapshots
 * no matter how many threads recorded it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace cooper {
namespace {

/** Bitwise double equality (0.0 vs -0.0 and NaN patterns included). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(2.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric)
{
    MetricsRegistry registry;
    registry.counter("events").add(3);
    registry.counter("events").add(4);
    EXPECT_EQ(registry.counter("events").value(), 7u);

    registry.gauge("level").set(1.0);
    registry.gauge("level").set(2.0);
    EXPECT_DOUBLE_EQ(registry.gauge("level").value(), 2.0);
}

TEST(MetricsRegistry, KindMismatchIsFatal)
{
    MetricsRegistry registry;
    registry.counter("x");
    EXPECT_THROW(registry.gauge("x"), FatalError);
    EXPECT_THROW(registry.histogram("x"), FatalError);
    registry.histogram("h");
    EXPECT_THROW(registry.counter("h"), FatalError);
}

TEST(MetricsRegistry, HistogramEdgeReRegistration)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("h", {1.0, 2.0});
    // Same edges, or omitted edges, return the existing histogram.
    EXPECT_EQ(&registry.histogram("h", {1.0, 2.0}), &h);
    EXPECT_EQ(&registry.histogram("h"), &h);
    // Different edges are a contract violation.
    EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), FatalError);
}

TEST(MetricsRegistry, HistogramDefaultsToLatencyEdges)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.histogram("t").edges(),
              MetricsRegistry::defaultLatencyEdges());
}

TEST(Histogram, RejectsBadEdges)
{
    EXPECT_THROW(Histogram({}), FatalError);
    EXPECT_THROW(Histogram({1.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram({2.0, 1.0}), FatalError);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds)
{
    Histogram h({1.0, 2.0, 4.0});
    for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0})
        h.observe(v);

    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 7u);
    // A value equal to an edge belongs to that edge's bucket ("le"
    // semantics); 5.0 exceeds every edge and lands in the overflow
    // slot.
    ASSERT_EQ(snap.buckets.size(), 4u);
    EXPECT_EQ(snap.buckets[0], 2u); // 0.5, 1.0
    EXPECT_EQ(snap.buckets[1], 2u); // 1.5, 2.0
    EXPECT_EQ(snap.buckets[2], 2u); // 3.0, 4.0
    EXPECT_EQ(snap.buckets[3], 1u); // 5.0
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 5.0);
}

TEST(Histogram, EmptySnapshot)
{
    Histogram h({1.0});
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.0);
    EXPECT_DOUBLE_EQ(snap.mean, 0.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    ASSERT_EQ(snap.buckets.size(), 2u);
    EXPECT_EQ(snap.buckets[0] + snap.buckets[1], 0u);
}

TEST(Histogram, QuantizeContract)
{
    EXPECT_EQ(Histogram::quantize(0.0), 0);
    EXPECT_EQ(Histogram::quantize(1.0),
              static_cast<std::int64_t>(Histogram::scale()));
    // Round to nearest at 2^-21 resolution.
    EXPECT_EQ(Histogram::quantize(0.4 / Histogram::scale()), 0);
    EXPECT_EQ(Histogram::quantize(0.6 / Histogram::scale()), 1);
    EXPECT_EQ(Histogram::quantize(-1.5), -3145728);
    // NaN quantizes to zero; infinities saturate.
    EXPECT_EQ(Histogram::quantize(
                  std::numeric_limits<double>::quiet_NaN()),
              0);
    EXPECT_EQ(Histogram::quantize(
                  std::numeric_limits<double>::infinity()),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(Histogram::quantize(
                  -std::numeric_limits<double>::infinity()),
              std::numeric_limits<std::int64_t>::min());
}

TEST(Histogram, SumIsFixedPointExact)
{
    Histogram h({1.0});
    std::int64_t scaled = 0;
    for (double v : {0.1, 0.2, 0.3, 0.7}) {
        h.observe(v);
        scaled += Histogram::quantize(v);
    }
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_TRUE(sameBits(snap.sum,
                         static_cast<double>(scaled) /
                             Histogram::scale()));
    EXPECT_TRUE(sameBits(snap.mean, snap.sum / 4.0));
}

TEST(MetricsRegistry, SnapshotIsNameSorted)
{
    MetricsRegistry registry;
    registry.counter("zeta").add(1);
    registry.counter("alpha").add(2);
    registry.gauge("mid").set(0.5);
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "zeta");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].first, "mid");
}

TEST(MetricsRegistry, TableRenders)
{
    MetricsRegistry registry;
    registry.counter("epoch.events").add(12);
    registry.gauge("epoch.density").set(0.25);
    registry.histogram("epoch.seconds").observe(0.005);

    const Table table = registry.toTable();
    EXPECT_EQ(table.columns(), 7u);
    EXPECT_EQ(table.rows(), 3u);

    const std::string text = table.toText();
    EXPECT_NE(text.find("epoch.events"), std::string::npos);
    EXPECT_NE(text.find("epoch.density"), std::string::npos);
    EXPECT_NE(text.find("epoch.seconds"), std::string::npos);
    EXPECT_NE(text.find("histogram"), std::string::npos);
    // CSV renders the same rows (header + 3).
    const std::string csv = table.toCsv();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(MetricsRegistry, JsonParsesWithTheInTreeReader)
{
    MetricsRegistry registry;
    registry.counter("c\"quoted\"").add(3);
    registry.gauge("g").set(1.5);
    Histogram &h = registry.histogram("h", {0.5, 1.0});
    h.observe(0.25);
    h.observe(2.0);

    const JsonValue root = parseJson(registry.toJson());
    ASSERT_TRUE(root.isObject());

    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *c = counters->find("c\"quoted\"");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->number, 3.0);

    const JsonValue *g = root.find("gauges")->find("g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->number, 1.5);

    const JsonValue *hist = root.find("histograms")->find("h");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("count")->number, 2.0);
    const JsonValue *buckets = hist->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->items.size(), 3u);
    EXPECT_DOUBLE_EQ(buckets->items[0].find("le")->number, 0.5);
    EXPECT_DOUBLE_EQ(buckets->items[0].find("count")->number, 1.0);
    // The overflow bucket's upper edge is the string "inf".
    EXPECT_TRUE(buckets->items[2].find("le")->isString());
    EXPECT_EQ(buckets->items[2].find("le")->text, "inf");
    EXPECT_DOUBLE_EQ(buckets->items[2].find("count")->number, 1.0);
}

TEST(MetricsRegistry, EmptyJsonIsValid)
{
    MetricsRegistry registry;
    const JsonValue root = parseJson(registry.toJson());
    ASSERT_TRUE(root.isObject());
    EXPECT_TRUE(root.find("counters")->members.empty());
    EXPECT_TRUE(root.find("gauges")->members.empty());
    EXPECT_TRUE(root.find("histograms")->members.empty());
}

/**
 * The shard-fold determinism property (the registry's analogue of the
 * repo's parallelReduce contract): drive one registry from
 * ThreadPool::parallelFor at 1, 2, and 8 threads over the same
 * observation multiset, and require the folded snapshots to match the
 * serial fold bit for bit — count, buckets, min, max, sum, and mean.
 * Only the merged stddev is advisory (OnlineStats merge order follows
 * shard registration, which is scheduling-dependent).
 */
TEST(MetricsDeterminism, FoldIdenticalAcrossThreadCounts)
{
    const std::size_t kObservations = 20000;
    const std::vector<double> edges{0.25, 0.5, 0.75, 1.0};

    // A fixed multiset of values, including edge-exact and negative
    // entries so every bucket and the quantizer see traffic.
    Rng rng(2026);
    std::vector<double> values(kObservations, 0.0);
    for (std::size_t i = 0; i < kObservations; ++i) {
        values[i] = rng.uniform() * 1.3 - 0.05;
        if (i % 97 == 0)
            values[i] = edges[i % edges.size()];
    }

    HistogramSnapshot base;
    std::uint64_t base_events = 0;
    const std::vector<std::size_t> thread_counts{1, 2, 8};
    for (std::size_t threads : thread_counts) {
        MetricsRegistry registry;
        Histogram &h = registry.histogram("values", edges);
        Counter &events = registry.counter("events");
        parallelFor(0, kObservations, threads, [&](std::size_t i) {
            h.observe(values[i]);
            events.add();
        });

        const HistogramSnapshot snap = h.snapshot();
        if (threads == 1) {
            base = snap;
            base_events = events.value();
            EXPECT_EQ(base.count, kObservations);
            continue;
        }
        EXPECT_EQ(events.value(), base_events)
            << "threads " << threads;
        EXPECT_EQ(snap.count, base.count) << "threads " << threads;
        ASSERT_EQ(snap.buckets.size(), base.buckets.size());
        for (std::size_t b = 0; b < snap.buckets.size(); ++b)
            EXPECT_EQ(snap.buckets[b], base.buckets[b])
                << "bucket " << b << " at threads " << threads;
        EXPECT_TRUE(sameBits(snap.sum, base.sum))
            << "sum at threads " << threads;
        EXPECT_TRUE(sameBits(snap.mean, base.mean))
            << "mean at threads " << threads;
        EXPECT_TRUE(sameBits(snap.min, base.min))
            << "min at threads " << threads;
        EXPECT_TRUE(sameBits(snap.max, base.max))
            << "max at threads " << threads;
        EXPECT_NEAR(snap.stddev, base.stddev, 1e-9)
            << "stddev at threads " << threads;
    }
}

/** Concurrent counters from many threads stay exact. */
TEST(MetricsDeterminism, CountersExactUnderContention)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("hits");
    const std::size_t n = 50000;
    parallelFor(0, n, 8, [&](std::size_t i) { c.add(i % 3); });
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i)
        expected += i % 3;
    EXPECT_EQ(c.value(), expected);
}

} // namespace
} // namespace cooper
